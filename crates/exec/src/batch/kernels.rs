//! Columnar kernels for the pipeline-breaking operators.
//!
//! Each kernel consumes fully materialized [`ColumnarRelation`]s and is
//! **list-exact** against the corresponding row implementation in
//! `tqo_core::ops` / `crate::operators`: same rows, same order, so the two
//! engines can be compared with `==`. The temporal kernels never touch
//! `Value`s on their hot path — periods are swept as raw `i64` columns,
//! value-equivalence classes are formed over column-wise row hashes, and
//! output rows are assembled with per-column gathers.

use std::cmp::Ordering;
use std::sync::Arc;

use tqo_core::columnar::{Column, ColumnarRelation};
use tqo_core::error::{Error, Result};
use tqo_core::expr::{AggFunc, AggItem};
use tqo_core::schema::Schema;
use tqo_core::sortspec::{Order, SortDir};
use tqo_core::time::{normalize_periods, CountTimeline, Period};
use tqo_core::value::DataType;

use super::hash::{part_of, radix_scatter, KeyStore, RowTable};

/// Sort inputs below this row count skip radix partitioning: the
/// histogram and scatter passes only pay off once the working set
/// outgrows the caches.
const RADIX_MIN_ROWS: usize = 4096;

/// Partition count of the serial radix-partitioned hash builds. Sixteen
/// partitions keep each probe table and key store a cache-sized fraction
/// of the input while the merge stays `O(classes · 16)` — noise.
const RADIX_PARTS: usize = 16;

/// Serial hash builds partition later than sort: a linear-probe table
/// over tens of thousands of rows still fits L2, and below that point
/// the extra scatter pass plus the partition-scattered (non-sequential)
/// key accesses cost more than the locality they buy. Measured on the
/// 20k-row bench set, 16-way partitioning slowed `\ᵀ` and `ρᵀ` builds
/// ~20%; from ~64k rows the cache-sized private tables win.
const CLASS_RADIX_MIN_ROWS: usize = 1 << 16;

/// Stable sort permutation of `input` under `order` (ties keep input
/// order, matching the row engine's stable `sort_by`).
pub fn sort_indices(input: &ColumnarRelation, order: &Order) -> Result<Vec<u32>> {
    let keys = SortKeys::new(input, order)?;
    let mut idx: Vec<u32> = (0..input.rows() as u32).collect();
    keys.sort(&mut idx);
    Ok(idx)
}

/// Precomputed sort state shared by the serial sort and the parallel
/// partition-then-merge sort: per-row normalized `u64` prefixes of the
/// primary key (unsigned ascending order never contradicting the full
/// comparator — see [`Column::sort_prefixes`]) plus the resolved key
/// list for refinement.
pub(crate) struct SortKeys<'a> {
    input: &'a ColumnarRelation,
    keys: Vec<(usize, SortDir)>,
    prefixes: Vec<u64>,
    /// Prefix order fully decides the primary key (equal prefixes mean
    /// equal key-0 values), so refinement may skip key 0.
    exact0: bool,
}

impl<'a> SortKeys<'a> {
    pub fn new(input: &'a ColumnarRelation, order: &Order) -> Result<SortKeys<'a>> {
        let mut keys = Vec::with_capacity(order.keys().len());
        for k in order.keys() {
            keys.push((input.schema().resolve(&k.attr)?, k.dir));
        }
        let (prefixes, exact0) = match keys.first() {
            None => (vec![0u64; input.rows()], true),
            Some(&(c, dir)) => {
                let (mut p, exact) = input.column(c).sort_prefixes();
                if dir == SortDir::Desc {
                    // Complementing inverts the whole prefix order,
                    // null placement included (null-first → null-last,
                    // exactly `Ordering::reverse`).
                    for v in p.iter_mut() {
                        *v = !*v;
                    }
                }
                (p, exact)
            }
        };
        Ok(SortKeys {
            input,
            keys,
            prefixes,
            exact0,
        })
    }

    /// The full sort comparator (prefix first, then the remaining keys) —
    /// equivalent to comparing every key with `cmp_at`.
    #[inline]
    pub fn cmp(&self, a: u32, b: u32) -> Ordering {
        let pa = self.prefixes[a as usize];
        let pb = self.prefixes[b as usize];
        if pa != pb {
            return pa.cmp(&pb);
        }
        cmp_rows(self.input, self.refine_keys(), a, b)
    }

    /// The keys refinement still has to compare once prefixes tie.
    #[inline]
    fn refine_keys(&self) -> &[(usize, SortDir)] {
        if self.exact0 {
            &self.keys[1..]
        } else {
            &self.keys
        }
    }

    /// Stable-sort one run of row ids (the run must be ascending, as the
    /// serial `0..n` and the parallel contiguous runs are): radix-scatter
    /// `(prefix, id)` pairs by the top prefix byte, sort each bucket
    /// unstably on the pair — the id component *is* the stability
    /// tie-break — then refine equal-prefix runs with the remaining
    /// comparator. Equal-prefix runs never span a radix bucket, so the
    /// refinement scan walks the buckets' concatenation directly.
    pub fn sort(&self, idx: &mut [u32]) {
        if idx.len() < 2 || self.keys.is_empty() {
            return;
        }
        let mut pairs: Vec<(u64, u32)> = idx
            .iter()
            .map(|&i| (self.prefixes[i as usize], i))
            .collect();
        radix_sort_pairs(&mut pairs);
        for (slot, &(_, i)) in idx.iter_mut().zip(pairs.iter()) {
            *slot = i;
        }
        if self.exact0 && self.keys.len() == 1 {
            return;
        }
        let rest = self.refine_keys();
        let mut start = 0;
        while start < pairs.len() {
            let p = pairs[start].0;
            let mut end = start + 1;
            while end < pairs.len() && pairs[end].0 == p {
                end += 1;
            }
            if end - start > 1 {
                idx[start..end].sort_by(|&a, &b| cmp_rows(self.input, rest, a, b));
            }
            start = end;
        }
    }
}

/// Compare two rows under a resolved key list, matching the row engine's
/// comparator exactly (`cmp_at` per key, `reverse` on descending).
#[inline]
fn cmp_rows(input: &ColumnarRelation, keys: &[(usize, SortDir)], a: u32, b: u32) -> Ordering {
    for &(c, dir) in keys {
        let col = input.column(c);
        let ord = col.cmp_at(a as usize, col, b as usize);
        let ord = match dir {
            SortDir::Asc => ord,
            SortDir::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort `(prefix, id)` pairs ascending: one MSB-byte scatter pass into
/// 256 cache-sized buckets, then an unstable per-bucket sort (exact,
/// because distinct ids make every pair distinct). Small inputs sort
/// directly — the scatter only pays off past cache size.
fn radix_sort_pairs(pairs: &mut Vec<(u64, u32)>) {
    if pairs.len() < RADIX_MIN_ROWS {
        pairs.sort_unstable();
        return;
    }
    let mut counts = [0u32; 257];
    for &(p, _) in pairs.iter() {
        counts[(p >> 56) as usize + 1] += 1;
    }
    for b in 0..256 {
        counts[b + 1] += counts[b];
    }
    let offsets = counts;
    let mut cursor = offsets;
    let mut out = vec![(0u64, 0u32); pairs.len()];
    for &pr in pairs.iter() {
        let b = (pr.0 >> 56) as usize;
        out[cursor[b] as usize] = pr;
        cursor[b] += 1;
    }
    for b in 0..256 {
        let (s, e) = (offsets[b] as usize, offsets[b + 1] as usize);
        if e - s > 1 {
            out[s..e].sort_unstable();
        }
    }
    *pairs = out;
}

/// Value-equivalence classes (or grouping classes) of a relation over a
/// set of key columns, in first-occurrence order.
///
/// The build is radix-partitioned past [`CLASS_RADIX_MIN_ROWS`]: a two-pass
/// (histogram, scatter) pass splits rows by the high half of their key
/// hash, each partition builds a private cache-sized probe table over its
/// stable (ascending) row slice, and a cheap `O(classes · parts)` merge
/// interleaves the partitions' first-occurrence lists back into global
/// first-occurrence order — the same class list, same order, as a single
/// sequential scan.
pub struct ClassIndex {
    /// Per-partition probe table + key rows; probes route by
    /// [`part_of`] on the key hash.
    parts: Vec<(RowTable, KeyStore)>,
    /// Local class id → global class id, per partition.
    globals: Vec<Vec<u32>>,
    key_idx: Vec<usize>,
    /// First member row of each class.
    pub protos: Vec<u32>,
    /// Member rows of each class, in input order.
    pub members: Vec<Vec<u32>>,
    /// Class id of every input row (row-major accumulation).
    pub class_of_row: Vec<u32>,
}

impl ClassIndex {
    /// Build the index over `key_idx` columns of `input`.
    pub fn build(input: &ColumnarRelation, key_idx: Vec<usize>) -> ClassIndex {
        let cols = input.columns().to_vec();
        let rows = input.rows();
        let hashes = super::hash::hash_all(&cols, &key_idx, rows);
        let nparts = if rows < CLASS_RADIX_MIN_ROWS {
            1
        } else {
            RADIX_PARTS
        };
        let (offsets, ids) = radix_scatter(&hashes, nparts);

        let mut parts = Vec::with_capacity(nparts);
        let mut local_protos: Vec<Vec<u32>> = Vec::with_capacity(nparts);
        let mut local_members: Vec<Vec<Vec<u32>>> = Vec::with_capacity(nparts);
        // Local class id of every row (globalized after the merge).
        let mut local_of_row = vec![0u32; rows];
        for p in 0..nparts {
            let slice = &ids[offsets[p] as usize..offsets[p + 1] as usize];
            let mut table = RowTable::with_capacity(slice.len());
            let mut store = KeyStore::for_keys(input.schema(), &key_idx);
            let mut protos_p = Vec::new();
            let mut members_p: Vec<Vec<u32>> = Vec::new();
            for &rid in slice {
                let row = rid as usize;
                let (id, inserted) =
                    table.find_or_insert(hashes[row], |e| store.eq_row(e, &cols, &key_idx, row), 0);
                if inserted {
                    store.push_row(&cols, &key_idx, row);
                    protos_p.push(rid);
                    members_p.push(Vec::new());
                }
                members_p[id as usize].push(rid);
                local_of_row[row] = id;
            }
            parts.push((table, store));
            local_protos.push(protos_p);
            local_members.push(members_p);
        }

        // Merge: interleave the partitions' (ascending) proto lists into
        // the global first-occurrence order.
        let total: usize = local_protos.iter().map(Vec::len).sum();
        let mut protos = Vec::with_capacity(total);
        let mut members = Vec::with_capacity(total);
        let mut globals: Vec<Vec<u32>> = local_protos.iter().map(|p| vec![0u32; p.len()]).collect();
        let mut cursor = vec![0usize; nparts];
        for _ in 0..total {
            let mut best: Option<(u32, usize)> = None;
            for (p, plist) in local_protos.iter().enumerate() {
                if let Some(&proto) = plist.get(cursor[p]) {
                    if best.is_none_or(|(b, _)| proto < b) {
                        best = Some((proto, p));
                    }
                }
            }
            let (proto, p) = best.expect("cursor invariant");
            globals[p][cursor[p]] = protos.len() as u32;
            protos.push(proto);
            members.push(std::mem::take(&mut local_members[p][cursor[p]]));
            cursor[p] += 1;
        }

        let mut class_of_row = Vec::with_capacity(rows);
        for (row, &h) in hashes.iter().enumerate() {
            let p = part_of(h, nparts);
            class_of_row.push(globals[p][local_of_row[row] as usize]);
        }

        ClassIndex {
            parts,
            globals,
            key_idx,
            protos,
            members,
            class_of_row,
        }
    }

    /// Class id of physical `row` of `cols` (same key layout), if present.
    pub fn find(&self, cols: &[Arc<Column>], row: usize) -> Option<u32> {
        let h = KeyStore::hash_row(cols, &self.key_idx, row);
        let p = part_of(h, self.parts.len());
        let (table, store) = &self.parts[p];
        table
            .find(h, |e| store.eq_row(e, cols, &self.key_idx, row))
            .map(|local| self.globals[p][local as usize])
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.protos.len()
    }

    /// True when the input had no rows.
    pub fn is_empty(&self) -> bool {
        self.protos.is_empty()
    }
}

/// Assemble an output relation for per-class temporal kernels: for each
/// emitted fragment, the explicit attributes come from a prototype row of
/// `input` and the period from parallel `t1`/`t2` vectors.
fn emit_fragments(
    input: &ColumnarRelation,
    out_schema: Arc<Schema>,
    proto_rows: &[u32],
    t1: Vec<i64>,
    t2: Vec<i64>,
) -> ColumnarRelation {
    let (i1, i2) = (
        out_schema.t1_index().expect("temporal output"),
        out_schema.t2_index().expect("temporal output"),
    );
    let mut columns = Vec::with_capacity(out_schema.arity());
    for (c, col) in input.columns().iter().enumerate() {
        if c == i1 {
            let mut t = Column::with_capacity(DataType::Time, t1.len());
            for v in &t1 {
                t.push_time(*v);
            }
            columns.push(Arc::new(t));
        } else if c == i2 {
            let mut t = Column::with_capacity(DataType::Time, t2.len());
            for v in &t2 {
                t.push_time(*v);
            }
            columns.push(Arc::new(t));
        } else {
            columns.push(Arc::new(col.gather(proto_rows)));
        }
    }
    ColumnarRelation::new(out_schema, columns)
}

/// Hash-grouped aggregation, list-exact against `tqo_core::ops::aggregate`
/// (groups in first-occurrence order, identical null/overflow semantics).
pub fn aggregate(
    input: &ColumnarRelation,
    group_by: &[String],
    aggs: &[AggItem],
    out_schema: Arc<Schema>,
) -> Result<ColumnarRelation> {
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema().resolve(g))
        .collect::<Result<_>>()?;
    let classes = ClassIndex::build(input, key_idx.clone());

    // Grand-total aggregation over an empty relation still yields one row.
    if group_by.is_empty() && input.is_empty() {
        let mut columns = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let dtype = agg.output_type(input.schema())?;
            let mut col = Column::with_capacity(dtype, 1);
            col.push(&agg.compute(input.schema(), &[])?)?;
            columns.push(Arc::new(col));
        }
        return Ok(ColumnarRelation::new(out_schema, columns));
    }

    let groups = classes.len();
    let mut columns: Vec<Arc<Column>> = Vec::with_capacity(out_schema.arity());
    for &k in &key_idx {
        columns.push(Arc::new(input.column(k).gather(&classes.protos)));
    }
    for agg in aggs {
        columns.push(Arc::new(accumulate(input, &classes, agg, groups)?));
    }
    Ok(ColumnarRelation::new(out_schema, columns))
}

/// One aggregate over all groups, matching `AggItem::compute` exactly.
/// Accumulation is row-major (one pass over the input, `O(groups)` state)
/// with vectorized fast paths for null-free numeric columns; null-bearing
/// or exotic inputs take the generic per-value path with identical
/// semantics.
fn accumulate(
    input: &ColumnarRelation,
    classes: &ClassIndex,
    agg: &AggItem,
    groups: usize,
) -> Result<Column> {
    let arg = match &agg.arg {
        Some(a) => Some(input.schema().resolve(a)?),
        None => None,
    };
    let out_dtype = agg.output_type(input.schema())?;
    let gid = &classes.class_of_row;
    let mut out = Column::with_capacity(out_dtype, groups);
    match agg.func {
        AggFunc::Count => {
            let mut n = vec![0i64; groups];
            match arg {
                None => {
                    for &g in gid {
                        n[g as usize] += 1;
                    }
                }
                Some(c) => {
                    let col = input.column(c);
                    for (row, &g) in gid.iter().enumerate() {
                        if !col.is_null(row) {
                            n[g as usize] += 1;
                        }
                    }
                }
            }
            for v in n {
                out.push(&tqo_core::Value::Int(v))?;
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let col = input.column(arg.expect("validated by output_type"));
            let min = agg.func == AggFunc::Min;
            // Best row per group; i64::MAX = none seen. Strict comparisons
            // keep the earliest row on ties, as the row engine does.
            let mut best = vec![u32::MAX; groups];
            if let Some(data) = col.as_i64() {
                for (row, &g) in gid.iter().enumerate() {
                    let b = best[g as usize];
                    if b == u32::MAX
                        || (min && data[row] < data[b as usize])
                        || (!min && data[row] > data[b as usize])
                    {
                        best[g as usize] = row as u32;
                    }
                }
            } else {
                for (row, &g) in gid.iter().enumerate() {
                    if col.is_null(row) {
                        continue;
                    }
                    let b = best[g as usize];
                    let keep_new = b == u32::MAX || {
                        let ord = col.cmp_at(row, col, b as usize);
                        if min {
                            ord == Ordering::Less
                        } else {
                            ord == Ordering::Greater
                        }
                    };
                    if keep_new {
                        best[g as usize] = row as u32;
                    }
                }
            }
            for b in best {
                if b == u32::MAX {
                    out.push(&tqo_core::Value::Null)?;
                } else {
                    out.push_from(col, b as usize);
                }
            }
        }
        AggFunc::Sum => {
            let col = input.column(arg.expect("validated by output_type"));
            if let Some(data) = col.as_i64() {
                // Null-free Int/Time column: integer sums, every group has
                // at least one member.
                let mut acc = vec![0i64; groups];
                for (row, &g) in gid.iter().enumerate() {
                    acc[g as usize] += data[row];
                }
                for v in acc {
                    out.push(&tqo_core::Value::Int(v))?;
                }
            } else if let Some(data) = col.as_f64() {
                let mut acc = vec![0.0f64; groups];
                for (row, &g) in gid.iter().enumerate() {
                    acc[g as usize] += data[row];
                }
                for v in acc {
                    out.push(&tqo_core::Value::Float(v))?;
                }
            } else {
                let mut acc_i = vec![0i64; groups];
                let mut acc_f = vec![0.0f64; groups];
                let mut any = vec![false; groups];
                let mut float = vec![false; groups];
                for (row, &g) in gid.iter().enumerate() {
                    let g = g as usize;
                    match col.value(row) {
                        tqo_core::Value::Null => {}
                        tqo_core::Value::Int(v) | tqo_core::Value::Time(v) => {
                            acc_i[g] += v;
                            acc_f[g] += v as f64;
                            any[g] = true;
                        }
                        tqo_core::Value::Float(v) => {
                            acc_f[g] += v;
                            float[g] = true;
                            any[g] = true;
                        }
                        other => {
                            return Err(Error::TypeError {
                                expected: "numeric",
                                found: other.to_string(),
                                context: "SUM",
                            })
                        }
                    }
                }
                for g in 0..groups {
                    let v = if !any[g] {
                        tqo_core::Value::Null
                    } else if float[g] {
                        tqo_core::Value::Float(acc_f[g])
                    } else {
                        tqo_core::Value::Int(acc_i[g])
                    };
                    out.push(&v)?;
                }
            }
        }
        AggFunc::Avg => {
            let col = input.column(arg.expect("validated by output_type"));
            let mut sum = vec![0.0f64; groups];
            let mut n = vec![0usize; groups];
            if let Some(data) = col.as_i64() {
                for (row, &g) in gid.iter().enumerate() {
                    sum[g as usize] += data[row] as f64;
                    n[g as usize] += 1;
                }
            } else if let Some(data) = col.as_f64() {
                for (row, &g) in gid.iter().enumerate() {
                    sum[g as usize] += data[row];
                    n[g as usize] += 1;
                }
            } else {
                for (row, &g) in gid.iter().enumerate() {
                    let v = col.value(row);
                    if v.is_null() {
                        continue;
                    }
                    sum[g as usize] += v.as_float()?;
                    n[g as usize] += 1;
                }
            }
            for g in 0..groups {
                let v = if n[g] == 0 {
                    tqo_core::Value::Null
                } else {
                    tqo_core::Value::Float(sum[g] / n[g] as f64)
                };
                out.push(&v)?;
            }
        }
    }
    Ok(out)
}

/// Left-major Cartesian product (`×`), list-exact against
/// `tqo_core::ops::product`.
pub fn product(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
) -> ColumnarRelation {
    let (n, m) = (left.rows(), right.rows());
    let mut lidx = Vec::with_capacity(n * m);
    let mut ridx = Vec::with_capacity(n * m);
    for i in 0..n as u32 {
        for j in 0..m as u32 {
            lidx.push(i);
            ridx.push(j);
        }
    }
    let mut columns = Vec::with_capacity(out_schema.arity());
    columns.extend(left.columns().iter().map(|c| Arc::new(c.gather(&lidx))));
    columns.extend(right.columns().iter().map(|c| Arc::new(c.gather(&ridx))));
    ColumnarRelation::new(out_schema, columns)
}

fn product_t_output(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    lidx: Vec<u32>,
    ridx: Vec<u32>,
    t1: Vec<i64>,
    t2: Vec<i64>,
) -> ColumnarRelation {
    let mut columns = Vec::with_capacity(out_schema.arity());
    columns.extend(left.columns().iter().map(|c| Arc::new(c.gather(&lidx))));
    columns.extend(right.columns().iter().map(|c| Arc::new(c.gather(&ridx))));
    let mut c1 = Column::with_capacity(DataType::Time, t1.len());
    let mut c2 = Column::with_capacity(DataType::Time, t2.len());
    for v in t1 {
        c1.push_time(v);
    }
    for v in t2 {
        c2.push_time(v);
    }
    columns.push(Arc::new(c1));
    columns.push(Arc::new(c2));
    ColumnarRelation::new(out_schema, columns)
}

/// Faithful `×ᵀ`: left-major nested loop over period-overlapping pairs,
/// list-exact against `tqo_core::ops::product_t`.
pub fn product_t_nested(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
) -> Result<ColumnarRelation> {
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for i in 0..left.rows() {
        for j in 0..right.rows() {
            let s = ls[i].max(rs[j]);
            let e = le[i].min(re[j]);
            if s < e {
                lidx.push(i as u32);
                ridx.push(j as u32);
                t1.push(s);
                t2.push(e);
            }
        }
    }
    Ok(product_t_output(
        left, right, out_schema, lidx, ridx, t1, t2,
    ))
}

/// Branch-free intersection emission for the plane sweeps: intersect one
/// new period against the opposite side's whole active list, writing
/// every candidate pair at a cursor and advancing it by the overlap
/// predicate — no per-pair branch, so the `max`/`min`/compare chain
/// vectorizes. Emission order is the active-list order, identical to the
/// branchy loop it replaces. `new_is_left` says which output side the new
/// period's index lands on.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn emit_overlaps(
    active: &[(i64, i64, u32)],
    s: i64,
    e: i64,
    new_idx: u32,
    new_is_left: bool,
    lidx: &mut Vec<u32>,
    ridx: &mut Vec<u32>,
    t1: &mut Vec<i64>,
    t2: &mut Vec<i64>,
) {
    let base = lidx.len();
    let need = base + active.len();
    lidx.resize(need, 0);
    ridx.resize(need, 0);
    t1.resize(need, 0);
    t2.resize(need, 0);
    let mut m = base;
    if new_is_left {
        for &(os, oe, oi) in active {
            let ps = s.max(os);
            let pe = e.min(oe);
            lidx[m] = new_idx;
            ridx[m] = oi;
            t1[m] = ps;
            t2[m] = pe;
            m += (ps < pe) as usize;
        }
    } else {
        for &(os, oe, oi) in active {
            let ps = s.max(os);
            let pe = e.min(oe);
            lidx[m] = oi;
            ridx[m] = new_idx;
            t1[m] = ps;
            t2[m] = pe;
            m += (ps < pe) as usize;
        }
    }
    lidx.truncate(m);
    ridx.truncate(m);
    t1.truncate(m);
    t2.truncate(m);
}

/// Fast `×ᵀ`: endpoint plane sweep over the period columns, list-exact
/// against `crate::operators::product_t_plane_sweep` (same stable sort,
/// same tie-breaking, same active-list order).
pub fn product_t_sweep(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
) -> Result<ColumnarRelation> {
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let mut lev: Vec<(i64, i64, u32)> =
        (0..left.rows()).map(|i| (ls[i], le[i], i as u32)).collect();
    let mut rev: Vec<(i64, i64, u32)> = (0..right.rows())
        .map(|j| (rs[j], re[j], j as u32))
        .collect();
    lev.sort_by_key(|&(s, e, _)| (s, e));
    rev.sort_by_key(|&(s, e, _)| (s, e));

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    let mut active_l: Vec<(i64, i64, u32)> = Vec::new();
    let mut active_r: Vec<(i64, i64, u32)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lev.len() || j < rev.len() {
        let take_left = match (lev.get(i), rev.get(j)) {
            (Some(l), Some(r)) => (l.0, l.1) <= (r.0, r.1),
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            let (s, e, li) = lev[i];
            i += 1;
            active_r.retain(|&(_, rend, _)| rend > s);
            emit_overlaps(
                &active_r, s, e, li, true, &mut lidx, &mut ridx, &mut t1, &mut t2,
            );
            active_l.push((s, e, li));
        } else {
            let (s, e, ri) = rev[j];
            j += 1;
            active_l.retain(|&(_, lend, _)| lend > s);
            emit_overlaps(
                &active_l, s, e, ri, false, &mut lidx, &mut ridx, &mut t1, &mut t2,
            );
            active_r.push((s, e, ri));
        }
    }
    Ok(product_t_output(
        left, right, out_schema, lidx, ridx, t1, t2,
    ))
}

/// `\ᵀ` via per-class count timelines, list-exact against
/// `tqo_core::ops::difference_t`.
pub fn difference_t(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
) -> Result<ColumnarRelation> {
    left.schema()
        .check_union_compatible(right.schema(), "temporal difference")?;
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let classes = ClassIndex::build(left, left.schema().value_indices());

    let mut timelines: Vec<CountTimeline> = vec![CountTimeline::new(); classes.len()];
    for (class, members) in classes.members.iter().enumerate() {
        for &i in members {
            timelines[class].add(Period::of(ls[i as usize], le[i as usize]), 1);
        }
    }
    let rcols = right.columns().to_vec();
    for j in 0..right.rows() {
        if let Some(class) = classes.find(&rcols, j) {
            timelines[class as usize].add(Period::of(rs[j], re[j]), -1);
        }
    }

    let mut protos = Vec::new();
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for (class, tl) in timelines.iter().enumerate() {
        let proto = classes.protos[class];
        for (period, count) in tl.constant_intervals() {
            for _ in 0..count.max(0) {
                protos.push(proto);
                t1.push(period.start);
                t2.push(period.end);
            }
        }
    }
    Ok(emit_fragments(left, out_schema, &protos, t1, t2))
}

/// Sweep `rdupᵀ`: per-class period union, list-exact against
/// `crate::operators::rdup_t_sweep`.
pub fn rdup_t_sweep(input: &ColumnarRelation) -> Result<ColumnarRelation> {
    let (s, e) = input.period_columns()?;
    let classes = ClassIndex::build(input, input.schema().value_indices());
    let mut protos = Vec::new();
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for (class, members) in classes.members.iter().enumerate() {
        let periods: Vec<Period> = members
            .iter()
            .map(|&i| Period::of(s[i as usize], e[i as usize]))
            .collect();
        for p in normalize_periods(periods) {
            protos.push(classes.protos[class]);
            t1.push(p.start);
            t2.push(p.end);
        }
    }
    Ok(emit_fragments(
        input,
        input.schema().clone(),
        &protos,
        t1,
        t2,
    ))
}

/// One class of `coalᵀ`: sort the class's periods, then merge meeting
/// neighbors. The single definition both the serial kernel and the
/// parallel engine call, so per-class coalescing cannot drift between
/// engines.
pub(crate) fn coalesce_class(mut periods: Vec<Period>) -> Vec<Period> {
    periods.sort();
    let mut out = Vec::new();
    let mut current: Option<Period> = None;
    for p in periods {
        match current {
            None => current = Some(p),
            Some(c) if c.end == p.start => current = Some(Period::of(c.start, p.end)),
            Some(c) => {
                out.push(c);
                current = Some(p);
            }
        }
    }
    if let Some(c) = current {
        out.push(c);
    }
    out
}

/// Sort-merge `coalᵀ`: per-class sorted adjacency merge, list-exact
/// against `crate::operators::coalesce_sort_merge`.
pub fn coalesce_sort_merge(input: &ColumnarRelation) -> Result<ColumnarRelation> {
    let (s, e) = input.period_columns()?;
    let classes = ClassIndex::build(input, input.schema().value_indices());
    let mut protos = Vec::new();
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for (class, members) in classes.members.iter().enumerate() {
        let periods: Vec<Period> = members
            .iter()
            .map(|&i| Period::of(s[i as usize], e[i as usize]))
            .collect();
        let proto = classes.protos[class];
        for c in coalesce_class(periods) {
            protos.push(proto);
            t1.push(c.start);
            t2.push(c.end);
        }
    }
    Ok(emit_fragments(
        input,
        input.schema().clone(),
        &protos,
        t1,
        t2,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::expr::AggFunc;
    use tqo_core::ops;
    use tqo_core::relation::Relation;
    use tqo_core::tuple;

    fn cr(r: &Relation) -> ColumnarRelation {
        ColumnarRelation::from_relation(r).unwrap()
    }

    fn temporal(rows: &[(&str, i64, i64)]) -> Relation {
        Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            rows.iter().map(|&(v, s, e)| tuple![v, s, e]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn sort_matches_row_sort_exactly() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            vec![
                tuple![2i64, "x"],
                tuple![1i64, "z"],
                tuple![2i64, "a"],
                tuple![1i64, "a"],
            ],
        )
        .unwrap();
        let order = Order::asc(&["A"]);
        let c = cr(&r);
        let idx = sort_indices(&c, &order).unwrap();
        let cols: Vec<_> = c
            .columns()
            .iter()
            .map(|col| Arc::new(col.gather(&idx)))
            .collect();
        let got = ColumnarRelation::new(c.schema().clone(), cols).to_relation();
        assert_eq!(got, ops::sort(&r, &order).unwrap());
    }

    #[test]
    fn aggregate_matches_row_aggregate_exactly() {
        let r = Relation::new(
            Schema::of(&[("G", DataType::Str), ("V", DataType::Int)]),
            vec![
                tuple!["b", 1i64],
                tuple!["a", 2i64],
                tuple!["b", 3i64],
                tuple!["a", 4i64],
            ],
        )
        .unwrap();
        let aggs = [
            AggItem::count_star("n"),
            AggItem::new(AggFunc::Sum, Some("V"), "s"),
            AggItem::new(AggFunc::Min, Some("V"), "lo"),
            AggItem::new(AggFunc::Max, Some("V"), "hi"),
            AggItem::new(AggFunc::Avg, Some("V"), "avg"),
        ];
        let group = ["G".to_owned()];
        let want = ops::aggregate(&r, &group, &aggs).unwrap();
        let out_schema = Arc::new(
            tqo_core::ops::aggregate::aggregate_schema(r.schema(), &group, &aggs).unwrap(),
        );
        let got = aggregate(&cr(&r), &group, &aggs, out_schema)
            .unwrap()
            .to_relation();
        assert_eq!(got, want);
    }

    #[test]
    fn grand_total_on_empty_matches() {
        let r = Relation::empty(Schema::of(&[("V", DataType::Int)]));
        let aggs = [AggItem::count_star("n")];
        let want = ops::aggregate(&r, &[], &aggs).unwrap();
        let out_schema =
            Arc::new(tqo_core::ops::aggregate::aggregate_schema(r.schema(), &[], &aggs).unwrap());
        let got = aggregate(&cr(&r), &[], &aggs, out_schema)
            .unwrap()
            .to_relation();
        assert_eq!(got, want);
    }

    #[test]
    fn product_t_kernels_match_row_algorithms_exactly() {
        let l = temporal(&[("a", 1, 5), ("b", 4, 9), ("c", 10, 12), ("a", 2, 7)]);
        let r = temporal(&[("x", 3, 6), ("y", 8, 12), ("z", 1, 2)]);
        let out_schema = Arc::new(
            tqo_core::ops::temporal::product_t::product_t_schema(l.schema(), r.schema()).unwrap(),
        );
        let nested = product_t_nested(&cr(&l), &cr(&r), out_schema.clone())
            .unwrap()
            .to_relation();
        assert_eq!(nested, ops::product_t(&l, &r).unwrap());
        let sweep = product_t_sweep(&cr(&l), &cr(&r), out_schema)
            .unwrap()
            .to_relation();
        assert_eq!(
            sweep,
            crate::operators::product_t_plane_sweep(&l, &r).unwrap()
        );
    }

    #[test]
    fn difference_t_matches_timeline_sweep_exactly() {
        let l = temporal(&[("a", 1, 8), ("a", 4, 12), ("b", 2, 6), ("c", 1, 3)]);
        let r = temporal(&[("a", 5, 9), ("b", 1, 4), ("z", 0, 20)]);
        let got = difference_t(&cr(&l), &cr(&r), Arc::new(l.schema().clone()))
            .unwrap()
            .to_relation();
        assert_eq!(got, ops::difference_t(&l, &r).unwrap());
    }

    #[test]
    fn temporal_unary_kernels_match_row_algorithms_exactly() {
        let r = temporal(&[
            ("a", 4, 6),
            ("a", 1, 10),
            ("b", 2, 5),
            ("b", 5, 9),
            ("a", 12, 14),
        ]);
        let got = rdup_t_sweep(&cr(&r)).unwrap().to_relation();
        assert_eq!(got, crate::operators::rdup_t_sweep(&r).unwrap());
        let got = coalesce_sort_merge(&cr(&r)).unwrap().to_relation();
        assert_eq!(got, crate::operators::coalesce_sort_merge(&r).unwrap());
    }

    #[test]
    fn product_matches_row_product() {
        let a = Relation::new(
            Schema::of(&[("A", DataType::Int)]),
            vec![tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let b = Relation::new(
            Schema::of(&[("B", DataType::Str)]),
            vec![tuple!["x"], tuple!["y"]],
        )
        .unwrap();
        let out_schema =
            Arc::new(tqo_core::ops::product::product_schema(a.schema(), b.schema()).unwrap());
        let got = product(&cr(&a), &cr(&b), out_schema).to_relation();
        assert_eq!(got, ops::product(&a, &b).unwrap());
    }
}
