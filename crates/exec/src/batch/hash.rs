//! Row-oriented hash machinery for the batch operators.
//!
//! [`RowTable`] is a linear-probing table keyed by precomputed 64-bit row
//! hashes; collisions are resolved by a caller-supplied equality closure
//! over the backing columns, so the table itself never touches values.
//! Insertion order assigns dense entry ids (`0, 1, 2, …`), which the
//! operators use directly as group / distinct-row / class identifiers —
//! first-occurrence order falls out for free.
//!
//! [`KeyStore`] accumulates the key columns of inserted rows so later rows
//! (possibly from other batches or the probe side of a binary operator)
//! can be compared against entry ids.

use std::sync::Arc;

use tqo_core::columnar::Column;
use tqo_core::schema::Schema;

const EMPTY: u32 = u32::MAX;

/// A linear-probing hash table over externally stored rows.
#[derive(Debug)]
pub struct RowTable {
    slots: Vec<u32>,
    hashes: Vec<u64>,
    payloads: Vec<i64>,
    mask: usize,
}

impl Default for RowTable {
    fn default() -> Self {
        RowTable::with_capacity(16)
    }
}

impl RowTable {
    /// A table sized for about `n` entries.
    pub fn with_capacity(n: usize) -> RowTable {
        let cap = (n * 8 / 7 + 1).next_power_of_two().max(16);
        RowTable {
            slots: vec![EMPTY; cap],
            hashes: Vec::with_capacity(n),
            payloads: Vec::with_capacity(n),
            mask: cap - 1,
        }
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Approximate footprint in bytes (slot array + hashes + payloads),
    /// for memory-budget accounting.
    pub fn approx_bytes(&self) -> usize {
        self.slots.len() * 4 + self.hashes.len() * 8 + self.payloads.len() * 8
    }

    /// True when no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Find the entry with this hash satisfying `eq`, or insert a new one
    /// with `payload`. Returns `(entry_id, inserted)`.
    #[inline]
    pub fn find_or_insert(
        &mut self,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
        payload: i64,
    ) -> (u32, bool) {
        if (self.hashes.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = hash as usize & self.mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY {
                let id = self.hashes.len() as u32;
                self.slots[i] = id;
                self.hashes.push(hash);
                self.payloads.push(payload);
                return (id, true);
            }
            if self.hashes[e as usize] == hash && eq(e) {
                return (e, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// First entry in `hash`'s probe chain with an equal stored hash,
    /// without key verification — the cheap candidate step of a batched
    /// probe. The caller must verify the candidate's key itself (and fall
    /// back to [`RowTable::find`]/[`RowTable::find_or_insert`] on
    /// mismatch: distinct keys can collide on the full 64-bit hash, and a
    /// later chain entry may then hold the real match).
    #[inline]
    pub fn find_first_hash(&self, hash: u64) -> Option<u32> {
        let mut i = hash as usize & self.mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY {
                return None;
            }
            if self.hashes[e as usize] == hash {
                return Some(e);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Find an existing entry without inserting.
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = hash as usize & self.mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY {
                return None;
            }
            if self.hashes[e as usize] == hash && eq(e) {
                return Some(e);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    /// The payload of entry `id`.
    pub fn payload(&self, id: u32) -> i64 {
        self.payloads[id as usize]
    }

    #[inline]
    /// Mutable payload of entry `id`.
    pub fn payload_mut(&mut self, id: u32) -> &mut i64 {
        &mut self.payloads[id as usize]
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        for (id, h) in self.hashes.iter().enumerate() {
            let mut i = *h as usize & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = id as u32;
        }
    }
}

/// Densely stored key rows, one column per key attribute, appended in
/// entry-id order so `store row id == RowTable entry id`.
#[derive(Debug)]
pub struct KeyStore {
    columns: Vec<Column>,
    /// Incrementally tracked payload bytes of the stored rows, so
    /// [`KeyStore::approx_bytes`] is `O(1)` per call instead of
    /// rescanning every stored string — streaming operators recharge
    /// their budget per batch, and an `O(entries)` recount per batch
    /// turns the whole build quadratic.
    bytes: usize,
}

impl KeyStore {
    /// A store for the given key attributes of `schema`.
    pub fn for_keys(schema: &Schema, key_idx: &[usize]) -> KeyStore {
        KeyStore {
            columns: key_idx
                .iter()
                .map(|&i| Column::with_capacity(schema.attr(i).dtype, 64))
                .collect(),
            bytes: 0,
        }
    }

    /// Number of stored key rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Approximate footprint in bytes of the stored key columns, for
    /// memory-budget accounting. Payload bytes are tracked incrementally
    /// at push time; only the (cheap, per-column) null-mask lengths are
    /// summed here.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
            + self
                .columns
                .iter()
                .map(|c| if c.has_nulls() { c.len() } else { 0 })
                .sum::<usize>()
    }

    /// True when no key rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored key columns, parallel to the build key layout.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The `k`-th stored key column.
    pub fn column(&self, k: usize) -> &Column {
        &self.columns[k]
    }

    /// Append physical row `row` of the given source columns (`key_idx`
    /// selects the key columns, parallel to this store's layout).
    pub fn push_row(&mut self, cols: &[Arc<Column>], key_idx: &[usize], row: usize) {
        for (store_col, &src) in self.columns.iter_mut().zip(key_idx) {
            store_col.push_from(&cols[src], row);
            self.bytes += store_col.approx_bytes_at(store_col.len() - 1);
        }
    }

    /// Compare stored row `id` against physical row `row` of `cols`.
    #[inline]
    pub fn eq_row(&self, id: u32, cols: &[Arc<Column>], key_idx: &[usize], row: usize) -> bool {
        self.columns
            .iter()
            .zip(key_idx)
            .all(|(store_col, &src)| store_col.eq_at(id as usize, &cols[src], row))
    }

    /// Hash physical row `row` of `cols` over the key columns.
    #[inline]
    pub fn hash_row(cols: &[Arc<Column>], key_idx: &[usize], row: usize) -> u64 {
        let mut h = 0u64;
        for &src in key_idx {
            h = tqo_core::columnar::hash_combine(h, cols[src].hash_at(row));
        }
        h
    }
}

/// Key-space partition of a row hash. The high half of the hash drives
/// partition choice while probe tables index slots with the low bits, so
/// partition and slot choice stay decorrelated. Shared by the serial
/// radix-partitioned builds and the parallel
/// [`ParClassIndex`](crate::parallel) so both sides agree on routing.
#[inline]
pub fn part_of(hash: u64, nparts: usize) -> usize {
    ((hash >> 32) % nparts as u64) as usize
}

/// Two-pass (histogram, scatter) radix partitioning of row ids by hash
/// partition. Returns `(offsets, ids)` where partition `p`'s rows are
/// `ids[offsets[p] as usize..offsets[p + 1] as usize]`. The scatter is
/// stable, so each partition's ids stay ascending — the property that
/// makes a per-partition build equivalent to a serial first-occurrence
/// scan restricted to that partition.
pub fn radix_scatter(hashes: &[u64], nparts: usize) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; nparts + 1];
    for &h in hashes {
        counts[part_of(h, nparts) + 1] += 1;
    }
    for p in 0..nparts {
        counts[p + 1] += counts[p];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut ids = vec![0u32; hashes.len()];
    for (row, &h) in hashes.iter().enumerate() {
        let p = part_of(h, nparts);
        ids[cursor[p] as usize] = row as u32;
        cursor[p] += 1;
    }
    (offsets, ids)
}

/// Hash a whole batch's live rows over the key columns, column-at-a-time
/// (one dtype dispatch per column per batch instead of per row). Output
/// is in logical row order, parallel to `batch.rows()`.
pub fn hash_batch(batch: &super::Batch, key_idx: &[usize]) -> Vec<u64> {
    let mut hashes = vec![0u64; batch.num_rows()];
    for &src in key_idx {
        let col = batch.column(src);
        match batch.sel() {
            super::Sel::Range(s, _) => col.hash_range(*s, &mut hashes),
            super::Sel::Rows(rows) => col.hash_idx(rows, &mut hashes),
        }
    }
    hashes
}

/// Hash all rows of a columnar relation over the key columns.
pub fn hash_all(cols: &[Arc<Column>], key_idx: &[usize], rows: usize) -> Vec<u64> {
    let mut hashes = vec![0u64; rows];
    for &src in key_idx {
        cols[src].hash_range(0, &mut hashes);
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::columnar::ColumnarRelation;
    use tqo_core::relation::Relation;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    #[test]
    fn distinct_rows_get_dense_first_occurrence_ids() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            vec![
                tuple![1i64, "x"],
                tuple![2i64, "y"],
                tuple![1i64, "x"],
                tuple![1i64, "y"],
            ],
        )
        .unwrap();
        let c = ColumnarRelation::from_relation(&r).unwrap();
        let cols = c.columns().to_vec();
        let keys = [0usize, 1usize];
        let mut table = RowTable::default();
        let mut store = KeyStore::for_keys(c.schema(), &keys);
        let mut ids = Vec::new();
        for row in 0..c.rows() {
            let h = KeyStore::hash_row(&cols, &keys, row);
            let (id, inserted) = table.find_or_insert(h, |e| store.eq_row(e, &cols, &keys, row), 0);
            if inserted {
                store.push_row(&cols, &keys, row);
            }
            ids.push(id);
        }
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(table.len(), 3);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn growth_preserves_entries() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int)]),
            (0..1000i64).map(|i| tuple![i % 400]).collect(),
        )
        .unwrap();
        let c = ColumnarRelation::from_relation(&r).unwrap();
        let cols = c.columns().to_vec();
        let keys = [0usize];
        let mut table = RowTable::default();
        let mut store = KeyStore::for_keys(c.schema(), &keys);
        for row in 0..c.rows() {
            let h = KeyStore::hash_row(&cols, &keys, row);
            let (_, inserted) = table.find_or_insert(h, |e| store.eq_row(e, &cols, &keys, row), 1);
            if inserted {
                store.push_row(&cols, &keys, row);
            }
        }
        assert_eq!(table.len(), 400);
    }

    #[test]
    fn payloads_are_mutable() {
        let mut table = RowTable::default();
        let (id, inserted) = table.find_or_insert(42, |_| true, 5);
        assert!(inserted);
        *table.payload_mut(id) -= 2;
        assert_eq!(table.payload(id), 3);
        let (id2, inserted2) = table.find_or_insert(42, |_| true, 0);
        assert!(!inserted2);
        assert_eq!(id2, id);
    }
}
