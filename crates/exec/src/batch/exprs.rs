//! Vectorized predicate evaluation.
//!
//! [`compile`] translates a predicate [`Expr`] into a small column-indexed
//! program evaluated batch-at-a-time. Only the *total* fragment of the
//! expression language is compiled — comparisons between columns and
//! literals, `AND`/`OR`/`NOT`, `IS NULL`, and boolean columns — i.e.
//! expressions whose evaluation can never raise (no arithmetic, no
//! `as_bool` coercions, all attributes resolved). Everything else returns
//! `None` and the select operator falls back to row-at-a-time
//! `Expr::eval_predicate`, preserving the row engine's error behaviour
//! (including its short-circuit evaluation order) exactly.
//!
//! Null semantics replicate `Expr::eval` *literally* — including its
//! non-Kleene corner: `FALSE AND NULL` is `FALSE` only when the false
//! operand is on the left (the right side is reached only after the left
//! failed to short-circuit, and any null operand then nulls the result).

use std::cmp::Ordering;

use tqo_core::expr::{BinOp, Expr};
use tqo_core::schema::Schema;
use tqo_core::value::{DataType, Value};

use super::Batch;

/// A compiled predicate over column indices.
#[derive(Debug, Clone)]
pub enum Pred {
    /// `col <op> col`.
    CmpCols(BinOp, usize, usize),
    /// `col <op> literal`.
    CmpColLit(BinOp, usize, Value),
    /// `literal <op> col`.
    CmpLitCol(BinOp, Value, usize),
    /// `literal <op> literal` (constant-folded at eval time).
    CmpLits(BinOp, Value, Value),
    /// A boolean column used directly as a predicate.
    BoolCol(usize),
    /// A boolean (or null) literal.
    BoolLit(Option<bool>),
    /// `<col> IS NULL`.
    IsNullCol(usize),
    /// `<literal> IS NULL`.
    IsNullLit(bool),
    /// Conjunction (left short-circuits, as in the row engine).
    And(Box<Pred>, Box<Pred>),
    /// Disjunction (left short-circuits).
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

/// A vector of three-valued booleans: `vals[i]` is meaningful where
/// `nulls` is absent or `!nulls[i]`.
pub struct BoolVec {
    /// Truth value per live row (null slots hold `false`).
    pub vals: Vec<bool>,
    /// Null mask per live row (`None` = no nulls).
    pub nulls: Option<Vec<bool>>,
}

impl BoolVec {
    fn new(n: usize) -> BoolVec {
        BoolVec {
            vals: vec![false; n],
            nulls: None,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[i])
    }

    #[inline]
    fn set_null(&mut self, i: usize) {
        self.nulls
            .get_or_insert_with(|| vec![false; self.vals.len()])[i] = true;
    }
}

/// Compile `expr` for batches of `schema`; `None` when the expression
/// leaves the total fragment (the caller falls back to row evaluation).
pub fn compile(expr: &Expr, schema: &Schema) -> Option<Pred> {
    match expr {
        Expr::Bin { op, left, right } if op.is_comparison() => {
            match (operand(left, schema)?, operand(right, schema)?) {
                (Operand::Col(l), Operand::Col(r)) => {
                    // Column-vs-column runs on the native `cmp_at`, which is
                    // only defined within a dtype family; cross-family
                    // comparisons (Value::cmp is total over those too) fall
                    // back to row evaluation.
                    let (lt, rt) = (schema.attr(l).dtype, schema.attr(r).dtype);
                    let time_like = |t: DataType| matches!(t, DataType::Int | DataType::Time);
                    if lt == rt || (time_like(lt) && time_like(rt)) {
                        Some(Pred::CmpCols(*op, l, r))
                    } else {
                        None
                    }
                }
                (Operand::Col(l), Operand::Lit(v)) => Some(Pred::CmpColLit(*op, l, v)),
                (Operand::Lit(v), Operand::Col(r)) => Some(Pred::CmpLitCol(*op, v, r)),
                (Operand::Lit(a), Operand::Lit(b)) => Some(Pred::CmpLits(*op, a, b)),
            }
        }
        Expr::Bin { op, left, right } if *op == BinOp::And => Some(Pred::And(
            Box::new(compile(left, schema)?),
            Box::new(compile(right, schema)?),
        )),
        Expr::Bin { op, left, right } if *op == BinOp::Or => Some(Pred::Or(
            Box::new(compile(left, schema)?),
            Box::new(compile(right, schema)?),
        )),
        Expr::Not(e) => Some(Pred::Not(Box::new(compile(e, schema)?))),
        Expr::IsNull(e) => match operand(e, schema)? {
            Operand::Col(i) => Some(Pred::IsNullCol(i)),
            Operand::Lit(v) => Some(Pred::IsNullLit(v.is_null())),
        },
        Expr::Col(name) => {
            let i = schema.index_of(name)?;
            (schema.attr(i).dtype == DataType::Bool).then_some(Pred::BoolCol(i))
        }
        Expr::Lit(Value::Bool(b)) => Some(Pred::BoolLit(Some(*b))),
        Expr::Lit(Value::Null) => Some(Pred::BoolLit(None)),
        _ => None,
    }
}

enum Operand {
    Col(usize),
    Lit(Value),
}

fn operand(expr: &Expr, schema: &Schema) -> Option<Operand> {
    match expr {
        Expr::Col(name) => schema.index_of(name).map(Operand::Col),
        Expr::Lit(v) => Some(Operand::Lit(v.clone())),
        _ => None,
    }
}

#[inline]
fn apply(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compiled comparisons are comparisons"),
    }
}

/// Evaluate a compiled predicate over a batch's logical rows.
pub fn eval(pred: &Pred, batch: &Batch) -> BoolVec {
    let n = batch.num_rows();
    let mut out = BoolVec::new(n);
    match pred {
        Pred::CmpCols(op, l, r) => {
            let (lc, rc) = (batch.column(*l), batch.column(*r));
            for (k, i) in batch.rows().enumerate() {
                if lc.is_null(i) || rc.is_null(i) {
                    out.set_null(k);
                } else {
                    out.vals[k] = apply(*op, lc.cmp_at(i, rc, i));
                }
            }
        }
        Pred::CmpColLit(op, l, v) => {
            let lc = batch.column(*l);
            if v.is_null() {
                out.nulls = Some(vec![true; n]);
            } else if let (Some(data), Ok(lit)) = (lc.as_i64(), v.as_int()) {
                // Fast path: non-null Int/Time column vs integer literal.
                for (k, i) in batch.rows().enumerate() {
                    out.vals[k] = apply(*op, data[i].cmp(&lit));
                }
            } else {
                for (k, i) in batch.rows().enumerate() {
                    if lc.is_null(i) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = apply(*op, lc.cmp_value(i, v));
                    }
                }
            }
        }
        Pred::CmpLitCol(op, v, r) => {
            let rc = batch.column(*r);
            if v.is_null() {
                out.nulls = Some(vec![true; n]);
            } else {
                for (k, i) in batch.rows().enumerate() {
                    if rc.is_null(i) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = apply(*op, rc.cmp_value(i, v).reverse());
                    }
                }
            }
        }
        Pred::CmpLits(op, a, b) => {
            if a.is_null() || b.is_null() {
                out.nulls = Some(vec![true; n]);
            } else {
                let v = apply(*op, a.cmp(b));
                out.vals.fill(v);
            }
        }
        Pred::BoolCol(c) => {
            let col = batch.column(*c);
            for (k, i) in batch.rows().enumerate() {
                if col.is_null(i) {
                    out.set_null(k);
                } else if let Value::Bool(b) = col.value(i) {
                    out.vals[k] = b;
                }
            }
        }
        Pred::BoolLit(Some(b)) => out.vals.fill(*b),
        Pred::BoolLit(None) => out.nulls = Some(vec![true; n]),
        Pred::IsNullCol(c) => {
            let col = batch.column(*c);
            for (k, i) in batch.rows().enumerate() {
                out.vals[k] = col.is_null(i);
            }
        }
        Pred::IsNullLit(b) => out.vals.fill(*b),
        Pred::And(l, r) => {
            let lv = eval(l, batch);
            let rv = eval(r, batch);
            for k in 0..n {
                // Mirror Expr::eval: left == FALSE short-circuits; any
                // remaining null operand nulls the result.
                if !lv.is_null(k) && !lv.vals[k] {
                    out.vals[k] = false;
                } else if lv.is_null(k) || rv.is_null(k) {
                    out.set_null(k);
                } else {
                    out.vals[k] = lv.vals[k] && rv.vals[k];
                }
            }
        }
        Pred::Or(l, r) => {
            let lv = eval(l, batch);
            let rv = eval(r, batch);
            for k in 0..n {
                if !lv.is_null(k) && lv.vals[k] {
                    out.vals[k] = true;
                } else if lv.is_null(k) || rv.is_null(k) {
                    out.set_null(k);
                } else {
                    out.vals[k] = lv.vals[k] || rv.vals[k];
                }
            }
        }
        Pred::Not(e) => {
            let ev = eval(e, batch);
            for k in 0..n {
                if ev.is_null(k) {
                    out.set_null(k);
                } else {
                    out.vals[k] = !ev.vals[k];
                }
            }
        }
    }
    out
}

/// Filter a batch: physical indices of rows where the predicate is true
/// (`NULL` counts as not satisfied, as in SQL `WHERE`).
pub fn filter(pred: &Pred, batch: &Batch) -> Vec<u32> {
    let bv = eval(pred, batch);
    let mut kept = Vec::with_capacity(batch.num_rows());
    for (k, i) in batch.rows().enumerate() {
        if bv.vals[k] && !bv.is_null(k) {
            kept.push(i as u32);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tqo_core::columnar::ColumnarRelation;
    use tqo_core::relation::Relation;
    use tqo_core::tuple::Tuple;
    use tqo_core::{tuple, Schema};

    fn batch() -> Batch {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            vec![
                tuple![3i64, "x"],
                Tuple::new(vec![Value::Null, Value::from("y")]),
                tuple![7i64, "x"],
                tuple![5i64, "z"],
            ],
        )
        .unwrap();
        let c = ColumnarRelation::from_relation(&r).unwrap();
        Batch::slice(&c, 0, 4)
    }

    fn sch() -> Schema {
        Schema::of(&[("A", DataType::Int), ("B", DataType::Str)])
    }

    #[test]
    fn agrees_with_row_eval_on_the_total_fragment() {
        let b = batch();
        let rel = super::super::concat(Arc::new(sch()), std::slice::from_ref(&b)).to_relation();
        let exprs = [
            Expr::bin(BinOp::Ge, Expr::col("A"), Expr::lit(5i64)),
            Expr::eq(Expr::col("B"), Expr::lit("x")),
            Expr::and(
                Expr::bin(BinOp::Gt, Expr::col("A"), Expr::lit(2i64)),
                Expr::eq(Expr::col("B"), Expr::lit("x")),
            ),
            Expr::or(
                Expr::eq(Expr::col("B"), Expr::lit("z")),
                Expr::bin(BinOp::Lt, Expr::col("A"), Expr::lit(4i64)),
            ),
            Expr::not(Expr::eq(Expr::col("B"), Expr::lit("x"))),
            Expr::IsNull(Box::new(Expr::col("A"))),
            Expr::not(Expr::IsNull(Box::new(Expr::col("A")))),
        ];
        for e in &exprs {
            let pred = compile(e, &sch()).expect("total fragment compiles");
            let got = filter(&pred, &b);
            let want: Vec<u32> = rel
                .tuples()
                .iter()
                .enumerate()
                .filter(|(_, t)| e.eval_predicate(&sch(), t).unwrap())
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "on {e}");
        }
    }

    #[test]
    fn replicates_non_kleene_null_and() {
        // NOT(NULL AND FALSE): Expr::eval yields NULL (→ kept out), not
        // TRUE as Kleene logic would.
        let e = Expr::not(Expr::and(
            Expr::eq(Expr::col("A"), Expr::lit(1i64)), // NULL on row 1
            Expr::eq(Expr::col("B"), Expr::lit("nope")), // FALSE everywhere
        ));
        let b = batch();
        let pred = compile(&e, &sch()).unwrap();
        let got = filter(&pred, &b);
        let rel = super::super::concat(Arc::new(sch()), &[b]).to_relation();
        let want: Vec<u32> = rel
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, t)| e.eval_predicate(&sch(), t).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
        // Rows with non-null A pass (NOT(FALSE) = TRUE); row 1's NULL AND
        // FALSE is NULL — not FALSE as Kleene logic would have it — so
        // NOT(...) stays NULL and row 1 is excluded.
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn arithmetic_and_unknown_columns_do_not_compile() {
        let s = sch();
        assert!(compile(&Expr::bin(BinOp::Add, Expr::col("A"), Expr::lit(1i64)), &s).is_none());
        assert!(compile(&Expr::eq(Expr::col("Z"), Expr::lit(1i64)), &s).is_none());
        // Non-bool column as predicate does not compile either.
        assert!(compile(&Expr::col("A"), &s).is_none());
    }

    #[test]
    fn cross_dtype_column_comparisons_fall_back() {
        // Value::cmp is total across variants (Int vs Str compares by
        // variant rank, Int vs Float numerically); the native column
        // comparison is not, so these must not compile — the select
        // operator's row fallback handles them.
        let s = Schema::of(&[
            ("A", DataType::Int),
            ("B", DataType::Str),
            ("D", DataType::Float),
            ("T", DataType::Time),
        ]);
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("B")), &s).is_none());
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("D")), &s).is_none());
        // Int/Time are one family: native comparison is defined.
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("T")), &s).is_some());
        assert!(compile(&Expr::eq(Expr::col("B"), Expr::col("B")), &s).is_some());
    }
}
