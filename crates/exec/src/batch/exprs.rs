//! Vectorized predicate evaluation.
//!
//! [`compile`] translates a predicate [`Expr`] into a small column-indexed
//! program evaluated batch-at-a-time. Only the *total* fragment of the
//! expression language is compiled — comparisons between columns and
//! literals, `AND`/`OR`/`NOT`, `IS NULL`, and boolean columns — i.e.
//! expressions whose evaluation can never raise (no arithmetic, no
//! `as_bool` coercions, all attributes resolved). Everything else returns
//! `None` and the select operator falls back to row-at-a-time
//! `Expr::eval_predicate`, preserving the row engine's error behaviour
//! (including its short-circuit evaluation order) exactly.
//!
//! Null semantics replicate `Expr::eval` *literally* — including its
//! non-Kleene corner: `FALSE AND NULL` is `FALSE` only when the false
//! operand is on the left (the right side is reached only after the left
//! failed to short-circuit, and any null operand then nulls the result).

use std::cmp::Ordering;

use tqo_core::expr::{BinOp, Expr};
use tqo_core::schema::Schema;
use tqo_core::value::{DataType, Value};

use super::{Batch, Sel};

/// A compiled predicate over column indices.
#[derive(Debug, Clone)]
pub enum Pred {
    /// `col <op> col`.
    CmpCols(BinOp, usize, usize),
    /// `col <op> literal`.
    CmpColLit(BinOp, usize, Value),
    /// `literal <op> col`.
    CmpLitCol(BinOp, Value, usize),
    /// `literal <op> literal` (constant-folded at eval time).
    CmpLits(BinOp, Value, Value),
    /// A boolean column used directly as a predicate.
    BoolCol(usize),
    /// A boolean (or null) literal.
    BoolLit(Option<bool>),
    /// `<col> IS NULL`.
    IsNullCol(usize),
    /// `<literal> IS NULL`.
    IsNullLit(bool),
    /// Conjunction (left short-circuits, as in the row engine).
    And(Box<Pred>, Box<Pred>),
    /// Disjunction (left short-circuits).
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

/// A vector of three-valued booleans: `vals[i]` is meaningful where
/// `nulls` is absent or `!nulls[i]`.
pub struct BoolVec {
    /// Truth value per live row (null slots hold `false`).
    pub vals: Vec<bool>,
    /// Null mask per live row (`None` = no nulls).
    pub nulls: Option<Vec<bool>>,
}

impl BoolVec {
    fn new(n: usize) -> BoolVec {
        BoolVec {
            vals: vec![false; n],
            nulls: None,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[i])
    }

    #[inline]
    fn set_null(&mut self, i: usize) {
        self.nulls
            .get_or_insert_with(|| vec![false; self.vals.len()])[i] = true;
    }
}

/// Compile `expr` for batches of `schema`; `None` when the expression
/// leaves the total fragment (the caller falls back to row evaluation).
pub fn compile(expr: &Expr, schema: &Schema) -> Option<Pred> {
    match expr {
        Expr::Bin { op, left, right } if op.is_comparison() => {
            match (operand(left, schema)?, operand(right, schema)?) {
                (Operand::Col(l), Operand::Col(r)) => {
                    // Column-vs-column runs on the native `cmp_at`, which is
                    // only defined within a dtype family; cross-family
                    // comparisons (Value::cmp is total over those too) fall
                    // back to row evaluation.
                    let (lt, rt) = (schema.attr(l).dtype, schema.attr(r).dtype);
                    let time_like = |t: DataType| matches!(t, DataType::Int | DataType::Time);
                    if lt == rt || (time_like(lt) && time_like(rt)) {
                        Some(Pred::CmpCols(*op, l, r))
                    } else {
                        None
                    }
                }
                (Operand::Col(l), Operand::Lit(v)) => Some(Pred::CmpColLit(*op, l, v)),
                (Operand::Lit(v), Operand::Col(r)) => Some(Pred::CmpLitCol(*op, v, r)),
                (Operand::Lit(a), Operand::Lit(b)) => Some(Pred::CmpLits(*op, a, b)),
            }
        }
        Expr::Bin { op, left, right } if *op == BinOp::And => Some(Pred::And(
            Box::new(compile(left, schema)?),
            Box::new(compile(right, schema)?),
        )),
        Expr::Bin { op, left, right } if *op == BinOp::Or => Some(Pred::Or(
            Box::new(compile(left, schema)?),
            Box::new(compile(right, schema)?),
        )),
        Expr::Not(e) => Some(Pred::Not(Box::new(compile(e, schema)?))),
        Expr::IsNull(e) => match operand(e, schema)? {
            Operand::Col(i) => Some(Pred::IsNullCol(i)),
            Operand::Lit(v) => Some(Pred::IsNullLit(v.is_null())),
        },
        Expr::Col(name) => {
            let i = schema.index_of(name)?;
            (schema.attr(i).dtype == DataType::Bool).then_some(Pred::BoolCol(i))
        }
        Expr::Lit(Value::Bool(b)) => Some(Pred::BoolLit(Some(*b))),
        Expr::Lit(Value::Null) => Some(Pred::BoolLit(None)),
        _ => None,
    }
}

enum Operand {
    Col(usize),
    Lit(Value),
}

fn operand(expr: &Expr, schema: &Schema) -> Option<Operand> {
    match expr {
        Expr::Col(name) => schema.index_of(name).map(Operand::Col),
        Expr::Lit(v) => Some(Operand::Lit(v.clone())),
        _ => None,
    }
}

#[inline]
fn apply(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compiled comparisons are comparisons"),
    }
}

/// Fill `vals[k] = op(left(k), right(k))` with the operator match hoisted
/// out of the loop: each arm monomorphizes a tight, branch-free compare
/// loop over plain slices that the compiler can unroll and vectorize,
/// instead of re-matching `op` (and re-dispatching the dtype) per row.
#[inline]
fn fill_cmp<T: Copy>(
    op: BinOp,
    vals: &mut [bool],
    left: impl Fn(usize) -> T + Copy,
    right: impl Fn(usize) -> T + Copy,
    ord: impl Fn(T, T) -> Ordering + Copy,
) {
    macro_rules! go {
        ($keep:expr) => {
            for (k, v) in vals.iter_mut().enumerate() {
                *v = $keep(ord(left(k), right(k)));
            }
        };
    }
    match op {
        BinOp::Eq => go!(|o: Ordering| o == Ordering::Equal),
        BinOp::Ne => go!(|o: Ordering| o != Ordering::Equal),
        BinOp::Lt => go!(|o: Ordering| o == Ordering::Less),
        BinOp::Le => go!(|o: Ordering| o != Ordering::Greater),
        BinOp::Gt => go!(|o: Ordering| o == Ordering::Greater),
        BinOp::Ge => go!(|o: Ordering| o != Ordering::Less),
        _ => unreachable!("compiled comparisons are comparisons"),
    }
}

/// [`fill_cmp`] with logical→physical row translation: getters take
/// physical indices, the selection shape is dispatched once per batch.
#[inline]
fn fill_cmp_sel<T: Copy>(
    op: BinOp,
    batch: &Batch,
    vals: &mut [bool],
    at_l: impl Fn(usize) -> T + Copy,
    at_r: impl Fn(usize) -> T + Copy,
    ord: impl Fn(T, T) -> Ordering + Copy,
) {
    match batch.sel() {
        Sel::Range(s, _) => {
            let s = *s;
            fill_cmp(op, vals, |k| at_l(s + k), |k| at_r(s + k), ord);
        }
        Sel::Rows(rows) => fill_cmp(
            op,
            vals,
            |k| at_l(rows[k] as usize),
            |k| at_r(rows[k] as usize),
            ord,
        ),
    }
}

/// A float-comparable view of a literal, exactly where `Value::cmp`
/// against a `Float` is numeric (`Float` and `Int` operands; `Time` vs
/// `Float` compares by variant rank and must not take this path).
fn float_lit(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Evaluate a compiled predicate over a batch's logical rows.
pub fn eval(pred: &Pred, batch: &Batch) -> BoolVec {
    let n = batch.num_rows();
    let mut out = BoolVec::new(n);
    match pred {
        Pred::CmpCols(op, l, r) => {
            let (lc, rc) = (batch.column(*l), batch.column(*r));
            if let (Some(ld), Some(rd)) = (lc.as_i64(), rc.as_i64()) {
                // Fast path: two non-null Int/Time columns.
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |i| ld[i],
                    |i| rd[i],
                    |a, b| a.cmp(&b),
                );
            } else if let (Some(ld), Some(rd)) = (lc.as_f64(), rc.as_f64()) {
                // Non-null Float columns: `cmp_at` is `total_cmp`.
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |i| ld[i],
                    |i| rd[i],
                    |a, b| a.total_cmp(&b),
                );
            } else {
                for (k, i) in batch.rows().enumerate() {
                    if lc.is_null(i) || rc.is_null(i) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = apply(*op, lc.cmp_at(i, rc, i));
                    }
                }
            }
        }
        Pred::CmpColLit(op, l, v) => {
            let lc = batch.column(*l);
            if v.is_null() {
                out.nulls = Some(vec![true; n]);
            } else if let (Some(data), Ok(lit)) = (lc.as_i64(), v.as_int()) {
                // Fast path: non-null Int/Time column vs integer literal.
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |i| data[i],
                    |_| lit,
                    |a, b| a.cmp(&b),
                );
            } else if let (Some(data), Some(lit)) = (lc.as_f64(), float_lit(v)) {
                // Non-null Float column vs numeric literal (total order).
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |i| data[i],
                    |_| lit,
                    |a, b| a.total_cmp(&b),
                );
            } else {
                for (k, i) in batch.rows().enumerate() {
                    if lc.is_null(i) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = apply(*op, lc.cmp_value(i, v));
                    }
                }
            }
        }
        Pred::CmpLitCol(op, v, r) => {
            let rc = batch.column(*r);
            if v.is_null() {
                out.nulls = Some(vec![true; n]);
            } else if let (Some(data), Ok(lit)) = (rc.as_i64(), v.as_int()) {
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |_| lit,
                    |i| data[i],
                    |a, b| a.cmp(&b),
                );
            } else if let (Some(data), Some(lit)) = (rc.as_f64(), float_lit(v)) {
                fill_cmp_sel(
                    *op,
                    batch,
                    &mut out.vals,
                    |_| lit,
                    |i| data[i],
                    |a, b| a.total_cmp(&b),
                );
            } else {
                for (k, i) in batch.rows().enumerate() {
                    if rc.is_null(i) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = apply(*op, rc.cmp_value(i, v).reverse());
                    }
                }
            }
        }
        Pred::CmpLits(op, a, b) => {
            if a.is_null() || b.is_null() {
                out.nulls = Some(vec![true; n]);
            } else {
                let v = apply(*op, a.cmp(b));
                out.vals.fill(v);
            }
        }
        Pred::BoolCol(c) => {
            let col = batch.column(*c);
            for (k, i) in batch.rows().enumerate() {
                if col.is_null(i) {
                    out.set_null(k);
                } else if let Value::Bool(b) = col.value(i) {
                    out.vals[k] = b;
                }
            }
        }
        Pred::BoolLit(Some(b)) => out.vals.fill(*b),
        Pred::BoolLit(None) => out.nulls = Some(vec![true; n]),
        Pred::IsNullCol(c) => {
            let col = batch.column(*c);
            for (k, i) in batch.rows().enumerate() {
                out.vals[k] = col.is_null(i);
            }
        }
        Pred::IsNullLit(b) => out.vals.fill(*b),
        Pred::And(l, r) => {
            let lv = eval(l, batch);
            let rv = eval(r, batch);
            if lv.nulls.is_none() && rv.nulls.is_none() {
                // Null-free inputs: three-valued logic degenerates to a
                // branch-free bitwise AND.
                for ((o, &a), &b) in out.vals.iter_mut().zip(&lv.vals).zip(&rv.vals) {
                    *o = a & b;
                }
            } else {
                for k in 0..n {
                    // Mirror Expr::eval: left == FALSE short-circuits; any
                    // remaining null operand nulls the result.
                    if !lv.is_null(k) && !lv.vals[k] {
                        out.vals[k] = false;
                    } else if lv.is_null(k) || rv.is_null(k) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = lv.vals[k] && rv.vals[k];
                    }
                }
            }
        }
        Pred::Or(l, r) => {
            let lv = eval(l, batch);
            let rv = eval(r, batch);
            if lv.nulls.is_none() && rv.nulls.is_none() {
                for ((o, &a), &b) in out.vals.iter_mut().zip(&lv.vals).zip(&rv.vals) {
                    *o = a | b;
                }
            } else {
                for k in 0..n {
                    if !lv.is_null(k) && lv.vals[k] {
                        out.vals[k] = true;
                    } else if lv.is_null(k) || rv.is_null(k) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = lv.vals[k] || rv.vals[k];
                    }
                }
            }
        }
        Pred::Not(e) => {
            let ev = eval(e, batch);
            if ev.nulls.is_none() {
                for (o, &a) in out.vals.iter_mut().zip(&ev.vals) {
                    *o = !a;
                }
            } else {
                for k in 0..n {
                    if ev.is_null(k) {
                        out.set_null(k);
                    } else {
                        out.vals[k] = !ev.vals[k];
                    }
                }
            }
        }
    }
    out
}

/// Filter a batch: physical indices of rows where the predicate is true
/// (`NULL` counts as not satisfied, as in SQL `WHERE`).
///
/// The compaction is branch-free: every candidate index is written at the
/// output cursor and the cursor advances by the keep flag, so selectivity
/// never costs branch mispredictions.
pub fn filter(pred: &Pred, batch: &Batch) -> Vec<u32> {
    let bv = eval(pred, batch);
    let mut kept = vec![0u32; bv.vals.len()];
    let mut m = 0usize;
    match (batch.sel(), &bv.nulls) {
        (Sel::Range(s, _), None) => {
            let s = *s as u32;
            for (k, &keep) in bv.vals.iter().enumerate() {
                kept[m] = s + k as u32;
                m += keep as usize;
            }
        }
        (Sel::Rows(rows), None) => {
            for (k, &i) in rows.iter().enumerate() {
                kept[m] = i;
                m += bv.vals[k] as usize;
            }
        }
        (Sel::Range(s, _), Some(nulls)) => {
            let s = *s as u32;
            for (k, &keep) in bv.vals.iter().enumerate() {
                kept[m] = s + k as u32;
                m += (keep & !nulls[k]) as usize;
            }
        }
        (Sel::Rows(rows), Some(nulls)) => {
            for (k, &i) in rows.iter().enumerate() {
                kept[m] = i;
                m += (bv.vals[k] & !nulls[k]) as usize;
            }
        }
    }
    kept.truncate(m);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tqo_core::columnar::ColumnarRelation;
    use tqo_core::relation::Relation;
    use tqo_core::tuple::Tuple;
    use tqo_core::{tuple, Schema};

    fn batch() -> Batch {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            vec![
                tuple![3i64, "x"],
                Tuple::new(vec![Value::Null, Value::from("y")]),
                tuple![7i64, "x"],
                tuple![5i64, "z"],
            ],
        )
        .unwrap();
        let c = ColumnarRelation::from_relation(&r).unwrap();
        Batch::slice(&c, 0, 4)
    }

    fn sch() -> Schema {
        Schema::of(&[("A", DataType::Int), ("B", DataType::Str)])
    }

    #[test]
    fn agrees_with_row_eval_on_the_total_fragment() {
        let b = batch();
        let rel = super::super::concat(Arc::new(sch()), std::slice::from_ref(&b)).to_relation();
        let exprs = [
            Expr::bin(BinOp::Ge, Expr::col("A"), Expr::lit(5i64)),
            Expr::eq(Expr::col("B"), Expr::lit("x")),
            Expr::and(
                Expr::bin(BinOp::Gt, Expr::col("A"), Expr::lit(2i64)),
                Expr::eq(Expr::col("B"), Expr::lit("x")),
            ),
            Expr::or(
                Expr::eq(Expr::col("B"), Expr::lit("z")),
                Expr::bin(BinOp::Lt, Expr::col("A"), Expr::lit(4i64)),
            ),
            Expr::not(Expr::eq(Expr::col("B"), Expr::lit("x"))),
            Expr::IsNull(Box::new(Expr::col("A"))),
            Expr::not(Expr::IsNull(Box::new(Expr::col("A")))),
        ];
        for e in &exprs {
            let pred = compile(e, &sch()).expect("total fragment compiles");
            let got = filter(&pred, &b);
            let want: Vec<u32> = rel
                .tuples()
                .iter()
                .enumerate()
                .filter(|(_, t)| e.eval_predicate(&sch(), t).unwrap())
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "on {e}");
        }
    }

    #[test]
    fn replicates_non_kleene_null_and() {
        // NOT(NULL AND FALSE): Expr::eval yields NULL (→ kept out), not
        // TRUE as Kleene logic would.
        let e = Expr::not(Expr::and(
            Expr::eq(Expr::col("A"), Expr::lit(1i64)), // NULL on row 1
            Expr::eq(Expr::col("B"), Expr::lit("nope")), // FALSE everywhere
        ));
        let b = batch();
        let pred = compile(&e, &sch()).unwrap();
        let got = filter(&pred, &b);
        let rel = super::super::concat(Arc::new(sch()), &[b]).to_relation();
        let want: Vec<u32> = rel
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, t)| e.eval_predicate(&sch(), t).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
        // Rows with non-null A pass (NOT(FALSE) = TRUE); row 1's NULL AND
        // FALSE is NULL — not FALSE as Kleene logic would have it — so
        // NOT(...) stays NULL and row 1 is excluded.
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn arithmetic_and_unknown_columns_do_not_compile() {
        let s = sch();
        assert!(compile(&Expr::bin(BinOp::Add, Expr::col("A"), Expr::lit(1i64)), &s).is_none());
        assert!(compile(&Expr::eq(Expr::col("Z"), Expr::lit(1i64)), &s).is_none());
        // Non-bool column as predicate does not compile either.
        assert!(compile(&Expr::col("A"), &s).is_none());
    }

    #[test]
    fn cross_dtype_column_comparisons_fall_back() {
        // Value::cmp is total across variants (Int vs Str compares by
        // variant rank, Int vs Float numerically); the native column
        // comparison is not, so these must not compile — the select
        // operator's row fallback handles them.
        let s = Schema::of(&[
            ("A", DataType::Int),
            ("B", DataType::Str),
            ("D", DataType::Float),
            ("T", DataType::Time),
        ]);
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("B")), &s).is_none());
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("D")), &s).is_none());
        // Int/Time are one family: native comparison is defined.
        assert!(compile(&Expr::lt(Expr::col("A"), Expr::col("T")), &s).is_some());
        assert!(compile(&Expr::eq(Expr::col("B"), Expr::col("B")), &s).is_some());
    }
}
