//! The streaming operator pipeline: `open` / `next_batch` / `close`.
//!
//! [`build`] translates a [`PhysicalNode`] tree into a tree of
//! [`BatchOperator`]s. Streaming operators (scan, select, project,
//! union-all, hash `rdup`, hash `difference`, transfers) forward ~1024-row
//! batches as they arrive; pipeline breakers materialize their inputs and
//! call the columnar kernels. Operators whose faithful algorithms are
//! inherently row-oriented (the paper's head/tail recursions, `ξᵀ`, `∪ᵀ`)
//! fall back to the row implementations behind a materialize boundary, so
//! every physical plan executes under either engine with identical
//! results.
//!
//! Every operator is wrapped in a [`Metered`] shell that accumulates
//! inclusive wall-clock time, output rows, and batch counts into a shared
//! sink; the driver converts inclusive to exclusive times using the tree
//! shape and reports the same post-order [`OperatorMetrics`] sequence the
//! row engine produces.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tqo_core::columnar::ColumnarRelation;
use tqo_core::context;
use tqo_core::error::{Error, Result};
use tqo_core::expr::{Expr, ProjItem};
use tqo_core::interp::Env;
use tqo_core::ops;
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::sortspec::Order;
use tqo_core::trace::{self, Category};
use tqo_core::tuple::Tuple;

use crate::metrics::{ExecMetrics, OperatorMetrics};
use crate::physical::{
    CoalesceAlgo, DifferenceTAlgo, PhysicalNode, PhysicalPlan, ProductTAlgo, RdupTAlgo,
};

use super::exprs::{self, Pred};
use super::hash::{KeyStore, RowTable};
use super::kernels;
use super::{concat, Batch, BATCH_SIZE};

/// A pull-based operator producing column-major batches.
pub trait BatchOperator {
    /// Output schema, known before any batch is produced.
    fn out_schema(&self) -> Arc<Schema>;
    /// Prepare: open children, build blocking state.
    fn open(&mut self) -> Result<()>;
    /// The next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
    /// Release resources (best effort; infallible).
    fn close(&mut self);
}

type BoxOp = Box<dyn BatchOperator>;

// ---------------------------------------------------------------------------
// Metrics plumbing
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct NodeStats {
    label: String,
    children: Vec<usize>,
    rows_out: usize,
    batches: usize,
    inclusive: Duration,
}

#[derive(Debug, Default)]
struct Sink {
    nodes: Vec<NodeStats>,
}

type SharedSink = Rc<RefCell<Sink>>;

/// Wraps an operator, attributing wall-clock time and row counts to its
/// node in the shared sink. Child calls nest inside the parent's timed
/// sections, so recorded times are inclusive; the driver subtracts.
struct Metered {
    inner: BoxOp,
    id: usize,
    sink: SharedSink,
}

impl BatchOperator for Metered {
    fn out_schema(&self) -> Arc<Schema> {
        self.inner.out_schema()
    }

    fn open(&mut self) -> Result<()> {
        // Governance checkpoint: blocking operators do real work in open.
        context::check_current()?;
        // Blocking operators do their real work in open (build phases), so
        // it gets its own span; child opens nest inside it.
        let _span = trace::span_with(Category::Exec, || {
            format!("{}.open", self.sink.borrow().nodes[self.id].label)
        });
        let started = Instant::now();
        let result = self.inner.open();
        self.sink.borrow_mut().nodes[self.id].inclusive += started.elapsed();
        result
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        // Governance checkpoint: one poll per operator per batch.
        context::check_current()?;
        let mut span = trace::span_with(Category::Exec, || {
            self.sink.borrow().nodes[self.id].label.clone()
        });
        let started = Instant::now();
        let result = self.inner.next_batch();
        let elapsed = started.elapsed();
        let mut sink = self.sink.borrow_mut();
        let node = &mut sink.nodes[self.id];
        node.inclusive += elapsed;
        if let Ok(Some(b)) = &result {
            node.rows_out += b.num_rows();
            node.batches += 1;
            span.note_with(|| format!("\"rows\": {}", b.num_rows()));
        }
        result
    }

    fn close(&mut self) {
        let started = Instant::now();
        self.inner.close();
        self.sink.borrow_mut().nodes[self.id].inclusive += started.elapsed();
    }
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

/// Source: zero-copy windows over the environment's cached columnar table.
struct ScanOp {
    table: Arc<ColumnarRelation>,
    pos: usize,
}

impl BatchOperator for ScanOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.table.schema().clone()
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.pos >= self.table.rows() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(self.table.rows());
        let b = Batch::slice(&self.table, self.pos, end);
        self.pos = end;
        Ok(Some(b))
    }

    fn close(&mut self) {}
}

/// Selection: selection-vector manipulation, zero row copies. Compiled
/// predicates run vectorized; anything outside the total fragment falls
/// back to row-at-a-time `eval_predicate` with identical semantics.
struct FilterOp {
    child: BoxOp,
    predicate: Expr,
    compiled: Option<Pred>,
    schema: Arc<Schema>,
}

/// Materialize one logical row of a batch as a row-layout tuple (slow
/// paths only: predicate/projection fallbacks).
fn row_tuple(batch: &Batch, phys: usize) -> Tuple {
    Tuple::new(batch.columns().iter().map(|c| c.value(phys)).collect())
}

impl BatchOperator for FilterOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let kept = match &self.compiled {
                Some(pred) => exprs::filter(pred, &batch),
                None => {
                    let mut kept = Vec::with_capacity(batch.num_rows());
                    for i in batch.rows() {
                        let t = row_tuple(&batch, i);
                        if self.predicate.eval_predicate(&self.schema, &t)? {
                            kept.push(i as u32);
                        }
                    }
                    kept
                }
            };
            if !kept.is_empty() {
                return Ok(Some(batch.with_sel_rows(kept)));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Prefix truncation: drop the first `offset` rows, forward at most
/// `limit`, then stop pulling from the child entirely (early exit —
/// upstream batches past the cutoff are never produced).
struct LimitOp {
    child: BoxOp,
    limit: Option<usize>,
    offset: usize,
    skipped: usize,
    emitted: usize,
}

impl BatchOperator for LimitOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.child.out_schema()
    }

    fn open(&mut self) -> Result<()> {
        self.skipped = 0;
        self.emitted = 0;
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if let Some(n) = self.limit {
                if self.emitted >= n {
                    return Ok(None);
                }
            }
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let rows = batch.num_rows();
            let skip = self.offset.saturating_sub(self.skipped).min(rows);
            self.skipped += skip;
            let avail = rows - skip;
            let take = match self.limit {
                Some(n) => avail.min(n - self.emitted),
                None => avail,
            };
            if take == 0 {
                continue;
            }
            self.emitted += take;
            if skip == 0 && take == rows {
                return Ok(Some(batch));
            }
            let sel: Vec<u32> = batch
                .rows()
                .skip(skip)
                .take(take)
                .map(|i| i as u32)
                .collect();
            return Ok(Some(batch.with_sel_rows(sel)));
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Projection. Column-reference projections reuse the child's column
/// `Arc`s under the new schema (zero row copies); computed items densify.
struct ProjectOp {
    child: BoxOp,
    items: Vec<ProjItem>,
    out_schema: Arc<Schema>,
    /// Column index per item when every item is a plain reference.
    col_refs: Option<Vec<usize>>,
    /// Re-validate periods (output temporal, periods not passed through).
    validate: bool,
}

impl ProjectOp {
    fn validate_periods(&self, batch: &Batch) -> Result<()> {
        let (Some(i1), Some(i2)) = (self.out_schema.t1_index(), self.out_schema.t2_index()) else {
            return Ok(());
        };
        let (c1, c2) = (batch.column(i1), batch.column(i2));
        for i in batch.rows() {
            let start = c1.value(i).as_time()?;
            let end = c2.value(i).as_time()?;
            if start >= end {
                return Err(Error::InvalidPeriod { start, end });
            }
        }
        Ok(())
    }
}

impl BatchOperator for ProjectOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        let out = match &self.col_refs {
            Some(indices) => batch.project_columns(self.out_schema.clone(), indices),
            None => {
                // Computed items: densify, evaluating tuple-major (per row,
                // items in order) exactly as the row engine does, so a plan
                // with several fallible items surfaces the same first error
                // under either engine.
                let child_schema = self.child.out_schema();
                let mut columns: Vec<tqo_core::columnar::Column> = self
                    .items
                    .iter()
                    .enumerate()
                    .map(|(k, _)| {
                        tqo_core::columnar::Column::with_capacity(
                            self.out_schema.attr(k).dtype,
                            batch.num_rows(),
                        )
                    })
                    .collect();
                for i in batch.rows() {
                    let t = row_tuple(&batch, i);
                    for (k, item) in self.items.iter().enumerate() {
                        columns[k].push(&item.expr.eval(&child_schema, &t)?)?;
                    }
                }
                Batch::from_columns(
                    self.out_schema.clone(),
                    columns.into_iter().map(Arc::new).collect(),
                )
            }
        };
        if self.validate {
            self.validate_periods(&out)?;
        }
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Union ALL: left's batches, then right's.
struct UnionAllOp {
    left: BoxOp,
    right: BoxOp,
    schema: Arc<Schema>,
    on_right: bool,
}

impl BatchOperator for UnionAllOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        self.on_right = false;
        self.left.open()?;
        self.right.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if !self.on_right {
            if let Some(b) = self.left.next_batch()? {
                return Ok(Some(b.with_schema(self.schema.clone())));
            }
            self.on_right = true;
        }
        Ok(self
            .right
            .next_batch()?
            .map(|b| b.with_schema(self.schema.clone())))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
    }
}

/// Hash `rdup`: streaming first-occurrence filter over column-wise row
/// hashes. Kept rows are emitted as selection views of the input batch;
/// their key values are appended to a dense store for cross-batch
/// equality.
struct RdupOp {
    child: BoxOp,
    out_schema: Arc<Schema>,
    key_idx: Vec<usize>,
    table: RowTable,
    store: KeyStore,
    /// Budget reservation tracking the hash state, resized per batch.
    reserved: Option<context::Reservation>,
}

impl RdupOp {
    /// Resize the reservation to the hash state's current footprint.
    fn charge_state(&mut self) -> Result<()> {
        let bytes = self.table.approx_bytes() + self.store.approx_bytes();
        match &mut self.reserved {
            Some(r) => r.grow_to(bytes),
            None => {
                self.reserved = context::reserve_current(bytes)?;
                Ok(())
            }
        }
    }
}

impl BatchOperator for RdupOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        self.table = RowTable::default();
        self.store = KeyStore::for_keys(&self.child.out_schema(), &self.key_idx);
        self.reserved = None;
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let cols = batch.columns();
            let hashes = super::hash::hash_batch(&batch, &self.key_idx);
            // Two-phase probe. Phase 1 resolves each row against the
            // *frozen* table by hash alone and batches the candidates;
            // their keys are then verified column-wise — one dtype
            // dispatch per key column per batch instead of per row.
            // Rows with no hash-equal entry (new keys, intra-batch
            // duplicates of them) and the rare failed candidates (full
            // 64-bit hash collisions) take phase 2: the serial
            // insert-or-find walk, in original row order, which is the
            // only phase that mutates the table.
            let mut cand_rows: Vec<u32> = Vec::new();
            let mut cand_ids: Vec<u32> = Vec::new();
            let mut cand_hash: Vec<u64> = Vec::new();
            let mut pending: Vec<(u32, u64)> = Vec::new();
            for (k, i) in batch.rows().enumerate() {
                match self.table.find_first_hash(hashes[k]) {
                    Some(e) => {
                        cand_rows.push(i as u32);
                        cand_ids.push(e);
                        cand_hash.push(hashes[k]);
                    }
                    None => pending.push((i as u32, hashes[k])),
                }
            }
            let mut ok = vec![true; cand_rows.len()];
            for (store_col, &src) in self.store.columns().iter().zip(&self.key_idx) {
                store_col.eq_pairs(&cand_ids, &cols[src], &cand_rows, &mut ok);
            }
            // Verified candidates are duplicates of frozen entries and
            // drop out. Failed candidates rejoin the pending stream,
            // re-sorted by row so phase 2 sees original first-occurrence
            // order (`pending` is built ascending; the sort only ever
            // runs on a genuine 64-bit hash collision).
            if ok.iter().any(|&o| !o) {
                for (k, &o) in ok.iter().enumerate() {
                    if !o {
                        pending.push((cand_rows[k], cand_hash[k]));
                    }
                }
                pending.sort_unstable_by_key(|&(row, _)| row);
            }
            let mut kept = Vec::new();
            for &(row, hash) in &pending {
                let i = row as usize;
                let (_, inserted) = self.table.find_or_insert(
                    hash,
                    |e| self.store.eq_row(e, cols, &self.key_idx, i),
                    0,
                );
                if inserted {
                    self.store.push_row(cols, &self.key_idx, i);
                    kept.push(row);
                }
            }
            self.charge_state()?;
            if !kept.is_empty() {
                return Ok(Some(
                    batch
                        .with_sel_rows(kept)
                        .with_schema(self.out_schema.clone()),
                ));
            }
        }
    }

    fn close(&mut self) {
        self.reserved = None;
        self.child.close();
    }
}

/// Hash multiset difference: the right side is built into a count table at
/// `open`; left batches stream through, consuming counts, and survivors
/// are emitted as selection views (earliest occurrences are the ones
/// removed, as in the row engine).
struct DifferenceOp {
    left: BoxOp,
    right: BoxOp,
    out_schema: Arc<Schema>,
    key_idx: Vec<usize>,
    table: RowTable,
    store: KeyStore,
    /// Budget reservation tracking the build-side hash state.
    reserved: Option<context::Reservation>,
}

impl BatchOperator for DifferenceOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.table = RowTable::default();
        self.store = KeyStore::for_keys(&self.right.out_schema(), &self.key_idx);
        self.reserved = None;
        while let Some(batch) = self.right.next_batch()? {
            let cols = batch.columns();
            let hashes = super::hash::hash_batch(&batch, &self.key_idx);
            for (k, i) in batch.rows().enumerate() {
                let (id, inserted) = self.table.find_or_insert(
                    hashes[k],
                    |e| self.store.eq_row(e, cols, &self.key_idx, i),
                    0,
                );
                if inserted {
                    self.store.push_row(cols, &self.key_idx, i);
                }
                *self.table.payload_mut(id) += 1;
            }
            // Re-charge the build state after each batch so the budget
            // tracks hash growth at batch granularity.
            let bytes = self.table.approx_bytes() + self.store.approx_bytes();
            match &mut self.reserved {
                Some(r) => r.grow_to(bytes)?,
                None => self.reserved = context::reserve_current(bytes)?,
            }
        }
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.left.next_batch()? else {
                return Ok(None);
            };
            let cols = batch.columns();
            let hashes = super::hash::hash_batch(&batch, &self.key_idx);
            let mut kept = Vec::with_capacity(batch.num_rows());
            for (k, i) in batch.rows().enumerate() {
                let hit = self
                    .table
                    .find(hashes[k], |e| self.store.eq_row(e, cols, &self.key_idx, i));
                match hit {
                    Some(id) if self.table.payload(id) > 0 => {
                        *self.table.payload_mut(id) -= 1;
                    }
                    _ => kept.push(i as u32),
                }
            }
            if !kept.is_empty() {
                return Ok(Some(
                    batch
                        .with_sel_rows(kept)
                        .with_schema(self.out_schema.clone()),
                ));
            }
        }
    }

    fn close(&mut self) {
        self.reserved = None;
        self.left.close();
        self.right.close();
    }
}

/// Transfers execute as identity but are metered.
struct TransferOp {
    child: BoxOp,
}

impl BatchOperator for TransferOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.child.out_schema()
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.child.next_batch()
    }

    fn close(&mut self) {
        self.child.close();
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------------

/// What a blocking operator computes once its inputs are materialized.
enum BlockKind {
    /// Stable sort; emits selection views over the materialized input.
    Sort(Order),
    Aggregate {
        group_by: Vec<String>,
        aggs: Vec<tqo_core::expr::AggItem>,
    },
    Product,
    ProductTNested,
    ProductTSweep,
    DifferenceT,
    RdupTSweep,
    CoalesceSortMerge,
    /// Materialize to row layout and run the reference implementation —
    /// the compatibility path for the inherently row-oriented faithful
    /// algorithms.
    RowOp(PhysicalNode),
}

struct BlockingOp {
    children: Vec<BoxOp>,
    kind: BlockKind,
    out_schema: Arc<Schema>,
    out: Option<ColumnarRelation>,
    /// For `Sort`: the permutation, emitted chunk-wise as selections.
    perm: Option<Vec<u32>>,
    pos: usize,
    /// Budget reservation for the materialized output, held until close.
    reserved: Option<context::Reservation>,
}

fn drain_batches(child: &mut BoxOp) -> Result<Vec<Batch>> {
    let mut batches = Vec::new();
    while let Some(b) = child.next_batch()? {
        if !b.is_empty() {
            batches.push(b);
        }
    }
    Ok(batches)
}

fn drain(child: &mut BoxOp) -> Result<ColumnarRelation> {
    let schema = child.out_schema();
    let batches = drain_batches(child)?;
    Ok(concat(schema, &batches))
}

/// Strictly ascending physical ids — the stream order of every selection
/// a scan/filter pipeline produces, and the order the fused sort relies
/// on for stability (id tie-break == stream order).
fn is_ascending(sel: &[u32]) -> bool {
    sel.windows(2).all(|w| w[0] < w[1])
}

impl BlockingOp {
    /// The sort breaker, with the fused selection-into-breaker path: when
    /// the drained batches are all views over one shared set of columns
    /// (a scan/filter/project pipeline), the selection vector feeds the
    /// sort directly — prefixes are built over the shared columns, the
    /// selection ids are sorted in place, and the result is emitted as
    /// selection views over those same columns. No compacted intermediate
    /// is ever built, so the budget is charged for what is actually
    /// allocated: the prefix buffer and the permutation.
    fn compute_sort(&mut self, order: &Order) -> Result<()> {
        let child = &mut self.children[0];
        let schema = child.out_schema();
        let batches = drain_batches(child)?;
        if let Some((columns, sel)) = super::shared_selection(&batches) {
            if sel.as_deref().is_none_or(is_ascending) {
                let input = ColumnarRelation::new(schema, columns);
                let mut idx = match sel {
                    Some(s) => s,
                    None => (0..input.rows() as u32).collect(),
                };
                // Charge the sort's working state (prefixes + pairs) for
                // the kernel's duration, then the permutation until close.
                let _work_reserved = context::reserve_current(input.rows() * 8 + idx.len() * 12)?;
                let keys = kernels::SortKeys::new(&input, order)?;
                keys.sort(&mut idx);
                self.reserved = context::reserve_current(idx.len() * 4)?;
                self.perm = Some(idx);
                self.out = Some(input);
                return Ok(());
            }
        }
        // Fallback (fresh columns per batch, or a reordered selection):
        // materialize the compacted input and sort that.
        let input = concat(schema, &batches);
        let _inputs_reserved = context::reserve_current(input.approx_bytes())?;
        let perm = kernels::sort_indices(&input, order)?;
        self.reserved = context::reserve_current(input.approx_bytes() + perm.len() * 4)?;
        self.perm = Some(perm);
        self.out = Some(input);
        Ok(())
    }

    fn compute(&mut self) -> Result<()> {
        if let BlockKind::Sort(order) = &self.kind {
            let order = order.clone();
            return self.compute_sort(&order);
        }
        let mut inputs = Vec::with_capacity(self.children.len());
        for c in &mut self.children {
            inputs.push(drain(c)?);
        }
        // Charge the materialized inputs for the duration of the kernel;
        // released when `inputs` goes out of scope.
        let _inputs_reserved =
            context::reserve_current(inputs.iter().map(ColumnarRelation::approx_bytes).sum())?;
        match &self.kind {
            BlockKind::Sort(_) => unreachable!("handled by compute_sort"),
            BlockKind::Aggregate { group_by, aggs } => {
                let input = inputs.pop().expect("aggregate has one child");
                self.out = Some(kernels::aggregate(
                    &input,
                    group_by,
                    aggs,
                    self.out_schema.clone(),
                )?);
            }
            BlockKind::Product => {
                let right = inputs.pop().expect("binary");
                let left = inputs.pop().expect("binary");
                self.out = Some(kernels::product(&left, &right, self.out_schema.clone()));
            }
            BlockKind::ProductTNested => {
                let right = inputs.pop().expect("binary");
                let left = inputs.pop().expect("binary");
                self.out = Some(kernels::product_t_nested(
                    &left,
                    &right,
                    self.out_schema.clone(),
                )?);
            }
            BlockKind::ProductTSweep => {
                let right = inputs.pop().expect("binary");
                let left = inputs.pop().expect("binary");
                self.out = Some(kernels::product_t_sweep(
                    &left,
                    &right,
                    self.out_schema.clone(),
                )?);
            }
            BlockKind::DifferenceT => {
                let right = inputs.pop().expect("binary");
                let left = inputs.pop().expect("binary");
                self.out = Some(kernels::difference_t(
                    &left,
                    &right,
                    self.out_schema.clone(),
                )?);
            }
            BlockKind::RdupTSweep => {
                let input = inputs.pop().expect("unary");
                self.out = Some(kernels::rdup_t_sweep(&input)?);
            }
            BlockKind::CoalesceSortMerge => {
                let input = inputs.pop().expect("unary");
                self.out = Some(kernels::coalesce_sort_merge(&input)?);
            }
            BlockKind::RowOp(node) => {
                let rels: Vec<Relation> =
                    inputs.iter().map(ColumnarRelation::to_relation).collect();
                let result = crate::executor::apply_row_op(node, &rels)?;
                self.out = Some(ColumnarRelation::from_relation(&result)?);
            }
        }
        // Charge the materialized output (plus the sort permutation)
        // until close releases it.
        let bytes = self.out.as_ref().map_or(0, ColumnarRelation::approx_bytes)
            + self.perm.as_ref().map_or(0, |p| p.len() * 4);
        self.reserved = context::reserve_current(bytes)?;
        Ok(())
    }
}

impl BatchOperator for BlockingOp {
    fn out_schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn open(&mut self) -> Result<()> {
        for c in &mut self.children {
            c.open()?;
        }
        self.pos = 0;
        self.compute()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let out = self.out.as_ref().expect("opened");
        let total = self.perm.as_ref().map_or(out.rows(), Vec::len);
        if self.pos >= total {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(total);
        let batch = match &self.perm {
            Some(perm) => Batch::slice(out, 0, out.rows())
                .with_sel_rows(perm[self.pos..end].to_vec())
                .with_schema(self.out_schema.clone()),
            None => Batch::slice(out, self.pos, end).with_schema(self.out_schema.clone()),
        };
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.out = None;
        self.perm = None;
        self.reserved = None;
        for c in &mut self.children {
            c.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Plan translation
// ---------------------------------------------------------------------------

pub(crate) fn demoted(schema: &Schema) -> Arc<Schema> {
    if schema.is_temporal() {
        Arc::new(schema.demote_time_attrs())
    } else {
        Arc::new(schema.clone())
    }
}

pub(crate) fn require_temporal(schema: &Schema, context: &'static str) -> Result<()> {
    if schema.is_temporal() {
        Ok(())
    } else {
        Err(Error::NotTemporal { context })
    }
}

fn register(sink: &SharedSink, label: String, children: Vec<usize>) -> usize {
    let mut s = sink.borrow_mut();
    let id = s.nodes.len();
    s.nodes.push(NodeStats {
        label,
        children,
        ..NodeStats::default()
    });
    id
}

fn metered(op: BoxOp, id: usize, sink: &SharedSink) -> BoxOp {
    Box::new(Metered {
        inner: op,
        id,
        sink: sink.clone(),
    })
}

fn blocking(children: Vec<BoxOp>, kind: BlockKind, out_schema: Arc<Schema>) -> BoxOp {
    Box::new(BlockingOp {
        children,
        kind,
        out_schema,
        out: None,
        perm: None,
        pos: 0,
        reserved: None,
    })
}

/// Build the operator tree for a physical node. Returns the (metered)
/// operator and its node id; ids are assigned post-order so the driver's
/// metrics sequence matches the row engine's.
fn build(node: &PhysicalNode, env: &Env, sink: &SharedSink) -> Result<(BoxOp, usize)> {
    let mut child_ops = Vec::new();
    let mut child_ids = Vec::new();
    for c in node.children() {
        let (op, id) = build(c, env, sink)?;
        child_ops.push(op);
        child_ids.push(id);
    }
    let mut kids = child_ops.into_iter();
    let mut next = || kids.next().expect("child built");

    let op: BoxOp = match node {
        PhysicalNode::Scan { name } => Box::new(ScanOp {
            table: env.columnar(name)?,
            pos: 0,
        }),
        PhysicalNode::Select { predicate, .. } => {
            let child = next();
            let schema = child.out_schema();
            let compiled = exprs::compile(predicate, &schema);
            Box::new(FilterOp {
                child,
                predicate: predicate.clone(),
                compiled,
                schema,
            })
        }
        PhysicalNode::Project { items, .. } => {
            let child = next();
            if items.is_empty() {
                return Err(Error::Plan {
                    reason: "projection needs at least one item".into(),
                });
            }
            let child_schema = child.out_schema();
            let out_schema = Arc::new(ops::project::project_schema(&child_schema, items)?);
            let col_refs: Option<Vec<usize>> = items
                .iter()
                .map(|item| match &item.expr {
                    Expr::Col(name) => child_schema.index_of(name),
                    _ => None,
                })
                .collect();
            let validate = out_schema.is_temporal() && !ops::project::periods_passthrough(items);
            Box::new(ProjectOp {
                child,
                items: items.clone(),
                out_schema,
                col_refs,
                validate,
            })
        }
        PhysicalNode::UnionAll { .. } => {
            let left = next();
            let right = next();
            left.out_schema()
                .check_union_compatible(&right.out_schema(), "union ALL")?;
            let schema = left.out_schema();
            Box::new(UnionAllOp {
                left,
                right,
                schema,
                on_right: false,
            })
        }
        PhysicalNode::Product { .. } => {
            let left = next();
            let right = next();
            let out = Arc::new(ops::product::product_schema(
                &left.out_schema(),
                &right.out_schema(),
            )?);
            blocking(vec![left, right], BlockKind::Product, out)
        }
        PhysicalNode::Difference { .. } => {
            let left = next();
            let right = next();
            let ls = left.out_schema();
            ls.check_union_compatible(&right.out_schema(), "difference")?;
            let key_idx = (0..ls.arity()).collect();
            let out_schema = demoted(&ls);
            Box::new(DifferenceOp {
                left,
                right,
                out_schema,
                key_idx,
                table: RowTable::default(),
                store: KeyStore::for_keys(&Schema::default(), &[]),
                reserved: None,
            })
        }
        PhysicalNode::Aggregate { group_by, aggs, .. } => {
            let child = next();
            let out = Arc::new(ops::aggregate::aggregate_schema(
                &child.out_schema(),
                group_by,
                aggs,
            )?);
            if group_by.is_empty() && aggs.is_empty() {
                return Err(Error::Plan {
                    reason: "aggregation needs groups or aggregates".into(),
                });
            }
            blocking(
                vec![child],
                BlockKind::Aggregate {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                },
                out,
            )
        }
        PhysicalNode::Rdup { .. } => {
            let child = next();
            let schema = child.out_schema();
            let key_idx = (0..schema.arity()).collect();
            let out_schema = demoted(&schema);
            Box::new(RdupOp {
                child,
                out_schema,
                key_idx,
                table: RowTable::default(),
                store: KeyStore::for_keys(&Schema::default(), &[]),
                reserved: None,
            })
        }
        PhysicalNode::UnionMax { .. } => {
            let left = next();
            let right = next();
            let ls = left.out_schema();
            ls.check_union_compatible(&right.out_schema(), "union")?;
            let out = demoted(&ls);
            blocking(vec![left, right], BlockKind::RowOp(node.clone()), out)
        }
        PhysicalNode::Sort { order, .. } => {
            let child = next();
            let schema = child.out_schema();
            for key in order.keys() {
                schema.resolve(&key.attr)?;
            }
            blocking(vec![child], BlockKind::Sort(order.clone()), schema)
        }
        PhysicalNode::Limit { limit, offset, .. } => Box::new(LimitOp {
            child: next(),
            limit: *limit,
            offset: *offset,
            skipped: 0,
            emitted: 0,
        }),
        PhysicalNode::ProductT { algo, .. } => {
            let left = next();
            let right = next();
            let out = Arc::new(ops::temporal::product_t::product_t_schema(
                &left.out_schema(),
                &right.out_schema(),
            )?);
            let kind = match algo {
                ProductTAlgo::NestedLoop => BlockKind::ProductTNested,
                ProductTAlgo::PlaneSweep => BlockKind::ProductTSweep,
            };
            blocking(vec![left, right], kind, out)
        }
        PhysicalNode::DifferenceT { algo, .. } => {
            let left = next();
            let right = next();
            let ls = left.out_schema();
            require_temporal(&ls, "temporal difference")?;
            require_temporal(&right.out_schema(), "temporal difference")?;
            let kind = match algo {
                DifferenceTAlgo::TimelineSweep => BlockKind::DifferenceT,
                DifferenceTAlgo::SubtractUnion => BlockKind::RowOp(node.clone()),
            };
            blocking(vec![left, right], kind, ls)
        }
        PhysicalNode::AggregateT { group_by, aggs, .. } => {
            let child = next();
            let out = Arc::new(ops::temporal::aggregate_t::aggregate_t_schema(
                &child.out_schema(),
                group_by,
                aggs,
            )?);
            blocking(vec![child], BlockKind::RowOp(node.clone()), out)
        }
        PhysicalNode::RdupT { algo, .. } => {
            let child = next();
            let schema = child.out_schema();
            require_temporal(&schema, "temporal duplicate elimination")?;
            let kind = match algo {
                RdupTAlgo::Faithful => BlockKind::RowOp(node.clone()),
                RdupTAlgo::Sweep => BlockKind::RdupTSweep,
            };
            blocking(vec![child], kind, schema)
        }
        PhysicalNode::UnionT { .. } => {
            let left = next();
            let right = next();
            let ls = left.out_schema();
            require_temporal(&ls, "temporal union")?;
            require_temporal(&right.out_schema(), "temporal union")?;
            ls.check_union_compatible(&right.out_schema(), "temporal union")?;
            blocking(vec![left, right], BlockKind::RowOp(node.clone()), ls)
        }
        PhysicalNode::Coalesce { algo, .. } => {
            let child = next();
            let schema = child.out_schema();
            require_temporal(&schema, "coalescing")?;
            let kind = match algo {
                CoalesceAlgo::Fixpoint => BlockKind::RowOp(node.clone()),
                CoalesceAlgo::SortMerge => BlockKind::CoalesceSortMerge,
            };
            blocking(vec![child], kind, schema)
        }
        PhysicalNode::TransferS { .. } | PhysicalNode::TransferD { .. } => {
            Box::new(TransferOp { child: next() })
        }
    };
    let id = register(sink, node.label(), child_ids);
    Ok((metered(op, id, sink), id))
}

/// Execute a physical plan through the batch pipeline.
pub fn execute_batch(plan: &PhysicalPlan, env: &Env) -> Result<(Relation, ExecMetrics)> {
    let _span = trace::span(Category::Exec, "batch.pipeline");
    let sink: SharedSink = Rc::new(RefCell::new(Sink::default()));
    let (mut root, _) = build(&plan.root, env, &sink)?;
    root.open()?;
    let schema = root.out_schema();
    let mut batches = Vec::new();
    while let Some(b) = root.next_batch()? {
        if !b.is_empty() {
            batches.push(b);
        }
    }
    root.close();
    // Fused sink: when the root's batches all view one shared set of
    // columns (sort/filter/scan pipelines), transpose straight from the
    // shared columns through the selection — no compacted columnar copy
    // between the pipeline and the row layout. The budget is charged for
    // the allocation actually made (the selection vector; the row tuples
    // are the caller's result either way).
    let result = match super::shared_selection(&batches) {
        Some((columns, sel)) => {
            let _sel_reserved = context::reserve_current(sel.as_ref().map_or(0, |s| s.len() * 4))?;
            let rows = sel
                .as_ref()
                .map_or_else(|| columns.first().map_or(0, |c| c.len()), Vec::len);
            let tuples = tqo_core::columnar::tuples_from_columns(&columns, sel.as_deref(), rows);
            Relation::new_unchecked((*schema).clone(), tuples)
        }
        None => {
            let columnar = concat(schema, &batches);
            // Charge the final materialized result while converting to
            // row layout — the last allocation a budget can deny.
            let _result_reserved = context::reserve_current(columnar.approx_bytes())?;
            columnar.to_relation()
        }
    };

    let sink = sink.borrow();
    let mut operators = Vec::with_capacity(sink.nodes.len());
    for node in &sink.nodes {
        let child_time: Duration = node.children.iter().map(|&c| sink.nodes[c].inclusive).sum();
        let rows_in: usize = node.children.iter().map(|&c| sink.nodes[c].rows_out).sum();
        operators.push(OperatorMetrics {
            label: node.label.clone(),
            rows_in,
            rows_out: node.rows_out,
            est_rows: None,
            batches: node.batches,
            elapsed: node.inclusive.saturating_sub(child_time),
            thread_times: Vec::new(),
        });
    }
    Ok((
        result,
        ExecMetrics {
            operators,
            reopts: Vec::new(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::value::DataType;
    use tqo_core::Value;

    fn env() -> Env {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            (0..2500i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(format!("v{}", i % 40)),
                        Value::Time(i % 19),
                        Value::Time(i % 19 + 1 + (i % 3)),
                    ])
                })
                .collect(),
        )
        .unwrap();
        Env::new().with("R", r)
    }

    fn plan(root: PhysicalNode) -> PhysicalPlan {
        PhysicalPlan::new(root)
    }

    fn scan(name: &str) -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::Scan { name: name.into() })
    }

    #[test]
    fn scan_streams_in_batch_size_chunks() {
        let e = env();
        let (result, metrics) =
            execute_batch(&plan(PhysicalNode::Scan { name: "R".into() }), &e).unwrap();
        assert_eq!(result.len(), 2500);
        assert_eq!(result, *e.get("R").unwrap());
        assert_eq!(metrics.operators.len(), 1);
        assert_eq!(metrics.operators[0].batches, 3); // 1024 + 1024 + 452
        assert_eq!(metrics.operators[0].rows_out, 2500);
    }

    #[test]
    fn mixed_dtype_predicate_agrees_with_row_engine() {
        // `T1 < E` compares Time against Str — total under Value::cmp, so
        // the row engine evaluates it; the batch engine must fall back to
        // row evaluation rather than hitting the native comparator.
        let e = env();
        let p = plan(PhysicalNode::Select {
            input: scan("R"),
            predicate: Expr::lt(Expr::col("T1"), Expr::col("E")),
        });
        let (batch_result, _) = execute_batch(&p, &e).unwrap();
        let (row_result, _) = crate::executor::execute_row(&p, &e).unwrap();
        assert_eq!(batch_result, row_result);
    }

    #[test]
    fn metrics_mirror_row_engine_ordering() {
        let e = env();
        let root = PhysicalNode::RdupT {
            input: Arc::new(PhysicalNode::Select {
                input: scan("R"),
                predicate: Expr::eq(Expr::col("E"), Expr::lit("v7")),
            }),
            algo: RdupTAlgo::Sweep,
        };
        let p = plan(root);
        let (batch_result, bm) = execute_batch(&p, &e).unwrap();
        let (row_result, rm) = crate::executor::execute_row(&p, &e).unwrap();
        assert_eq!(batch_result, row_result);
        let blabels: Vec<_> = bm.operators.iter().map(|o| o.label.clone()).collect();
        let rlabels: Vec<_> = rm.operators.iter().map(|o| o.label.clone()).collect();
        assert_eq!(blabels, rlabels);
        assert_eq!(
            bm.operators.iter().map(|o| o.rows_out).collect::<Vec<_>>(),
            rm.operators.iter().map(|o| o.rows_out).collect::<Vec<_>>(),
        );
    }
}
