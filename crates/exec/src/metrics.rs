//! Execution metrics: per-operator row counts, batch counts, timings, and
//! estimated-vs-actual cardinality feedback (q-error).

use std::time::Duration;

/// The workspace-wide median helper (upper median on even lengths),
/// re-exported from [`tqo_core::stats`] so existing
/// `tqo_exec::metrics::median` callers keep one shared definition.
pub use tqo_core::stats::median;

/// Metrics for one executed operator instance.
#[derive(Debug, Clone)]
pub struct OperatorMetrics {
    /// Operator label (including the chosen algorithm).
    pub label: String,
    /// Input cardinality (sum over the operator's inputs).
    pub rows_in: usize,
    /// Output cardinality.
    pub rows_out: usize,
    /// The planner's estimated output cardinality, when the plan carried
    /// one — the basis of the q-error feedback loop.
    pub est_rows: Option<u64>,
    /// Batches produced (1 for the row engine's materialized output; the
    /// morsel count under the parallel engine).
    pub batches: usize,
    /// **Exclusive wall-clock** time spent in this operator (children
    /// excluded). For multi-threaded operators this is the elapsed time of
    /// the operator's parallel region, *not* the sum of its workers' busy
    /// times — summed thread time lives in [`OperatorMetrics::cpu_time`],
    /// so wall-clock is never double-counted across workers (or into the
    /// parent, whose children finish before its own timer starts).
    pub elapsed: Duration,
    /// Per-worker busy times of a morsel-parallel operator, one entry per
    /// worker that did any work. Empty for the serial engines.
    pub thread_times: Vec<Duration>,
}

impl OperatorMetrics {
    /// Output throughput in rows per second (0 when the timer saw nothing,
    /// which happens for sub-resolution operators on empty inputs).
    /// Always computed from aggregate rows over **wall-clock** time —
    /// dividing by summed thread time would overstate a parallel
    /// operator's cost by its worker count.
    pub fn rows_per_sec(&self) -> f64 {
        self.throughput().unwrap_or(0.0)
    }

    /// Output throughput, or `None` when the operator finished below the
    /// timer's resolution (`elapsed` is zero) and no meaningful rate
    /// exists. Reports render `None` as `—` rather than a misleading
    /// `0 rows/s`.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(self.rows_out as f64 / secs)
    }

    /// Total busy time across this operator's workers (equals `elapsed`
    /// for serial operators). The parallel engine's speedup on an operator
    /// is roughly `cpu_time / elapsed` when its workers stay saturated.
    pub fn cpu_time(&self) -> Duration {
        if self.thread_times.is_empty() {
            self.elapsed
        } else {
            self.thread_times.iter().sum()
        }
    }

    /// Workers that contributed to this operator (1 for serial engines).
    pub fn threads(&self) -> usize {
        self.thread_times.len().max(1)
    }

    /// The q-error of the cardinality estimate:
    /// `max(est/actual, actual/est)`, both sides floored at one row so an
    /// empty-result estimate scores finitely. 1.0 = perfect; `None` when
    /// the plan carried no estimate for this operator.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.est_rows? as f64;
        let act = self.rows_out as f64;
        let (est, act) = (est.max(1.0), act.max(1.0));
        Some((est / act).max(act / est))
    }
}

/// One adaptive checkpoint decision: a pipeline breaker completed, its
/// estimated-vs-actual cardinality was compared, and the unexecuted plan
/// remainder was (or was not) re-planned (see [`crate::adaptive`]).
#[derive(Debug, Clone)]
pub struct ReoptEvent {
    /// Label of the completed breaker operator (the checkpoint site).
    pub checkpoint: String,
    /// The planner's estimate for the breaker's output.
    pub est_rows: Option<u64>,
    /// The breaker's actual output cardinality.
    pub actual_rows: usize,
    /// `max(est/actual, actual/est)` with both sides floored at one row.
    pub q_error: Option<f64>,
    /// True when the q-error reached the threshold within the re-plan
    /// budget and the remainder was re-planned with measured statistics.
    pub replanned: bool,
    /// True when re-planning actually produced a different physical
    /// remainder than the static plan would have executed.
    pub plan_changed: bool,
}

impl ReoptEvent {
    /// One human-readable line for reports and the shell's `\timing`.
    pub fn describe(&self) -> String {
        let est = self.est_rows.map_or_else(|| "-".into(), |e| e.to_string());
        let q = self
            .q_error
            .map_or_else(|| "-".into(), |q| format!("{q:.2}"));
        let outcome = if !self.replanned {
            "kept static plan"
        } else if self.plan_changed {
            "re-planned: plan CHANGED"
        } else {
            "re-planned: same plan"
        };
        format!(
            "reopt @ {:<24} est={est:<8} act={:<8} q={q:<8} {outcome}",
            self.checkpoint, self.actual_rows,
        )
    }
}

/// Metrics for a whole plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Post-order per-operator metrics. Under adaptive execution the
    /// sequence concatenates the executed stages in execution order.
    pub operators: Vec<OperatorMetrics>,
    /// Adaptive checkpoint decisions, in execution order (empty for
    /// non-adaptive runs).
    pub reopts: Vec<ReoptEvent>,
}

impl ExecMetrics {
    /// Total operator time (sum of exclusive wall-clock times).
    pub fn total_time(&self) -> Duration {
        self.operators.iter().map(|o| o.elapsed).sum()
    }

    /// Total busy time across all operators and workers — the work the
    /// plan did, as opposed to how long it took ([`total_time`]).
    ///
    /// [`total_time`]: ExecMetrics::total_time
    pub fn total_cpu_time(&self) -> Duration {
        self.operators.iter().map(OperatorMetrics::cpu_time).sum()
    }

    /// Total rows produced across all operators (a rough work measure).
    pub fn total_rows(&self) -> usize {
        self.operators.iter().map(|o| o.rows_out).sum()
    }

    /// Rows moved through transfer operators — the stratum architecture's
    /// communication volume.
    pub fn transferred_rows(&self) -> usize {
        self.operators
            .iter()
            .filter(|o| o.label.starts_with("transfer"))
            .map(|o| o.rows_out)
            .sum()
    }

    /// Attach per-operator row estimates (post-order, parallel to
    /// `operators`). Ignored when the lengths disagree — e.g. plans built
    /// without annotations.
    pub fn attach_estimates(&mut self, estimates: &[Option<u64>]) {
        if estimates.len() == self.operators.len() {
            for (op, est) in self.operators.iter_mut().zip(estimates) {
                op.est_rows = *est;
            }
        }
    }

    /// All per-operator q-errors (operators with estimates only).
    pub fn q_errors(&self) -> Vec<f64> {
        self.operators.iter().filter_map(|o| o.q_error()).collect()
    }

    /// Median q-error across the operators that carried estimates —
    /// the execution's one-number estimation-quality verdict.
    pub fn median_q_error(&self) -> Option<f64> {
        median(&mut self.q_errors())
    }

    /// Checkpoints whose q-error tripped the adaptive threshold and whose
    /// remainder was re-planned.
    pub fn replanned_count(&self) -> usize {
        self.reopts.iter().filter(|e| e.replanned).count()
    }

    /// Re-plans that produced a physically different remainder than the
    /// static plan — the "plans switched" count the bench tracks.
    pub fn plans_switched(&self) -> usize {
        self.reopts.iter().filter(|e| e.plan_changed).count()
    }

    /// A compact per-operator report with throughput and estimation
    /// feedback, so benches and the stratum engine can see where time —
    /// and estimation error — actually goes.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            let est = match op.est_rows {
                Some(e) => format!("{e}"),
                None => "-".into(),
            };
            let q = match op.q_error() {
                Some(q) => format!("{q:.2}"),
                None => "-".into(),
            };
            let thr = if op.thread_times.is_empty() {
                String::new()
            } else {
                format!(" thr={} cpu={:?}", op.threads(), op.cpu_time())
            };
            // Sub-resolution operators have no meaningful rate: render a
            // dash, not `0 rows/s`.
            let rate = match op.throughput() {
                Some(r) => format!("{r:>12.0} rows/s"),
                None => format!("{:>12} rows/s", "—"),
            };
            out.push_str(&format!(
                "{:<30} rows_in={:<8} rows_out={:<8} est={:<8} q={:<6} batches={:<5} time={:<12?} {rate}{}\n",
                op.label, op.rows_in, op.rows_out, est, q, op.batches, op.elapsed, thr,
            ));
        }
        for e in &self.reopts {
            out.push_str(&e.describe());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(label: &str, rows_out: usize, elapsed: Duration) -> OperatorMetrics {
        OperatorMetrics {
            label: label.into(),
            rows_in: 0,
            rows_out,
            est_rows: None,
            batches: 1,
            elapsed,
            thread_times: Vec::new(),
        }
    }

    #[test]
    fn aggregates() {
        let m = ExecMetrics {
            reopts: Vec::new(),
            operators: vec![
                OperatorMetrics {
                    rows_out: 100,
                    ..op("scan(R)", 100, Duration::from_micros(5))
                },
                OperatorMetrics {
                    rows_in: 100,
                    ..op("transfer-s", 100, Duration::from_micros(2))
                },
                OperatorMetrics {
                    rows_in: 100,
                    ..op("sort[stable]", 100, Duration::from_micros(9))
                },
            ],
        };
        assert_eq!(m.total_rows(), 300);
        assert_eq!(m.transferred_rows(), 100);
        assert_eq!(m.total_time(), Duration::from_micros(16));
        assert!(m.report().contains("transfer-s"));
        assert!(m.report().contains("rows/s"));
    }

    #[test]
    fn throughput_is_rows_over_time() {
        let o = OperatorMetrics {
            rows_in: 2000,
            batches: 2,
            ..op("rdup[hash]", 1000, Duration::from_millis(100))
        };
        assert!((o.rows_per_sec() - 10_000.0).abs() < 1e-6);
        assert!(o.throughput().is_some());
        // Sub-resolution timer: rows_per_sec keeps its 0.0 contract but
        // throughput() reports "no rate" and the report renders a dash.
        let idle = op("noop", 0, Duration::ZERO);
        assert_eq!(idle.rows_per_sec(), 0.0);
        assert_eq!(idle.throughput(), None);
        let m = ExecMetrics {
            operators: vec![idle],
            reopts: Vec::new(),
        };
        assert!(m.report().contains("— rows/s"));
        assert!(!m.report().contains("0 rows/s"));
    }

    #[test]
    fn parallel_operators_separate_wall_from_thread_time() {
        // A 4-worker operator: 100ms wall, 4 × ~90ms busy. Exclusive time
        // stays wall-clock (no double-counting the overlapped workers),
        // cpu_time sums the per-thread breakdown, and throughput divides
        // by wall time — not by the ~360ms of summed thread time.
        let mut o = op("rdup[hash]", 1_000_000, Duration::from_millis(100));
        o.thread_times = vec![Duration::from_millis(90); 4];
        assert_eq!(o.threads(), 4);
        assert_eq!(o.cpu_time(), Duration::from_millis(360));
        assert_eq!(o.elapsed, Duration::from_millis(100));
        assert!((o.rows_per_sec() - 10_000_000.0).abs() < 1.0);

        // Serial operators report cpu == wall and one thread.
        let serial = op("select", 10, Duration::from_millis(5));
        assert_eq!(serial.threads(), 1);
        assert_eq!(serial.cpu_time(), serial.elapsed);

        let m = ExecMetrics {
            operators: vec![o.clone(), serial],
            reopts: Vec::new(),
        };
        assert_eq!(m.total_time(), Duration::from_millis(105));
        assert_eq!(m.total_cpu_time(), Duration::from_millis(365));
        assert!(m.report().contains("thr=4"));
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        let mut o = op("select", 100, Duration::ZERO);
        assert_eq!(o.q_error(), None);
        o.est_rows = Some(400);
        assert_eq!(o.q_error(), Some(4.0));
        o.est_rows = Some(25);
        assert_eq!(o.q_error(), Some(4.0));
        // Empty actual with a 1-row estimate: perfect under the floor.
        let mut empty = op("select", 0, Duration::ZERO);
        empty.est_rows = Some(1);
        assert_eq!(empty.q_error(), Some(1.0));
    }

    #[test]
    fn estimates_attach_and_summarize() {
        let mut m = ExecMetrics {
            reopts: Vec::new(),
            operators: vec![
                op("scan(R)", 100, Duration::ZERO),
                op("select", 10, Duration::ZERO),
                op("rdup[hash]", 10, Duration::ZERO),
            ],
        };
        // Length mismatch: ignored.
        m.attach_estimates(&[Some(1)]);
        assert!(m.q_errors().is_empty());
        m.attach_estimates(&[Some(100), Some(20), None]);
        assert_eq!(m.q_errors(), vec![1.0, 2.0]);
        assert_eq!(m.median_q_error(), Some(2.0));
        assert!(m.report().contains("q=2.00"));
    }
}
