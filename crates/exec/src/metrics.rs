//! Execution metrics: per-operator row counts, batch counts, and timings.

use std::time::Duration;

/// Metrics for one executed operator instance.
#[derive(Debug, Clone)]
pub struct OperatorMetrics {
    /// Operator label (including the chosen algorithm).
    pub label: String,
    /// Input cardinality (sum over the operator's inputs).
    pub rows_in: usize,
    /// Output cardinality.
    pub rows_out: usize,
    /// Batches produced (1 for the row engine's materialized output).
    pub batches: usize,
    /// Wall-clock time spent in this operator (children excluded).
    pub elapsed: Duration,
}

impl OperatorMetrics {
    /// Output throughput in rows per second (0 when the timer saw nothing,
    /// which happens for sub-resolution operators on empty inputs).
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.rows_out as f64 / secs
    }
}

/// Metrics for a whole plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    pub operators: Vec<OperatorMetrics>,
}

impl ExecMetrics {
    /// Total operator time (sum of exclusive times).
    pub fn total_time(&self) -> Duration {
        self.operators.iter().map(|o| o.elapsed).sum()
    }

    /// Total rows produced across all operators (a rough work measure).
    pub fn total_rows(&self) -> usize {
        self.operators.iter().map(|o| o.rows_out).sum()
    }

    /// Rows moved through transfer operators — the stratum architecture's
    /// communication volume.
    pub fn transferred_rows(&self) -> usize {
        self.operators
            .iter()
            .filter(|o| o.label.starts_with("transfer"))
            .map(|o| o.rows_out)
            .sum()
    }

    /// A compact per-operator report with throughput, so benches and the
    /// stratum engine can see where time actually goes.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            out.push_str(&format!(
                "{:<30} rows_in={:<8} rows_out={:<8} batches={:<5} time={:<12?} {:>12.0} rows/s\n",
                op.label,
                op.rows_in,
                op.rows_out,
                op.batches,
                op.elapsed,
                op.rows_per_sec(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let m = ExecMetrics {
            operators: vec![
                OperatorMetrics {
                    label: "scan(R)".into(),
                    rows_in: 0,
                    rows_out: 100,
                    batches: 1,
                    elapsed: Duration::from_micros(5),
                },
                OperatorMetrics {
                    label: "transfer-s".into(),
                    rows_in: 100,
                    rows_out: 100,
                    batches: 1,
                    elapsed: Duration::from_micros(2),
                },
                OperatorMetrics {
                    label: "sort[stable]".into(),
                    rows_in: 100,
                    rows_out: 100,
                    batches: 1,
                    elapsed: Duration::from_micros(9),
                },
            ],
        };
        assert_eq!(m.total_rows(), 300);
        assert_eq!(m.transferred_rows(), 100);
        assert_eq!(m.total_time(), Duration::from_micros(16));
        assert!(m.report().contains("transfer-s"));
        assert!(m.report().contains("rows/s"));
    }

    #[test]
    fn throughput_is_rows_over_time() {
        let op = OperatorMetrics {
            label: "rdup[hash]".into(),
            rows_in: 2000,
            rows_out: 1000,
            batches: 2,
            elapsed: Duration::from_millis(100),
        };
        assert!((op.rows_per_sec() - 10_000.0).abs() < 1e-6);
        let idle = OperatorMetrics {
            label: "noop".into(),
            rows_in: 0,
            rows_out: 0,
            batches: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(idle.rows_per_sec(), 0.0);
    }
}
