//! Execution metrics: per-operator row counts and timings.

use std::time::Duration;

/// Metrics for one executed operator instance.
#[derive(Debug, Clone)]
pub struct OperatorMetrics {
    /// Operator label (including the chosen algorithm).
    pub label: String,
    /// Output cardinality.
    pub rows_out: usize,
    /// Wall-clock time spent in this operator (children excluded).
    pub elapsed: Duration,
}

/// Metrics for a whole plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    pub operators: Vec<OperatorMetrics>,
}

impl ExecMetrics {
    /// Total operator time (sum of exclusive times).
    pub fn total_time(&self) -> Duration {
        self.operators.iter().map(|o| o.elapsed).sum()
    }

    /// Total rows produced across all operators (a rough work measure).
    pub fn total_rows(&self) -> usize {
        self.operators.iter().map(|o| o.rows_out).sum()
    }

    /// Rows moved through transfer operators — the stratum architecture's
    /// communication volume.
    pub fn transferred_rows(&self) -> usize {
        self.operators
            .iter()
            .filter(|o| o.label.starts_with("transfer"))
            .map(|o| o.rows_out)
            .sum()
    }

    /// A compact per-operator report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            out.push_str(&format!(
                "{:<30} rows={:<8} time={:?}\n",
                op.label, op.rows_out, op.elapsed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let m = ExecMetrics {
            operators: vec![
                OperatorMetrics {
                    label: "scan(R)".into(),
                    rows_out: 100,
                    elapsed: Duration::from_micros(5),
                },
                OperatorMetrics {
                    label: "transfer-s".into(),
                    rows_out: 100,
                    elapsed: Duration::from_micros(2),
                },
                OperatorMetrics {
                    label: "sort[stable]".into(),
                    rows_out: 100,
                    elapsed: Duration::from_micros(9),
                },
            ],
        };
        assert_eq!(m.total_rows(), 300);
        assert_eq!(m.transferred_rows(), 100);
        assert_eq!(m.total_time(), Duration::from_micros(16));
        assert!(m.report().contains("transfer-s"));
    }
}
