//! Lowering: logical plans → physical plans.
//!
//! Algorithm selection is driven by the plan's operation properties
//! (Table 2): the fast algorithms produce output equivalent only at `≡M` or
//! `≡SM`, so they are admissible exactly where the properties say order
//! (and, for `≡SM`, periods) do not matter — the same machinery that gates
//! transformation rules in Figure 5 gates physical algorithms here.

use std::sync::Arc;

use tqo_core::error::Result;
use tqo_core::optimizer::{optimize, Optimized, OptimizerConfig, SearchStrategy};
use tqo_core::plan::props::{annotate, Annotations};
use tqo_core::plan::{LogicalPlan, Path, PlanNode};
use tqo_core::rules::RuleSet;

use crate::physical::{
    CoalesceAlgo, DifferenceTAlgo, PhysicalNode, PhysicalPlan, ProductTAlgo, RdupTAlgo,
};

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Allow the fast (weaker-equivalence) algorithms where the properties
    /// license them. With `false`, every operator is lowered to its
    /// specification-faithful algorithm — the A/B baseline.
    pub allow_fast: bool,
    /// Plan-search engine used by [`optimize_and_lower`]: the exhaustive
    /// Figure 5 closure or the memo optimizer.
    pub strategy: SearchStrategy,
    /// Execution engine [`crate::executor::execute_logical`] dispatches to
    /// (vectorized batch pipeline by default).
    pub mode: crate::executor::ExecMode,
    /// Adaptive mid-query re-optimization ([`crate::adaptive`]): when set,
    /// [`crate::executor::execute_logical`] observes actual cardinalities
    /// at pipeline breakers and re-plans the remainder on large q-errors.
    /// `None` (the default) executes the static plan unchanged.
    pub adaptive: Option<crate::adaptive::AdaptiveConfig>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            allow_fast: true,
            strategy: SearchStrategy::default(),
            mode: crate::executor::ExecMode::default(),
            adaptive: None,
        }
    }
}

/// Lower a logical plan to a physical plan. Per-node row estimates from
/// the annotation ride along in post-order, so executed operators can
/// report estimated-vs-actual q-errors.
pub fn lower(plan: &LogicalPlan, config: PlannerConfig) -> Result<PhysicalPlan> {
    let mut span = tqo_core::trace::span(tqo_core::trace::Category::Planner, "lower");
    let ann = annotate(plan)?;
    let mut estimates = Vec::new();
    let root = lower_node(&plan.root, &mut Vec::new(), &ann, config, &mut estimates)?;
    span.note_with(|| {
        format!(
            "\"operators\": {}, \"engine\": \"{:?}\", \"fast\": {}",
            estimates.len(),
            config.mode,
            config.allow_fast
        )
    });
    Ok(PhysicalPlan::new(root).with_estimates(estimates))
}

/// Optimize a logical plan with the configured search strategy, then lower
/// the winner to a physical plan. The cost model is calibrated to the
/// engine that will execute the plan (`config.mode`).
pub fn optimize_and_lower(
    plan: &LogicalPlan,
    rules: &RuleSet,
    config: PlannerConfig,
) -> Result<(PhysicalPlan, Optimized)> {
    let optimizer_config = OptimizerConfig {
        strategy: config.strategy,
        cost_model: tqo_core::cost::CostModel::calibrated(config.mode.engine())
            .with_fast_algorithms(config.allow_fast),
        ..OptimizerConfig::default()
    };
    let optimized = optimize(plan, rules, &optimizer_config)?;
    let physical = lower(&optimized.best, config)?;
    Ok((physical, optimized))
}

fn lower_node(
    node: &PlanNode,
    path: &mut Path,
    ann: &Annotations,
    config: PlannerConfig,
    estimates: &mut Vec<Option<u64>>,
) -> Result<PhysicalNode> {
    let mut lowered_children = Vec::with_capacity(node.children().len());
    for (i, c) in node.children().iter().enumerate() {
        path.push(i);
        lowered_children.push(Arc::new(lower_node(c, path, ann, config, estimates)?));
        path.pop();
    }
    // Post-order, after the children: matches both engines' metric order.
    estimates.push(Some(ann[path.as_slice()].stat.card()));
    let mut kids = lowered_children.into_iter();
    let mut next = || kids.next().expect("child lowered");

    let flags = ann[path.as_slice()].flags;
    let child_stat = |ann: &Annotations, path: &Path, i: usize| {
        let mut p = path.clone();
        p.push(i);
        ann[&p].stat.clone()
    };

    Ok(match node {
        PlanNode::Scan { name, .. } => PhysicalNode::Scan { name: name.clone() },
        PlanNode::Select { predicate, .. } => PhysicalNode::Select {
            input: next(),
            predicate: predicate.clone(),
        },
        PlanNode::Project { items, .. } => PhysicalNode::Project {
            input: next(),
            items: items.clone(),
        },
        PlanNode::UnionAll { .. } => PhysicalNode::UnionAll {
            left: next(),
            right: next(),
        },
        PlanNode::Product { .. } => PhysicalNode::Product {
            left: next(),
            right: next(),
        },
        PlanNode::Difference { .. } => PhysicalNode::Difference {
            left: next(),
            right: next(),
        },
        PlanNode::Aggregate { group_by, aggs, .. } => PhysicalNode::Aggregate {
            input: next(),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Rdup { .. } => PhysicalNode::Rdup { input: next() },
        PlanNode::UnionMax { .. } => PhysicalNode::UnionMax {
            left: next(),
            right: next(),
        },
        PlanNode::Sort { order, .. } => PhysicalNode::Sort {
            input: next(),
            order: order.clone(),
        },
        PlanNode::Limit { limit, offset, .. } => PhysicalNode::Limit {
            input: next(),
            limit: *limit,
            offset: *offset,
        },
        PlanNode::ProductT { .. } => {
            // Plane sweep reorders the output pairs: needs ¬OrderRequired.
            let algo = if config.allow_fast && !flags.order_required {
                ProductTAlgo::PlaneSweep
            } else {
                ProductTAlgo::NestedLoop
            };
            PhysicalNode::ProductT {
                left: next(),
                right: next(),
                algo,
            }
        }
        PlanNode::DifferenceT { .. } => {
            // Subtract-union is `≡SM` (needs the reordering and snapshot
            // licenses) and requires an sdf left argument. Within that
            // license the choice is statistics-driven: per-left-tuple
            // subtraction beats the timeline sweep only when the right
            // side is estimated much smaller than the left.
            let left = child_stat(ann, path, 0);
            let right = child_stat(ann, path, 1);
            let algo = if config.allow_fast
                && !flags.order_required
                && !flags.period_preserving
                && left.snapshot_dup_free
                && right.card().saturating_mul(16) <= left.card()
            {
                DifferenceTAlgo::SubtractUnion
            } else {
                DifferenceTAlgo::TimelineSweep
            };
            PhysicalNode::DifferenceT {
                left: next(),
                right: next(),
                algo,
            }
        }
        PlanNode::AggregateT { group_by, aggs, .. } => PhysicalNode::AggregateT {
            input: next(),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::RdupT { .. } => {
            // The sweep canonicalizes periods (≡SM): needs ¬OrderRequired
            // and ¬PeriodPreserving.
            let algo = if config.allow_fast && !flags.order_required && !flags.period_preserving {
                RdupTAlgo::Sweep
            } else {
                RdupTAlgo::Faithful
            };
            PhysicalNode::RdupT {
                input: next(),
                algo,
            }
        }
        PlanNode::UnionT { .. } => PhysicalNode::UnionT {
            left: next(),
            right: next(),
        },
        PlanNode::Coalesce { .. } => {
            // Sort-merge reorders (≡M) and is multiset-exact only for
            // snapshot-dup-free inputs; otherwise it needs the snapshot
            // license too.
            let input_sdf = child_stat(ann, path, 0).snapshot_dup_free;
            let algo = if config.allow_fast
                && !flags.order_required
                && (input_sdf || !flags.period_preserving)
            {
                CoalesceAlgo::SortMerge
            } else {
                CoalesceAlgo::Fixpoint
            };
            PhysicalNode::Coalesce {
                input: next(),
                algo,
            }
        }
        PlanNode::TransferS { .. } => PhysicalNode::TransferS { input: next() },
        PlanNode::TransferD { .. } => PhysicalNode::TransferD { input: next() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::plan::{BaseProps, PlanBuilder};
    use tqo_core::schema::Schema;
    use tqo_core::sortspec::Order;
    use tqo_core::value::DataType;

    fn tscan(name: &str) -> PlanBuilder {
        let s = Schema::temporal(&[("E", DataType::Str)]);
        PlanBuilder::scan(name, BaseProps::unordered(s, 100))
    }

    #[test]
    fn fast_rdup_t_under_coalesce_in_multiset_query() {
        // coalT(rdupT(R)) as a multiset query: below coalᵀ periods need
        // not be preserved, order is not required → sweep.
        let plan = tscan("R").rdup_t().coalesce().build_multiset();
        let phys = lower(&plan, PlannerConfig::default()).unwrap();
        assert!(
            phys.explain().contains("rdup-t[Sweep]"),
            "{}",
            phys.explain()
        );
        assert!(phys.explain().contains("coalesce[SortMerge]"));
    }

    #[test]
    fn faithful_rdup_t_when_periods_matter() {
        // A bare rdupT feeding the result: periods must be preserved.
        let plan = tscan("R").rdup_t().build_multiset();
        let phys = lower(&plan, PlannerConfig::default()).unwrap();
        assert!(phys.explain().contains("rdup-t[Faithful]"));
    }

    #[test]
    fn faithful_everything_when_fast_disabled() {
        let plan = tscan("R").rdup_t().coalesce().build_multiset();
        let phys = lower(
            &plan,
            PlannerConfig {
                allow_fast: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(phys.explain().contains("rdup-t[Faithful]"));
        assert!(phys.explain().contains("coalesce[Fixpoint]"));
    }

    #[test]
    fn optimize_and_lower_agrees_across_strategies() {
        use tqo_core::rules::RuleSet;
        let plan = tscan("R").rdup_t().rdup_t().coalesce().build_multiset();
        let rules = RuleSet::standard();
        let (phys_ex, opt_ex) = optimize_and_lower(
            &plan,
            &rules,
            PlannerConfig {
                strategy: SearchStrategy::Exhaustive,
                ..Default::default()
            },
        )
        .unwrap();
        let (phys_memo, opt_memo) = optimize_and_lower(
            &plan,
            &rules,
            PlannerConfig {
                strategy: SearchStrategy::Memo,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((opt_ex.cost.0 - opt_memo.cost.0).abs() <= 1e-9 * opt_ex.cost.0.max(1.0));
        // Both strategies eliminated the redundant rdupT before lowering.
        assert!(phys_ex.explain().matches("rdup-t").count() <= 1);
        assert!(phys_memo.explain().matches("rdup-t").count() <= 1);
    }

    #[test]
    fn ordered_query_blocks_reordering_algorithms() {
        let plan = tscan("A")
            .product_t(tscan("B"))
            .build_list(Order::asc(&["1.E"]));
        let phys = lower(&plan, PlannerConfig::default()).unwrap();
        assert!(phys.explain().contains("product-t[NestedLoop]"));
        // Under a multiset query the sweep is allowed.
        let plan2 = tscan("A").product_t(tscan("B")).build_multiset();
        let phys2 = lower(&plan2, PlannerConfig::default()).unwrap();
        assert!(phys2.explain().contains("product-t[PlaneSweep]"));
    }
}
