//! Physical plans: logical operators bound to concrete algorithms.

use std::fmt;
use std::sync::Arc;

use tqo_core::error::{Error, Result};
use tqo_core::expr::{AggItem, Expr, ProjItem};
use tqo_core::sortspec::Order;

/// Algorithm choice for `rdupᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdupTAlgo {
    /// The paper's head/tail recursion — exact list output, `O(n²)`.
    Faithful,
    /// Per-class period-union sweep — `≡SM` output, `O(n log n)`.
    Sweep,
}

/// Algorithm choice for `coalᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceAlgo {
    /// First-partner fixpoint — exact list output, `O(n²)`.
    Fixpoint,
    /// Per-class sort-merge — `≡M` output (sdf input), `O(n log n)`.
    SortMerge,
}

/// Algorithm choice for `×ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductTAlgo {
    /// Left-major nested loop — exact list output, `O(n·m)`.
    NestedLoop,
    /// Endpoint plane sweep — `≡M` output, near `O(n log n + out)`.
    PlaneSweep,
}

/// Algorithm choice for `\ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferenceTAlgo {
    /// Count-timeline sweep — the reference semantics.
    TimelineSweep,
    /// Per-tuple subtract-union — `≡SM` output, requires an sdf left
    /// argument (ablation algorithm).
    SubtractUnion,
}

/// A physical operator tree. Parameters mirror
/// [`tqo_core::plan::PlanNode`]; the temporal operators carry their chosen
/// algorithm.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror `PlanNode`; the variants are documented
pub enum PhysicalNode {
    /// Read a named base relation.
    Scan { name: String },
    /// Filter rows by a predicate (`σ`).
    Select {
        input: Arc<PhysicalNode>,
        predicate: Expr,
    },
    /// Evaluate projection items per row (`π`).
    Project {
        input: Arc<PhysicalNode>,
        items: Vec<ProjItem>,
    },
    /// Bag union: left's rows, then right's (`∪all`).
    UnionAll {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Left-major Cartesian product (`×`).
    Product {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Multiset difference via a hash count table (`\`).
    Difference {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Hash-grouped aggregation (`ξ`).
    Aggregate {
        input: Arc<PhysicalNode>,
        group_by: Vec<String>,
        aggs: Vec<AggItem>,
    },
    /// Hash duplicate elimination (`rdup`).
    Rdup { input: Arc<PhysicalNode> },
    /// Set union keeping the larger multiplicity (`∪max`).
    UnionMax {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Stable sort (`sort`).
    Sort {
        input: Arc<PhysicalNode>,
        order: Order,
    },
    /// Prefix truncation (`LIMIT n OFFSET k`).
    Limit {
        input: Arc<PhysicalNode>,
        limit: Option<usize>,
        offset: usize,
    },
    /// Temporal Cartesian product (`×ᵀ`) with its chosen algorithm.
    ProductT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
        algo: ProductTAlgo,
    },
    /// Temporal difference (`\ᵀ`) with its chosen algorithm.
    DifferenceT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
        algo: DifferenceTAlgo,
    },
    /// Temporal aggregation over constant intervals (`ξᵀ`).
    AggregateT {
        input: Arc<PhysicalNode>,
        group_by: Vec<String>,
        aggs: Vec<AggItem>,
    },
    /// Temporal duplicate elimination (`rdupᵀ`) with its chosen algorithm.
    RdupT {
        input: Arc<PhysicalNode>,
        algo: RdupTAlgo,
    },
    /// Temporal union (`∪ᵀ`).
    UnionT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Period coalescing (`coalᵀ`) with its chosen algorithm.
    Coalesce {
        input: Arc<PhysicalNode>,
        algo: CoalesceAlgo,
    },
    /// DBMS→stratum transfer: executes as identity but is metered (rows
    /// moved).
    TransferS { input: Arc<PhysicalNode> },
    /// Stratum→DBMS transfer: executes as identity but is metered.
    TransferD { input: Arc<PhysicalNode> },
}

impl PhysicalNode {
    /// Operator label including the algorithm, for metrics and EXPLAIN.
    pub fn label(&self) -> String {
        match self {
            PhysicalNode::Scan { name } => format!("scan({name})"),
            PhysicalNode::Select { .. } => "select".into(),
            PhysicalNode::Project { .. } => "project".into(),
            PhysicalNode::UnionAll { .. } => "union-all".into(),
            PhysicalNode::Product { .. } => "product".into(),
            PhysicalNode::Difference { .. } => "difference".into(),
            PhysicalNode::Aggregate { .. } => "aggregate".into(),
            PhysicalNode::Rdup { .. } => "rdup[hash]".into(),
            PhysicalNode::UnionMax { .. } => "union-max".into(),
            PhysicalNode::Sort { .. } => "sort[stable]".into(),
            PhysicalNode::Limit { limit, offset, .. } => match limit {
                Some(n) => format!("limit[{n} offset {offset}]"),
                None => format!("limit[all offset {offset}]"),
            },
            PhysicalNode::ProductT { algo, .. } => format!("product-t[{algo:?}]"),
            PhysicalNode::DifferenceT { algo, .. } => format!("difference-t[{algo:?}]"),
            PhysicalNode::AggregateT { .. } => "aggregate-t[sweep]".into(),
            PhysicalNode::RdupT { algo, .. } => format!("rdup-t[{algo:?}]"),
            PhysicalNode::UnionT { .. } => "union-t".into(),
            PhysicalNode::Coalesce { algo, .. } => format!("coalesce[{algo:?}]"),
            PhysicalNode::TransferS { .. } => "transfer-s".into(),
            PhysicalNode::TransferD { .. } => "transfer-d".into(),
        }
    }

    /// The node's children, unary inputs first.
    pub fn children(&self) -> Vec<&Arc<PhysicalNode>> {
        match self {
            PhysicalNode::Scan { .. } => vec![],
            PhysicalNode::Select { input, .. }
            | PhysicalNode::Project { input, .. }
            | PhysicalNode::Aggregate { input, .. }
            | PhysicalNode::Rdup { input }
            | PhysicalNode::Sort { input, .. }
            | PhysicalNode::Limit { input, .. }
            | PhysicalNode::AggregateT { input, .. }
            | PhysicalNode::RdupT { input, .. }
            | PhysicalNode::Coalesce { input, .. }
            | PhysicalNode::TransferS { input }
            | PhysicalNode::TransferD { input } => vec![input],
            PhysicalNode::UnionAll { left, right }
            | PhysicalNode::Product { left, right }
            | PhysicalNode::Difference { left, right }
            | PhysicalNode::UnionMax { left, right }
            | PhysicalNode::ProductT { left, right, .. }
            | PhysicalNode::DifferenceT { left, right, .. }
            | PhysicalNode::UnionT { left, right } => vec![left, right],
        }
    }

    /// Number of operators in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Rebuild this node with new children (same arity required) —
    /// algorithm choices and parameters are kept. Mirrors
    /// [`tqo_core::plan::PlanNode::with_children`].
    pub fn with_children(&self, mut new: Vec<Arc<PhysicalNode>>) -> Result<PhysicalNode> {
        let expect = self.children().len();
        if new.len() != expect {
            return Err(Error::Plan {
                reason: format!(
                    "physical {} expects {expect} children, got {}",
                    self.label(),
                    new.len()
                ),
            });
        }
        let mut next = || new.remove(0);
        Ok(match self {
            PhysicalNode::Scan { name } => PhysicalNode::Scan { name: name.clone() },
            PhysicalNode::Select { predicate, .. } => PhysicalNode::Select {
                input: next(),
                predicate: predicate.clone(),
            },
            PhysicalNode::Project { items, .. } => PhysicalNode::Project {
                input: next(),
                items: items.clone(),
            },
            PhysicalNode::UnionAll { .. } => PhysicalNode::UnionAll {
                left: next(),
                right: next(),
            },
            PhysicalNode::Product { .. } => PhysicalNode::Product {
                left: next(),
                right: next(),
            },
            PhysicalNode::Difference { .. } => PhysicalNode::Difference {
                left: next(),
                right: next(),
            },
            PhysicalNode::Aggregate { group_by, aggs, .. } => PhysicalNode::Aggregate {
                input: next(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            PhysicalNode::Rdup { .. } => PhysicalNode::Rdup { input: next() },
            PhysicalNode::UnionMax { .. } => PhysicalNode::UnionMax {
                left: next(),
                right: next(),
            },
            PhysicalNode::Sort { order, .. } => PhysicalNode::Sort {
                input: next(),
                order: order.clone(),
            },
            PhysicalNode::Limit { limit, offset, .. } => PhysicalNode::Limit {
                input: next(),
                limit: *limit,
                offset: *offset,
            },
            PhysicalNode::ProductT { algo, .. } => PhysicalNode::ProductT {
                left: next(),
                right: next(),
                algo: *algo,
            },
            PhysicalNode::DifferenceT { algo, .. } => PhysicalNode::DifferenceT {
                left: next(),
                right: next(),
                algo: *algo,
            },
            PhysicalNode::AggregateT { group_by, aggs, .. } => PhysicalNode::AggregateT {
                input: next(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            PhysicalNode::RdupT { algo, .. } => PhysicalNode::RdupT {
                input: next(),
                algo: *algo,
            },
            PhysicalNode::UnionT { .. } => PhysicalNode::UnionT {
                left: next(),
                right: next(),
            },
            PhysicalNode::Coalesce { algo, .. } => PhysicalNode::Coalesce {
                input: next(),
                algo: *algo,
            },
            PhysicalNode::TransferS { .. } => PhysicalNode::TransferS { input: next() },
            PhysicalNode::TransferD { .. } => PhysicalNode::TransferD { input: next() },
        })
    }

    /// The node at `path`, or an error for a dangling path.
    pub fn get(&self, path: &[usize]) -> Result<&PhysicalNode> {
        let mut node = self;
        for &i in path {
            node = node
                .children()
                .get(i)
                .copied()
                .map(|c| c.as_ref())
                .ok_or_else(|| Error::Plan {
                    reason: format!("dangling physical path index {i}"),
                })?;
        }
        Ok(node)
    }

    /// A new tree with the subtree at `path` replaced by `subtree`;
    /// untouched siblings are shared, not cloned. The adaptive executor
    /// uses this to splice a checkpoint scan over an executed stage
    /// without disturbing the remainder's algorithm choices.
    pub fn replace(&self, path: &[usize], subtree: PhysicalNode) -> Result<PhysicalNode> {
        if path.is_empty() {
            return Ok(subtree);
        }
        let (head, rest) = (path[0], &path[1..]);
        let children = self.children();
        let target = children.get(head).ok_or_else(|| Error::Plan {
            reason: format!("dangling physical path index {head}"),
        })?;
        let replaced = target.replace(rest, subtree)?;
        let new_children: Vec<Arc<PhysicalNode>> = children
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == head {
                    Arc::new(replaced.clone())
                } else {
                    Arc::clone(c)
                }
            })
            .collect();
        self.with_children(new_children)
    }
}

/// A rooted physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The root operator.
    pub root: Arc<PhysicalNode>,
    /// Estimated output rows per node in post-order (the order both
    /// engines emit [`crate::metrics::OperatorMetrics`]), from the
    /// optimizer's `DerivedStats`. Empty for hand-built plans; the
    /// executors then report no estimates.
    pub estimates: Vec<Option<u64>>,
}

impl PhysicalPlan {
    /// A plan rooted at `root`, with no estimates attached.
    pub fn new(root: PhysicalNode) -> PhysicalPlan {
        PhysicalPlan {
            root: Arc::new(root),
            estimates: Vec::new(),
        }
    }

    /// Attach post-order per-node row estimates (see [`PhysicalPlan::estimates`]).
    pub fn with_estimates(mut self, estimates: Vec<Option<u64>>) -> PhysicalPlan {
        self.estimates = estimates;
        self
    }

    /// Textual EXPLAIN of the physical tree.
    pub fn explain(&self) -> String {
        fn render(node: &PhysicalNode, indent: usize, out: &mut String) {
            out.push_str(&"  ".repeat(indent));
            out.push_str(&node.label());
            out.push('\n');
            for c in node.children() {
                render(c, indent + 1, out);
            }
        }
        let mut out = String::new();
        render(&self.root, 0, &mut out);
        out
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_include_algorithms() {
        let scan = Arc::new(PhysicalNode::Scan { name: "R".into() });
        let n = PhysicalNode::RdupT {
            input: scan,
            algo: RdupTAlgo::Sweep,
        };
        assert_eq!(n.label(), "rdup-t[Sweep]");
        assert_eq!(n.size(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let scan = Arc::new(PhysicalNode::Scan { name: "R".into() });
        let plan = PhysicalPlan::new(PhysicalNode::Coalesce {
            input: Arc::new(PhysicalNode::RdupT {
                input: scan,
                algo: RdupTAlgo::Faithful,
            }),
            algo: CoalesceAlgo::SortMerge,
        });
        let text = plan.explain();
        assert!(text.contains("coalesce[SortMerge]"));
        assert!(text.contains("  rdup-t[Faithful]"));
        assert!(text.contains("    scan(R)"));
    }
}
