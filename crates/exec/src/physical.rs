//! Physical plans: logical operators bound to concrete algorithms.

use std::fmt;
use std::sync::Arc;

use tqo_core::expr::{AggItem, Expr, ProjItem};
use tqo_core::sortspec::Order;

/// Algorithm choice for `rdupᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdupTAlgo {
    /// The paper's head/tail recursion — exact list output, `O(n²)`.
    Faithful,
    /// Per-class period-union sweep — `≡SM` output, `O(n log n)`.
    Sweep,
}

/// Algorithm choice for `coalᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceAlgo {
    /// First-partner fixpoint — exact list output, `O(n²)`.
    Fixpoint,
    /// Per-class sort-merge — `≡M` output (sdf input), `O(n log n)`.
    SortMerge,
}

/// Algorithm choice for `×ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductTAlgo {
    /// Left-major nested loop — exact list output, `O(n·m)`.
    NestedLoop,
    /// Endpoint plane sweep — `≡M` output, near `O(n log n + out)`.
    PlaneSweep,
}

/// Algorithm choice for `\ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferenceTAlgo {
    /// Count-timeline sweep — the reference semantics.
    TimelineSweep,
    /// Per-tuple subtract-union — `≡SM` output, requires an sdf left
    /// argument (ablation algorithm).
    SubtractUnion,
}

/// A physical operator tree. Parameters mirror
/// [`tqo_core::plan::PlanNode`]; the temporal operators carry their chosen
/// algorithm.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror `PlanNode`; the variants are documented
pub enum PhysicalNode {
    /// Read a named base relation.
    Scan { name: String },
    /// Filter rows by a predicate (`σ`).
    Select {
        input: Arc<PhysicalNode>,
        predicate: Expr,
    },
    /// Evaluate projection items per row (`π`).
    Project {
        input: Arc<PhysicalNode>,
        items: Vec<ProjItem>,
    },
    /// Bag union: left's rows, then right's (`∪all`).
    UnionAll {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Left-major Cartesian product (`×`).
    Product {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Multiset difference via a hash count table (`\`).
    Difference {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Hash-grouped aggregation (`ξ`).
    Aggregate {
        input: Arc<PhysicalNode>,
        group_by: Vec<String>,
        aggs: Vec<AggItem>,
    },
    /// Hash duplicate elimination (`rdup`).
    Rdup { input: Arc<PhysicalNode> },
    /// Set union keeping the larger multiplicity (`∪max`).
    UnionMax {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Stable sort (`sort`).
    Sort {
        input: Arc<PhysicalNode>,
        order: Order,
    },
    /// Temporal Cartesian product (`×ᵀ`) with its chosen algorithm.
    ProductT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
        algo: ProductTAlgo,
    },
    /// Temporal difference (`\ᵀ`) with its chosen algorithm.
    DifferenceT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
        algo: DifferenceTAlgo,
    },
    /// Temporal aggregation over constant intervals (`ξᵀ`).
    AggregateT {
        input: Arc<PhysicalNode>,
        group_by: Vec<String>,
        aggs: Vec<AggItem>,
    },
    /// Temporal duplicate elimination (`rdupᵀ`) with its chosen algorithm.
    RdupT {
        input: Arc<PhysicalNode>,
        algo: RdupTAlgo,
    },
    /// Temporal union (`∪ᵀ`).
    UnionT {
        left: Arc<PhysicalNode>,
        right: Arc<PhysicalNode>,
    },
    /// Period coalescing (`coalᵀ`) with its chosen algorithm.
    Coalesce {
        input: Arc<PhysicalNode>,
        algo: CoalesceAlgo,
    },
    /// DBMS→stratum transfer: executes as identity but is metered (rows
    /// moved).
    TransferS { input: Arc<PhysicalNode> },
    /// Stratum→DBMS transfer: executes as identity but is metered.
    TransferD { input: Arc<PhysicalNode> },
}

impl PhysicalNode {
    /// Operator label including the algorithm, for metrics and EXPLAIN.
    pub fn label(&self) -> String {
        match self {
            PhysicalNode::Scan { name } => format!("scan({name})"),
            PhysicalNode::Select { .. } => "select".into(),
            PhysicalNode::Project { .. } => "project".into(),
            PhysicalNode::UnionAll { .. } => "union-all".into(),
            PhysicalNode::Product { .. } => "product".into(),
            PhysicalNode::Difference { .. } => "difference".into(),
            PhysicalNode::Aggregate { .. } => "aggregate".into(),
            PhysicalNode::Rdup { .. } => "rdup[hash]".into(),
            PhysicalNode::UnionMax { .. } => "union-max".into(),
            PhysicalNode::Sort { .. } => "sort[stable]".into(),
            PhysicalNode::ProductT { algo, .. } => format!("product-t[{algo:?}]"),
            PhysicalNode::DifferenceT { algo, .. } => format!("difference-t[{algo:?}]"),
            PhysicalNode::AggregateT { .. } => "aggregate-t[sweep]".into(),
            PhysicalNode::RdupT { algo, .. } => format!("rdup-t[{algo:?}]"),
            PhysicalNode::UnionT { .. } => "union-t".into(),
            PhysicalNode::Coalesce { algo, .. } => format!("coalesce[{algo:?}]"),
            PhysicalNode::TransferS { .. } => "transfer-s".into(),
            PhysicalNode::TransferD { .. } => "transfer-d".into(),
        }
    }

    /// The node's children, unary inputs first.
    pub fn children(&self) -> Vec<&Arc<PhysicalNode>> {
        match self {
            PhysicalNode::Scan { .. } => vec![],
            PhysicalNode::Select { input, .. }
            | PhysicalNode::Project { input, .. }
            | PhysicalNode::Aggregate { input, .. }
            | PhysicalNode::Rdup { input }
            | PhysicalNode::Sort { input, .. }
            | PhysicalNode::AggregateT { input, .. }
            | PhysicalNode::RdupT { input, .. }
            | PhysicalNode::Coalesce { input, .. }
            | PhysicalNode::TransferS { input }
            | PhysicalNode::TransferD { input } => vec![input],
            PhysicalNode::UnionAll { left, right }
            | PhysicalNode::Product { left, right }
            | PhysicalNode::Difference { left, right }
            | PhysicalNode::UnionMax { left, right }
            | PhysicalNode::ProductT { left, right, .. }
            | PhysicalNode::DifferenceT { left, right, .. }
            | PhysicalNode::UnionT { left, right } => vec![left, right],
        }
    }

    /// Number of operators in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }
}

/// A rooted physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The root operator.
    pub root: Arc<PhysicalNode>,
    /// Estimated output rows per node in post-order (the order both
    /// engines emit [`crate::metrics::OperatorMetrics`]), from the
    /// optimizer's `DerivedStats`. Empty for hand-built plans; the
    /// executors then report no estimates.
    pub estimates: Vec<Option<u64>>,
}

impl PhysicalPlan {
    /// A plan rooted at `root`, with no estimates attached.
    pub fn new(root: PhysicalNode) -> PhysicalPlan {
        PhysicalPlan {
            root: Arc::new(root),
            estimates: Vec::new(),
        }
    }

    /// Attach post-order per-node row estimates (see [`PhysicalPlan::estimates`]).
    pub fn with_estimates(mut self, estimates: Vec<Option<u64>>) -> PhysicalPlan {
        self.estimates = estimates;
        self
    }

    /// Textual EXPLAIN of the physical tree.
    pub fn explain(&self) -> String {
        fn render(node: &PhysicalNode, indent: usize, out: &mut String) {
            out.push_str(&"  ".repeat(indent));
            out.push_str(&node.label());
            out.push('\n');
            for c in node.children() {
                render(c, indent + 1, out);
            }
        }
        let mut out = String::new();
        render(&self.root, 0, &mut out);
        out
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_include_algorithms() {
        let scan = Arc::new(PhysicalNode::Scan { name: "R".into() });
        let n = PhysicalNode::RdupT {
            input: scan,
            algo: RdupTAlgo::Sweep,
        };
        assert_eq!(n.label(), "rdup-t[Sweep]");
        assert_eq!(n.size(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let scan = Arc::new(PhysicalNode::Scan { name: "R".into() });
        let plan = PhysicalPlan::new(PhysicalNode::Coalesce {
            input: Arc::new(PhysicalNode::RdupT {
                input: scan,
                algo: RdupTAlgo::Faithful,
            }),
            algo: CoalesceAlgo::SortMerge,
        });
        let text = plan.explain();
        assert!(text.contains("coalesce[SortMerge]"));
        assert!(text.contains("  rdup-t[Faithful]"));
        assert!(text.contains("    scan(R)"));
    }
}
