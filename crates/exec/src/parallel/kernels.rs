//! Parallel operator kernels: partitioned hash operators, parallel sort,
//! and the per-class temporal kernels over class chunks.
//!
//! Every kernel is **list-exact** against its serial counterpart in
//! [`crate::batch::kernels`] / the row operators: same rows, same order,
//! at any thread count. The recipes:
//!
//! * *partitioned grouping* ([`super::classindex::ParClassIndex`]) —
//!   rdup, aggregation, and the class-forming temporal kernels hash in
//!   parallel over disjoint key partitions and merge class lists back
//!   into global first-occurrence order;
//! * *chunked per-class work* — once classes exist, the per-class sweeps
//!   (`rdupᵀ`, `coalᵀ`, timeline `\ᵀ`) are embarrassingly parallel over
//!   contiguous class ranges, concatenated in class order;
//! * *partition-then-merge sort* — workers stable-sort contiguous runs,
//!   a merge picks by `(key, original index)`, which *is* the serial
//!   stable order.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

use tqo_core::columnar::{Column, ColumnarRelation};
use tqo_core::error::{Error, Result};
use tqo_core::expr::{AggFunc, AggItem};
use tqo_core::schema::Schema;
use tqo_core::sortspec::Order;
use tqo_core::time::{normalize_periods, CountTimeline, Period};
use tqo_core::Value;

use crate::batch::hash::radix_scatter;
use crate::batch::kernels::{coalesce_class, SortKeys};

use super::assemble::{fragments_parallel, gather_relation};
use super::classindex::{hash_rows_parallel, ParClassIndex};
use super::morsel::{for_each_part, for_each_range_mut, map_tasks, WorkerPool};

/// Contiguous ranges splitting `total` items one-per-worker.
pub(crate) fn chunk_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let c = total.div_ceil(parts.max(1));
    (0..total.div_ceil(c))
        .map(|i| i * c..((i + 1) * c).min(total))
        .collect()
}

/// Parallel hash `rdup`: partitioned distinct detection; the merged
/// prototype list *is* the first-occurrence row set, ascending — exactly
/// the rows the streaming serial operator keeps.
pub fn rdup_parallel(
    input: &ColumnarRelation,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> ColumnarRelation {
    let key_idx: Vec<usize> = (0..input.schema().arity()).collect();
    let cidx = ParClassIndex::build_with(input, key_idx, pool, super::classindex::Track::Protos);
    gather_relation(input, out_schema, cidx.protos(), pool)
}

/// Parallel hash multiset difference: the right side is built into a
/// partitioned count table; left rows then stream through in row order
/// consuming counts (their hashes precomputed in parallel), so the
/// earliest occurrences are the ones removed, as in the serial engines.
pub fn difference_parallel(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> ColumnarRelation {
    let key_idx: Vec<usize> = (0..left.schema().arity()).collect();
    let ridx = ParClassIndex::build_with(
        right,
        key_idx.clone(),
        pool,
        super::classindex::Track::Counts,
    );
    let mut remaining: Vec<i64> = (0..ridx.len()).map(|c| ridx.count(c)).collect();
    let hashes = hash_rows_parallel(left.columns(), &key_idx, left.rows(), pool);
    let mut kept = Vec::with_capacity(left.rows());
    for (row, &h) in hashes.iter().enumerate() {
        match ridx.find_hashed(h, left.columns(), row) {
            Some(g) if remaining[g as usize] > 0 => remaining[g as usize] -= 1,
            _ => kept.push(row as u32),
        }
    }
    gather_relation(left, out_schema, &kept, pool)
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Combinable accumulator state for one aggregate over one partition's
/// local classes. Each class is owned by exactly one partition and its
/// members are visited in row order, so per-class accumulation — floating
/// point included — follows the exact same addition order as the serial
/// kernel.
enum AggState {
    /// `COUNT` per class.
    Count(Vec<i64>),
    /// `MIN`/`MAX`: best member row per class (`u32::MAX` = none seen);
    /// strict comparisons keep the earliest row on ties.
    Best(Vec<u32>),
    /// `SUM` with the serial kernel's int/float promotion per class.
    Sum {
        acc_i: Vec<i64>,
        acc_f: Vec<f64>,
        any: Vec<bool>,
        float: Vec<bool>,
    },
    /// `AVG`: running float sum and non-null count per class.
    Avg { sum: Vec<f64>, n: Vec<usize> },
}

fn accumulate_partition(
    input: &ColumnarRelation,
    cidx: &ParClassIndex,
    part: usize,
    aggs: &[AggItem],
) -> Result<Vec<AggState>> {
    let locals = cidx.local_len(part);
    let mut states = Vec::with_capacity(aggs.len());
    for agg in aggs {
        let arg = match &agg.arg {
            Some(a) => Some(input.schema().resolve(a)?),
            None => None,
        };
        let state = match agg.func {
            AggFunc::Count => {
                let mut n = vec![0i64; locals];
                match arg {
                    None => {
                        for (l, count) in n.iter_mut().enumerate() {
                            *count = cidx.local_members(part, l).len() as i64;
                        }
                    }
                    Some(c) => {
                        let col = input.column(c);
                        for (l, count) in n.iter_mut().enumerate() {
                            for &row in cidx.local_members(part, l) {
                                if !col.is_null(row as usize) {
                                    *count += 1;
                                }
                            }
                        }
                    }
                }
                AggState::Count(n)
            }
            AggFunc::Min | AggFunc::Max => {
                let col = input.column(arg.expect("validated by output_type"));
                let min = agg.func == AggFunc::Min;
                let mut best = vec![u32::MAX; locals];
                for (l, slot) in best.iter_mut().enumerate() {
                    for &row in cidx.local_members(part, l) {
                        let row = row as usize;
                        if col.is_null(row) {
                            continue;
                        }
                        let keep_new = *slot == u32::MAX || {
                            let ord = col.cmp_at(row, col, *slot as usize);
                            if min {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            }
                        };
                        if keep_new {
                            *slot = row as u32;
                        }
                    }
                }
                AggState::Best(best)
            }
            AggFunc::Sum => {
                let col = input.column(arg.expect("validated by output_type"));
                let mut acc_i = vec![0i64; locals];
                let mut acc_f = vec![0.0f64; locals];
                let mut any = vec![false; locals];
                let mut float = vec![false; locals];
                for l in 0..locals {
                    for &row in cidx.local_members(part, l) {
                        match col.value(row as usize) {
                            Value::Null => {}
                            Value::Int(v) | Value::Time(v) => {
                                acc_i[l] += v;
                                acc_f[l] += v as f64;
                                any[l] = true;
                            }
                            Value::Float(v) => {
                                acc_f[l] += v;
                                float[l] = true;
                                any[l] = true;
                            }
                            other => {
                                return Err(Error::TypeError {
                                    expected: "numeric",
                                    found: other.to_string(),
                                    context: "SUM",
                                })
                            }
                        }
                    }
                }
                AggState::Sum {
                    acc_i,
                    acc_f,
                    any,
                    float,
                }
            }
            AggFunc::Avg => {
                let col = input.column(arg.expect("validated by output_type"));
                let mut sum = vec![0.0f64; locals];
                let mut n = vec![0usize; locals];
                for l in 0..locals {
                    for &row in cidx.local_members(part, l) {
                        let v = col.value(row as usize);
                        if v.is_null() {
                            continue;
                        }
                        sum[l] += v.as_float()?;
                        n[l] += 1;
                    }
                }
                AggState::Avg { sum, n }
            }
        };
        states.push(state);
    }
    Ok(states)
}

/// Parallel hash-grouped aggregation, list-exact against
/// [`crate::batch::kernels::aggregate`]: partitioned class build,
/// per-partition accumulation over disjoint groups (each group's values
/// folded in row order), emission in global first-occurrence group order.
pub fn aggregate_parallel(
    input: &ColumnarRelation,
    group_by: &[String],
    aggs: &[AggItem],
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> Result<ColumnarRelation> {
    if group_by.is_empty() {
        // Grand totals are a single group — nothing to partition.
        return crate::batch::kernels::aggregate(input, group_by, aggs, out_schema);
    }
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema().resolve(g))
        .collect::<Result<_>>()?;
    let cidx = ParClassIndex::build(input, key_idx.clone(), pool);

    let nparts = cidx.part_count();
    let mut states: Vec<Result<Vec<AggState>>> = (0..nparts).map(|_| Ok(Vec::new())).collect();
    for_each_part(pool, &mut states, |p, slot| {
        *slot = accumulate_partition(input, &cidx, p, aggs);
    });
    let mut part_states = Vec::with_capacity(nparts);
    for s in states {
        part_states.push(s?);
    }

    let groups = cidx.len();
    let key_cols: Vec<Arc<Column>> = map_tasks(pool, key_idx.len(), |k| {
        Arc::new(input.column(key_idx[k]).gather(cidx.protos()))
    });
    let mut columns: Vec<Arc<Column>> = key_cols;
    for (k, agg) in aggs.iter().enumerate() {
        let dtype = agg.output_type(input.schema())?;
        let arg_col = match &agg.arg {
            Some(a) => Some(input.column(input.schema().resolve(a)?)),
            None => None,
        };
        let mut out = Column::with_capacity(dtype, groups);
        for c in 0..groups {
            let (p, l) = cidx.class_location(c);
            match &part_states[p][k] {
                AggState::Count(n) => out.push(&Value::Int(n[l]))?,
                AggState::Best(best) => {
                    let b = best[l];
                    if b == u32::MAX {
                        out.push(&Value::Null)?;
                    } else {
                        out.push_from(arg_col.expect("min/max has an argument"), b as usize);
                    }
                }
                AggState::Sum {
                    acc_i,
                    acc_f,
                    any,
                    float,
                } => {
                    let v = if !any[l] {
                        Value::Null
                    } else if float[l] {
                        Value::Float(acc_f[l])
                    } else {
                        Value::Int(acc_i[l])
                    };
                    out.push(&v)?;
                }
                AggState::Avg { sum, n } => {
                    let v = if n[l] == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum[l] / n[l] as f64)
                    };
                    out.push(&v)?;
                }
            }
        }
        columns.push(Arc::new(out));
    }
    Ok(ColumnarRelation::new(out_schema, columns))
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

/// Parallel partition-then-merge stable sort permutation, identical to
/// [`crate::batch::kernels::sort_indices`]: workers stable-sort contiguous
/// runs, then a merge picks the smallest head by `(sort key, original
/// index)` — which is precisely the serial stable order.
///
/// Runs sort through the same prefix-assisted [`SortKeys`] kernel as the
/// serial engine (one `u64` prefix per row settles most comparisons), and
/// the merge compares via its `cmp` — so the serial and parallel sorts
/// share one definition of the sort order.
pub fn sort_indices_parallel(
    input: &ColumnarRelation,
    order: &Order,
    pool: &WorkerPool,
) -> Result<Vec<u32>> {
    let keys = SortKeys::new(input, order)?;
    let n = input.rows();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if pool.threads() == 1 || n < super::MORSEL_SIZE {
        keys.sort(&mut idx);
        return Ok(idx);
    }
    // Workers sort the exact runs the merge below walks — one set of
    // boundaries, passed explicitly, so the two cannot drift apart.
    // The merge is a serial scan over all run heads per pick: O(n·T)
    // comparator calls, acceptable at pool widths (T ≤ ~16); a loser
    // tree would be the upgrade path if wide pools ever make it hot.
    let runs = chunk_ranges(n, pool.threads());
    let keys_ref = &keys;
    for_each_range_mut(pool, &mut idx, &runs, |_, run| {
        keys_ref.sort(run);
    });
    let mut heads: Vec<usize> = runs.iter().map(|r| r.start).collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, u32)> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] < run.end {
                let cand = idx[heads[r]];
                let better = match best {
                    None => true,
                    // Ties on the sort key fall back to the original
                    // index: lower index first = stability.
                    Some((_, b)) => keys.cmp(cand, b).then(cand.cmp(&b)) == Ordering::Less,
                };
                if better {
                    best = Some((r, cand));
                }
            }
        }
        let (r, v) = best.expect("n picks from n items");
        heads[r] += 1;
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Per-class temporal kernels
// ---------------------------------------------------------------------------

/// Per-chunk emission buffers of the class-parallel temporal kernels.
type ClassEmit = (Vec<u32>, Vec<i64>, Vec<i64>);

fn concat_emits(parts: Vec<ClassEmit>) -> ClassEmit {
    let total: usize = parts.iter().map(|(p, _, _)| p.len()).sum();
    let mut protos = Vec::with_capacity(total);
    let mut t1 = Vec::with_capacity(total);
    let mut t2 = Vec::with_capacity(total);
    for (p, a, b) in parts {
        protos.extend_from_slice(&p);
        t1.extend_from_slice(&a);
        t2.extend_from_slice(&b);
    }
    (protos, t1, t2)
}

/// Parallel sweep `rdupᵀ`: partitioned class build, then per-class period
/// union over contiguous class chunks, concatenated in class order —
/// list-exact against [`crate::batch::kernels::rdup_t_sweep`].
pub fn rdup_t_sweep_parallel(
    input: &ColumnarRelation,
    pool: &WorkerPool,
) -> Result<ColumnarRelation> {
    let (s, e) = input.period_columns()?;
    let cidx = ParClassIndex::build(input, input.schema().value_indices(), pool);
    let chunks = chunk_ranges(cidx.len(), pool.threads());
    let parts = map_tasks(pool, chunks.len(), |k| {
        let mut out: ClassEmit = Default::default();
        for c in chunks[k].clone() {
            let periods: Vec<Period> = cidx
                .members(c)
                .iter()
                .map(|&i| Period::of(s[i as usize], e[i as usize]))
                .collect();
            let proto = cidx.protos()[c];
            for p in normalize_periods(periods) {
                out.0.push(proto);
                out.1.push(p.start);
                out.2.push(p.end);
            }
        }
        out
    });
    let (protos, t1, t2) = concat_emits(parts);
    Ok(fragments_parallel(
        input,
        input.schema().clone(),
        &protos,
        &t1,
        &t2,
        pool,
    ))
}

/// Parallel sort-merge `coalᵀ` — list-exact against
/// [`crate::batch::kernels::coalesce_sort_merge`] (the per-class merge is
/// literally the same function).
pub fn coalesce_parallel(input: &ColumnarRelation, pool: &WorkerPool) -> Result<ColumnarRelation> {
    let (s, e) = input.period_columns()?;
    let cidx = ParClassIndex::build(input, input.schema().value_indices(), pool);
    let chunks = chunk_ranges(cidx.len(), pool.threads());
    let parts = map_tasks(pool, chunks.len(), |k| {
        let mut out: ClassEmit = Default::default();
        for c in chunks[k].clone() {
            let periods: Vec<Period> = cidx
                .members(c)
                .iter()
                .map(|&i| Period::of(s[i as usize], e[i as usize]))
                .collect();
            let proto = cidx.protos()[c];
            for p in coalesce_class(periods) {
                out.0.push(proto);
                out.1.push(p.start);
                out.2.push(p.end);
            }
        }
        out
    });
    let (protos, t1, t2) = concat_emits(parts);
    Ok(fragments_parallel(
        input,
        input.schema().clone(),
        &protos,
        &t1,
        &t2,
        pool,
    ))
}

/// Parallel timeline `\ᵀ`: partitioned class build over the left side,
/// right rows routed to their class per partition (disjoint writes), then
/// per-class count timelines over class chunks — list-exact against
/// [`crate::batch::kernels::difference_t`].
pub fn difference_t_parallel(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> Result<ColumnarRelation> {
    left.schema()
        .check_union_compatible(right.schema(), "temporal difference")?;
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let cidx = ParClassIndex::build(left, left.schema().value_indices(), pool);

    // Route right rows to their left class, one worker per partition. A
    // stable radix scatter hands each worker just its own rows (ascending,
    // so per-class lists keep row order) instead of every worker
    // re-scanning the full right hash array.
    let rhashes = hash_rows_parallel(right.columns(), cidx.key_idx(), right.rows(), pool);
    let (roffsets, rids) = radix_scatter(&rhashes, cidx.part_count());
    let (roffsets, rids) = (&roffsets, &rids);
    let mut rmatch: Vec<Vec<Vec<u32>>> = (0..cidx.part_count())
        .map(|p| vec![Vec::new(); cidx.local_len(p)])
        .collect();
    for_each_part(pool, &mut rmatch, |p, lists| {
        for &j in &rids[roffsets[p] as usize..roffsets[p + 1] as usize] {
            let h = rhashes[j as usize];
            if let Some(l) = cidx.find_local(p, h, right.columns(), j as usize) {
                lists[l as usize].push(j);
            }
        }
    });

    let chunks = chunk_ranges(cidx.len(), pool.threads());
    let parts = map_tasks(pool, chunks.len(), |k| {
        let mut out: ClassEmit = Default::default();
        for c in chunks[k].clone() {
            let (p, l) = cidx.class_location(c);
            let mut tl = CountTimeline::new();
            // Same add order as the serial kernel: left members in row
            // order, then matching right rows in row order.
            for &i in cidx.members(c) {
                tl.add(Period::of(ls[i as usize], le[i as usize]), 1);
            }
            for &j in &rmatch[p][l] {
                tl.add(Period::of(rs[j as usize], re[j as usize]), -1);
            }
            let proto = cidx.protos()[c];
            for (period, count) in tl.constant_intervals() {
                for _ in 0..count.max(0) {
                    out.0.push(proto);
                    out.1.push(period.start);
                    out.2.push(period.end);
                }
            }
        }
        out
    });
    let (protos, t1, t2) = concat_emits(parts);
    Ok(fragments_parallel(
        left, out_schema, &protos, &t1, &t2, pool,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::relation::Relation;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    use crate::batch::kernels;

    fn cr(r: &Relation) -> ColumnarRelation {
        ColumnarRelation::from_relation(r).unwrap()
    }

    fn dup_heavy(rows: usize) -> ColumnarRelation {
        let r = Relation::new(
            Schema::of(&[
                ("A", DataType::Int),
                ("B", DataType::Str),
                ("D", DataType::Float),
            ]),
            (0..rows as i64)
                .map(|i| tuple![i % 23, format!("s{}", i % 7), (i % 13) as f64 * 0.25])
                .collect(),
        )
        .unwrap();
        cr(&r)
    }

    fn temporal(rows: usize) -> ColumnarRelation {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            (0..rows as i64)
                .map(|i| tuple![format!("v{}", i % 17), i % 29, i % 29 + 1 + (i % 5)])
                .collect(),
        )
        .unwrap();
        cr(&r)
    }

    #[test]
    fn rdup_matches_serial_first_occurrence_order() {
        let input = dup_heavy(3000);
        let serial_classes = kernels::ClassIndex::build(&input, (0..3).collect());
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let got = rdup_parallel(&input, input.schema().clone(), &pool);
            assert_eq!(got.rows(), serial_classes.len());
            assert_eq!(
                got.to_relation(),
                gather_relation(
                    &input,
                    input.schema().clone(),
                    &serial_classes.protos,
                    &pool
                )
                .to_relation(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn aggregate_matches_serial_kernel_exactly() {
        let input = dup_heavy(3000);
        let group = ["A".to_owned(), "B".to_owned()];
        let aggs = [
            AggItem::count_star("n"),
            AggItem::new(AggFunc::Sum, Some("D"), "s"),
            AggItem::new(AggFunc::Min, Some("D"), "lo"),
            AggItem::new(AggFunc::Max, Some("A"), "hi"),
            AggItem::new(AggFunc::Avg, Some("D"), "avg"),
        ];
        let out_schema = Arc::new(
            tqo_core::ops::aggregate::aggregate_schema(input.schema(), &group, &aggs).unwrap(),
        );
        let want = kernels::aggregate(&input, &group, &aggs, out_schema.clone())
            .unwrap()
            .to_relation();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let got = aggregate_parallel(&input, &group, &aggs, out_schema.clone(), &pool)
                .unwrap()
                .to_relation();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn sort_matches_serial_stable_sort() {
        let input = dup_heavy(5000);
        let order = Order::asc(&["A", "B"]);
        let want = kernels::sort_indices(&input, &order).unwrap();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let got = sort_indices_parallel(&input, &order, &pool).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn temporal_kernels_match_serial_kernels_exactly() {
        let l = temporal(2500);
        let r = temporal(900);
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            assert_eq!(
                rdup_t_sweep_parallel(&l, &pool).unwrap().to_relation(),
                kernels::rdup_t_sweep(&l).unwrap().to_relation(),
                "rdupT threads={threads}"
            );
            assert_eq!(
                coalesce_parallel(&l, &pool).unwrap().to_relation(),
                kernels::coalesce_sort_merge(&l).unwrap().to_relation(),
                "coalT threads={threads}"
            );
            assert_eq!(
                difference_t_parallel(&l, &r, l.schema().clone(), &pool)
                    .unwrap()
                    .to_relation(),
                kernels::difference_t(&l, &r, l.schema().clone())
                    .unwrap()
                    .to_relation(),
                "diffT threads={threads}"
            );
        }
    }

    #[test]
    fn difference_consumes_earliest_occurrences() {
        let l = dup_heavy(2000);
        let r = dup_heavy(700);
        let want = tqo_core::ops::difference(&l.to_relation(), &r.to_relation()).unwrap();
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let got = difference_parallel(&l, &r, l.schema().clone(), &pool).to_relation();
            assert_eq!(got, want, "threads={threads}");
        }
    }
}
