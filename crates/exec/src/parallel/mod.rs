//! The morsel-driven parallel execution engine
//! ([`crate::executor::ExecMode::Parallel`]).
//!
//! The third engine executes the same physical plans as the row walk and
//! the batch pipeline, with intra-operator parallelism on a small
//! in-process worker pool ([`morsel::WorkerPool`]):
//!
//! * base-table scans are zero-copy views of the environment's cached
//!   columnar transpose, split into fixed-size **morsels**
//!   ([`morsel::MORSEL_SIZE`] rows) that workers pull dynamically;
//! * streaming stages (select, computed projections) run per morsel and
//!   reassemble in morsel order;
//! * the hash operators (`rdup`, grouped aggregation, `\`) build
//!   **partitioned** linear-probe tables — the key space is split by
//!   hash, one private partition per worker — and a cheap merge step
//!   restores global first-occurrence order
//!   ([`classindex::ParClassIndex`]);
//! * sort is partition-then-merge ([`kernels::sort_indices_parallel`]),
//!   and its permutation also feeds the sort-based temporal kernels;
//! * the plane-sweep `×ᵀ` is partitioned along the sorted event sequence
//!   ([`sweep`]), the per-class temporal kernels (`rdupᵀ`, `coalᵀ`,
//!   timeline `\ᵀ`) over class chunks ([`kernels`]);
//! * operators whose faithful algorithms are inherently sequential (the
//!   paper's head/tail recursions, `ξᵀ`, `∪ᵀ`, `∪`) run the shared row
//!   implementations behind the same materialize boundary the batch
//!   engine uses, so every physical plan executes under all three
//!   engines.
//!
//! **The engine-equality invariant:** for any one physical plan,
//! row ≡ batch ≡ parallel — equal (`==`) relations — at *any* thread
//! count. Every operator here ends at an exchange/merge boundary that
//! reassembles results in a canonical order (morsel order, global
//! first-occurrence class order, event order), so parallelism is never
//! observable in the output. `tests/parallel_agrees.rs` holds the engine
//! to this across the full fixture pools at 1, 2, 4, and 8 threads.

pub mod assemble;
pub mod classindex;
pub mod kernels;
pub mod morsel;
pub mod sched;
pub mod stage;
pub mod sweep;

pub use morsel::{WorkerPool, MORSEL_SIZE};
pub use sched::{QueryHandle, Scheduler, SchedulerConfig, SubmitOptions};
pub use stage::{Stage, StageGraph};

use std::sync::Arc;
use std::time::Instant;

use tqo_core::columnar::{Column, ColumnarRelation};
use tqo_core::context;
use tqo_core::error::{Error, Result};
use tqo_core::expr::Expr;
use tqo_core::interp::Env;
use tqo_core::ops;
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::trace::{self, Category};
use tqo_core::tuple::Tuple;

use crate::batch::pipeline::{demoted, require_temporal};
use crate::batch::{exprs, Batch};
use crate::metrics::{ExecMetrics, OperatorMetrics};
use crate::physical::{
    CoalesceAlgo, DifferenceTAlgo, PhysicalNode, PhysicalPlan, ProductTAlgo, RdupTAlgo,
};

use morsel::{for_each_chunk_mut, morsels_of, try_map_morsels};

/// Execute a physical plan with the morsel-parallel engine on `threads`
/// workers (clamped to at least one). Produces a relation equal (`==`) to
/// the row and batch engines' output for the same plan.
pub fn execute_parallel(
    plan: &PhysicalPlan,
    env: &Env,
    threads: usize,
) -> Result<(Relation, ExecMetrics)> {
    let pool = WorkerPool::new(threads);
    let mut metrics = ExecMetrics::default();
    let (out, _reserved) = run_node(&plan.root, env, &pool, &mut metrics)?;
    Ok((out.to_relation(), metrics))
}

/// Post-order evaluation: children fully materialize before the parent's
/// timer starts, so each operator's `elapsed` is exclusive wall-clock by
/// construction and the per-thread busy times drained from the pool
/// belong to this operator alone.
fn run_node(
    node: &PhysicalNode,
    env: &Env,
    pool: &WorkerPool,
    metrics: &mut ExecMetrics,
) -> Result<(ColumnarRelation, Option<context::Reservation>)> {
    // Per-operator governance checkpoint (cancellation/deadline); the
    // morsel layer additionally polls per dispatched morsel.
    context::check_current()?;
    // Child outputs and their budget reservations stay live until this
    // node's own output has been materialized and charged.
    let mut children = Vec::with_capacity(node.children().len());
    for c in node.children() {
        children.push(run_node(c, env, pool, metrics)?);
    }
    let inputs: Vec<ColumnarRelation> = children.iter().map(|(r, _res)| r.clone()).collect();
    let rows_in = inputs.iter().map(ColumnarRelation::rows).sum();

    let mut span = trace::span_with(Category::Exec, || node.label());
    let started = Instant::now();
    pool.take_times(); // drop any residue, this operator starts clean
    let (out, batches) = apply(node, env, &inputs, pool)?;
    // Charge the materialized output; scans share the cached transpose.
    let reserved = match node {
        PhysicalNode::Scan { .. } => None,
        _ => context::reserve_current(out.approx_bytes())?,
    };
    let elapsed = started.elapsed();
    span.note_with(|| {
        format!(
            "\"rows_in\": {rows_in}, \"rows_out\": {}, \"morsels\": {batches}",
            out.rows()
        )
    });
    drop(span);
    metrics.operators.push(OperatorMetrics {
        label: node.label(),
        rows_in,
        rows_out: out.rows(),
        est_rows: None,
        batches,
        elapsed,
        thread_times: pool.take_times(),
    });
    Ok((out, reserved))
}

/// Materialize one logical row of a batch as a row-layout tuple (slow
/// paths only: predicate/projection fallbacks).
fn row_tuple(batch: &Batch, phys: usize) -> Tuple {
    Tuple::new(batch.columns().iter().map(|c| c.value(phys)).collect())
}

/// Run one operator over materialized inputs; returns the output and the
/// number of morsels processed (1 for serial paths).
fn apply(
    node: &PhysicalNode,
    env: &Env,
    inputs: &[ColumnarRelation],
    pool: &WorkerPool,
) -> Result<(ColumnarRelation, usize)> {
    Ok(match node {
        PhysicalNode::Scan { name } => {
            let table = env.columnar(name)?;
            let batches = morsels_of(table.rows()).len().max(1);
            ((*table).clone(), batches)
        }
        PhysicalNode::Select { predicate, .. } => {
            let input = &inputs[0];
            let schema = input.schema().clone();
            let compiled = exprs::compile(predicate, &schema);
            let morsels = morsels_of(input.rows()).len();
            let kept_parts = try_map_morsels(pool, input.rows(), |_, rows| {
                let batch = Batch::slice(input, rows.start, rows.end);
                match &compiled {
                    Some(pred) => Ok(exprs::filter(pred, &batch)),
                    None => {
                        let mut kept = Vec::new();
                        for i in batch.rows() {
                            let t = row_tuple(&batch, i);
                            if predicate.eval_predicate(&schema, &t)? {
                                kept.push(i as u32);
                            }
                        }
                        Ok(kept)
                    }
                }
            })?;
            let kept: Vec<u32> = kept_parts.concat();
            (
                assemble::gather_relation(input, schema, &kept, pool),
                morsels.max(1),
            )
        }
        PhysicalNode::Project { items, .. } => {
            let input = &inputs[0];
            if items.is_empty() {
                return Err(Error::Plan {
                    reason: "projection needs at least one item".into(),
                });
            }
            let child_schema = input.schema().clone();
            let out_schema = Arc::new(ops::project::project_schema(&child_schema, items)?);
            let col_refs: Option<Vec<usize>> = items
                .iter()
                .map(|item| match &item.expr {
                    Expr::Col(name) => child_schema.index_of(name),
                    _ => None,
                })
                .collect();
            let validate = out_schema.is_temporal() && !ops::project::periods_passthrough(items);
            match col_refs {
                Some(indices) if !validate => {
                    // Pure column references: reuse the input's column
                    // `Arc`s under the new schema, zero row copies.
                    let columns = indices.iter().map(|&i| input.column(i).clone()).collect();
                    (ColumnarRelation::new(out_schema, columns), 1)
                }
                maybe_refs => {
                    let morsels = morsels_of(input.rows()).len();
                    let parts = try_map_morsels(pool, input.rows(), |_, rows| {
                        let batch = Batch::slice(input, rows.start, rows.end);
                        let out = match &maybe_refs {
                            Some(indices) => batch.project_columns(out_schema.clone(), indices),
                            None => {
                                // Computed items: densify tuple-major, as
                                // the serial engines do, so fallible items
                                // surface the same first error.
                                let mut columns: Vec<Column> = items
                                    .iter()
                                    .enumerate()
                                    .map(|(k, _)| {
                                        Column::with_capacity(
                                            out_schema.attr(k).dtype,
                                            batch.num_rows(),
                                        )
                                    })
                                    .collect();
                                for i in batch.rows() {
                                    let t = row_tuple(&batch, i);
                                    for (k, item) in items.iter().enumerate() {
                                        columns[k].push(&item.expr.eval(&child_schema, &t)?)?;
                                    }
                                }
                                Batch::from_columns(
                                    out_schema.clone(),
                                    columns.into_iter().map(Arc::new).collect(),
                                )
                            }
                        };
                        if validate {
                            validate_periods(&out, &out_schema)?;
                        }
                        Ok(out)
                    })?;
                    (crate::batch::concat(out_schema, &parts), morsels.max(1))
                }
            }
        }
        PhysicalNode::UnionAll { .. } => {
            let (left, right) = (&inputs[0], &inputs[1]);
            left.schema()
                .check_union_compatible(right.schema(), "union ALL")?;
            let schema = left.schema().clone();
            let total = left.rows() + right.rows();
            let columns = assemble::column_tasks(pool, schema.arity(), total, |c| {
                let mut out = Column::with_capacity(schema.attr(c).dtype, total);
                out.extend_range(left.column(c), 0, left.rows());
                out.extend_range(right.column(c), 0, right.rows());
                Arc::new(out)
            });
            (ColumnarRelation::new(schema, columns), 1)
        }
        PhysicalNode::Product { .. } => {
            let (left, right) = (&inputs[0], &inputs[1]);
            let out_schema = Arc::new(ops::product::product_schema(left.schema(), right.schema())?);
            let (n, m) = (left.rows(), right.rows());
            let total = n * m;
            let mut lidx = vec![0u32; total];
            let mut ridx = vec![0u32; total];
            if m > 0 {
                for_each_chunk_mut(pool, &mut lidx, |start, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = ((start + k) / m) as u32;
                    }
                });
                for_each_chunk_mut(pool, &mut ridx, |start, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = ((start + k) % m) as u32;
                    }
                });
            }
            let mut columns = assemble::gather_parallel(left.columns(), &lidx, pool);
            columns.extend(assemble::gather_parallel(right.columns(), &ridx, pool));
            (ColumnarRelation::new(out_schema, columns), 1)
        }
        PhysicalNode::Difference { .. } => {
            let (left, right) = (&inputs[0], &inputs[1]);
            left.schema()
                .check_union_compatible(right.schema(), "difference")?;
            let out_schema = demoted(left.schema());
            (
                kernels::difference_parallel(left, right, out_schema, pool),
                1,
            )
        }
        PhysicalNode::Aggregate { group_by, aggs, .. } => {
            let input = &inputs[0];
            if group_by.is_empty() && aggs.is_empty() {
                return Err(Error::Plan {
                    reason: "aggregation needs groups or aggregates".into(),
                });
            }
            let out_schema = Arc::new(ops::aggregate::aggregate_schema(
                input.schema(),
                group_by,
                aggs,
            )?);
            (
                kernels::aggregate_parallel(input, group_by, aggs, out_schema, pool)?,
                1,
            )
        }
        PhysicalNode::Rdup { .. } => {
            let input = &inputs[0];
            let out_schema = demoted(input.schema());
            (kernels::rdup_parallel(input, out_schema, pool), 1)
        }
        PhysicalNode::UnionMax { .. } => {
            inputs[0]
                .schema()
                .check_union_compatible(inputs[1].schema(), "union")?;
            (row_op(node, inputs)?, 1)
        }
        PhysicalNode::Sort { order, .. } => {
            let input = &inputs[0];
            let perm = kernels::sort_indices_parallel(input, order, pool)?;
            (
                assemble::gather_relation(input, input.schema().clone(), &perm, pool),
                1,
            )
        }
        PhysicalNode::Limit { limit, offset, .. } => {
            // The input is fully materialized (and deterministically
            // ordered) at this point: truncation is an index gather.
            let input = &inputs[0];
            let start = (*offset).min(input.rows());
            let end = match limit {
                Some(n) => start.saturating_add(*n).min(input.rows()),
                None => input.rows(),
            };
            let sel: Vec<u32> = (start..end).map(|i| i as u32).collect();
            (
                assemble::gather_relation(input, input.schema().clone(), &sel, pool),
                1,
            )
        }
        PhysicalNode::ProductT { algo, .. } => {
            let (left, right) = (&inputs[0], &inputs[1]);
            let out_schema = Arc::new(ops::temporal::product_t::product_t_schema(
                left.schema(),
                right.schema(),
            )?);
            let out = match algo {
                ProductTAlgo::NestedLoop => {
                    sweep::product_t_nested_parallel(left, right, out_schema, pool)?
                }
                ProductTAlgo::PlaneSweep => {
                    sweep::product_t_sweep_parallel(left, right, out_schema, pool)?
                }
            };
            (out, 1)
        }
        PhysicalNode::DifferenceT { algo, .. } => {
            let (left, right) = (&inputs[0], &inputs[1]);
            require_temporal(left.schema(), "temporal difference")?;
            require_temporal(right.schema(), "temporal difference")?;
            match algo {
                DifferenceTAlgo::TimelineSweep => (
                    kernels::difference_t_parallel(left, right, left.schema().clone(), pool)?,
                    1,
                ),
                DifferenceTAlgo::SubtractUnion => (row_op(node, inputs)?, 1),
            }
        }
        PhysicalNode::AggregateT { .. } => (row_op(node, inputs)?, 1),
        PhysicalNode::RdupT { algo, .. } => {
            let input = &inputs[0];
            require_temporal(input.schema(), "temporal duplicate elimination")?;
            match algo {
                RdupTAlgo::Sweep => (kernels::rdup_t_sweep_parallel(input, pool)?, 1),
                RdupTAlgo::Faithful => (row_op(node, inputs)?, 1),
            }
        }
        PhysicalNode::UnionT { .. } => {
            let (ls, rs) = (inputs[0].schema(), inputs[1].schema());
            require_temporal(ls, "temporal union")?;
            require_temporal(rs, "temporal union")?;
            ls.check_union_compatible(rs, "temporal union")?;
            (row_op(node, inputs)?, 1)
        }
        PhysicalNode::Coalesce { algo, .. } => {
            let input = &inputs[0];
            require_temporal(input.schema(), "coalescing")?;
            match algo {
                CoalesceAlgo::SortMerge => (kernels::coalesce_parallel(input, pool)?, 1),
                CoalesceAlgo::Fixpoint => (row_op(node, inputs)?, 1),
            }
        }
        PhysicalNode::TransferS { .. } | PhysicalNode::TransferD { .. } => (inputs[0].clone(), 1),
    })
}

/// Re-validate periods of a computed temporal projection (same check as
/// the batch pipeline's `ProjectOp`).
fn validate_periods(batch: &Batch, out_schema: &Schema) -> Result<()> {
    let (Some(i1), Some(i2)) = (out_schema.t1_index(), out_schema.t2_index()) else {
        return Ok(());
    };
    let (c1, c2) = (batch.column(i1), batch.column(i2));
    for i in batch.rows() {
        let start = c1.value(i).as_time()?;
        let end = c2.value(i).as_time()?;
        if start >= end {
            return Err(Error::InvalidPeriod { start, end });
        }
    }
    Ok(())
}

/// Materialize to row layout and run the shared row implementation — the
/// same compatibility path the batch pipeline uses for the inherently
/// row-oriented faithful algorithms, so all three engines agree by
/// construction.
fn row_op(node: &PhysicalNode, inputs: &[ColumnarRelation]) -> Result<ColumnarRelation> {
    let rels: Vec<Relation> = inputs.iter().map(ColumnarRelation::to_relation).collect();
    let result = crate::executor::apply_row_op(node, &rels)?;
    ColumnarRelation::from_relation(&result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::value::DataType;
    use tqo_core::Value;

    fn env() -> Env {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            (0..9000i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(format!("v{}", i % 40)),
                        Value::Time(i % 19),
                        Value::Time(i % 19 + 1 + (i % 3)),
                    ])
                })
                .collect(),
        )
        .unwrap();
        Env::new().with("R", r)
    }

    fn scan(name: &str) -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::Scan { name: name.into() })
    }

    #[test]
    fn matches_batch_engine_on_a_pipeline_at_every_width() {
        let e = env();
        let plan = PhysicalPlan::new(PhysicalNode::RdupT {
            input: Arc::new(PhysicalNode::Select {
                input: scan("R"),
                predicate: Expr::eq(Expr::col("E"), Expr::lit("v7")),
            }),
            algo: RdupTAlgo::Sweep,
        });
        let (batch, bm) = crate::batch::pipeline::execute_batch(&plan, &e).unwrap();
        for threads in [1, 2, 4, 8] {
            let (par, pm) = execute_parallel(&plan, &e, threads).unwrap();
            assert_eq!(par, batch, "threads={threads}");
            // Same post-order operator sequence as the serial engines.
            let pl: Vec<_> = pm.operators.iter().map(|o| o.label.clone()).collect();
            let bl: Vec<_> = bm.operators.iter().map(|o| o.label.clone()).collect();
            assert_eq!(pl, bl);
            assert_eq!(
                pm.operators.iter().map(|o| o.rows_out).collect::<Vec<_>>(),
                bm.operators.iter().map(|o| o.rows_out).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn thread_times_are_recorded_per_operator() {
        let e = env();
        let plan = PhysicalPlan::new(PhysicalNode::Sort {
            input: scan("R"),
            order: tqo_core::sortspec::Order::asc(&["E"]),
        });
        let (_, m) = execute_parallel(&plan, &e, 2).unwrap();
        let sort = m.operators.last().unwrap();
        assert_eq!(sort.label, "sort[stable]");
        assert!(!sort.thread_times.is_empty());
        assert!(sort.cpu_time() >= sort.thread_times[0]);
    }

    #[test]
    fn row_fallbacks_and_transfers_run_under_the_parallel_engine() {
        let e = env();
        let plan = PhysicalPlan::new(PhysicalNode::TransferS {
            input: Arc::new(PhysicalNode::Coalesce {
                input: Arc::new(PhysicalNode::RdupT {
                    input: scan("R"),
                    algo: RdupTAlgo::Faithful,
                }),
                algo: CoalesceAlgo::Fixpoint,
            }),
        });
        let (row, _) = crate::executor::execute_row(&plan, &e).unwrap();
        let (par, _) = execute_parallel(&plan, &e, 4).unwrap();
        assert_eq!(par, row);
    }
}
