//! Parallel temporal Cartesian product (`×ᵀ`).
//!
//! The fast algorithm is the endpoint plane sweep of
//! [`crate::batch::kernels::product_t_sweep`]. Its output is fully
//! determined by the *global event order* — both sides' periods sorted by
//! `(start, end)`, left before right on exact ties, original row order
//! within a side — because at each event the sweep emits every earlier,
//! overlapping opposite-side period in event order. That declarative view
//! is what makes the sweep parallelizable without changing a single
//! output row: sort the merged event sequence once (parallel
//! partition-then-merge sort on cheap integer keys), cut it into
//! contiguous event chunks, and let each worker replay the sweep over its
//! chunk after seeding its active lists with the earlier events that can
//! still overlap. Chunk outputs concatenate in event order — exactly the
//! serial emission order.
//!
//! The faithful nested-loop algorithm parallelizes trivially over left-row
//! morsels (its output is left-major).

use std::ops::Range;
use std::sync::Arc;

use tqo_core::columnar::ColumnarRelation;
use tqo_core::error::Result;
use tqo_core::schema::Schema;

use crate::batch::kernels;

use super::assemble::join_parallel;
use super::kernels::chunk_ranges;
use super::morsel::{for_each_range_mut, map_morsels, map_tasks, WorkerPool};

/// One sweep event: `(start, end, side, original row)`. The derived
/// lexicographic order is the serial sweep's processing order — `side` 0
/// (left) before 1 (right) on equal periods, row order within a side.
type Event = (i64, i64, u8, u32);

/// Per-chunk join emission: `(left rows, right rows, T1, T2)`.
type JoinEmit = (Vec<u32>, Vec<u32>, Vec<i64>, Vec<i64>);

fn concat_joins(parts: Vec<JoinEmit>) -> JoinEmit {
    let total: usize = parts.iter().map(|(l, _, _, _)| l.len()).sum();
    let mut out: JoinEmit = (
        Vec::with_capacity(total),
        Vec::with_capacity(total),
        Vec::with_capacity(total),
        Vec::with_capacity(total),
    );
    for (l, r, a, b) in parts {
        out.0.extend_from_slice(&l);
        out.1.extend_from_slice(&r);
        out.2.extend_from_slice(&a);
        out.3.extend_from_slice(&b);
    }
    out
}

/// Parallel partition-then-merge sort of the event sequence (total order,
/// so an unstable sort per run plus a strict merge is exact).
fn sort_events(events: &mut Vec<Event>, pool: &WorkerPool) {
    let n = events.len();
    if pool.threads() == 1 || n < super::MORSEL_SIZE {
        events.sort_unstable();
        return;
    }
    // Runs are sorted over the same explicit boundaries the merge walks.
    let runs = chunk_ranges(n, pool.threads());
    for_each_range_mut(pool, events, &runs, |_, run| run.sort_unstable());
    let mut heads: Vec<usize> = runs.iter().map(|r| r.start).collect();
    let mut merged = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, Event)> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] < run.end {
                let cand = events[heads[r]];
                if best.is_none_or(|(_, b)| cand < b) {
                    best = Some((r, cand));
                }
            }
        }
        let (r, v) = best.expect("n picks from n items");
        heads[r] += 1;
        merged.push(v);
    }
    *events = merged;
}

/// Replay the sweep over one contiguous chunk of the event sequence.
/// Active lists are seeded with every earlier event whose period can still
/// overlap the chunk (`end > first start`), in event order — the exact
/// state the serial sweep would hold entering this chunk, minus entries
/// that could only ever emit empty intersections.
fn sweep_chunk(events: &[Event], range: Range<usize>) -> JoinEmit {
    let mut out: JoinEmit = Default::default();
    if range.is_empty() {
        return out;
    }
    let first_s = events[range.start].0;
    let mut active_l: Vec<(i64, i64, u32)> = Vec::new();
    let mut active_r: Vec<(i64, i64, u32)> = Vec::new();
    for &(s, e, side, i) in &events[..range.start] {
        if e > first_s {
            if side == 0 {
                active_l.push((s, e, i));
            } else {
                active_r.push((s, e, i));
            }
        }
    }
    for &(s, e, side, i) in &events[range] {
        // Emission goes through the serial sweep's branch-free
        // `emit_overlaps` kernel: identical pair order, no per-pair branch.
        if side == 0 {
            active_r.retain(|&(_, rend, _)| rend > s);
            kernels::emit_overlaps(
                &active_r, s, e, i, true, &mut out.0, &mut out.1, &mut out.2, &mut out.3,
            );
            active_l.push((s, e, i));
        } else {
            active_l.retain(|&(_, lend, _)| lend > s);
            kernels::emit_overlaps(
                &active_l, s, e, i, false, &mut out.0, &mut out.1, &mut out.2, &mut out.3,
            );
            active_r.push((s, e, i));
        }
    }
    out
}

/// Parallel plane-sweep `×ᵀ`, list-exact against
/// [`crate::batch::kernels::product_t_sweep`] at any thread count.
pub fn product_t_sweep_parallel(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> Result<ColumnarRelation> {
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let mut events: Vec<Event> = Vec::with_capacity(left.rows() + right.rows());
    for i in 0..left.rows() {
        events.push((ls[i], le[i], 0, i as u32));
    }
    for j in 0..right.rows() {
        events.push((rs[j], re[j], 1, j as u32));
    }
    sort_events(&mut events, pool);

    let chunks = chunk_ranges(events.len(), pool.threads());
    let parts = map_tasks(pool, chunks.len(), |k| {
        sweep_chunk(&events, chunks[k].clone())
    });
    let (lidx, ridx, t1, t2) = concat_joins(parts);
    Ok(join_parallel(
        left, right, out_schema, &lidx, &ridx, &t1, &t2, pool,
    ))
}

/// Parallel faithful `×ᵀ`: left-major nested loop over left-row morsels,
/// list-exact against [`crate::batch::kernels::product_t_nested`].
pub fn product_t_nested_parallel(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
) -> Result<ColumnarRelation> {
    let (ls, le) = left.period_columns()?;
    let (rs, re) = right.period_columns()?;
    let parts = map_morsels(pool, left.rows(), |_, rows| {
        let mut out: JoinEmit = Default::default();
        for i in rows {
            for j in 0..right.rows() {
                let s = ls[i].max(rs[j]);
                let e = le[i].min(re[j]);
                if s < e {
                    out.0.push(i as u32);
                    out.1.push(j as u32);
                    out.2.push(s);
                    out.3.push(e);
                }
            }
        }
        out
    });
    let (lidx, ridx, t1, t2) = concat_joins(parts);
    Ok(join_parallel(
        left, right, out_schema, &lidx, &ridx, &t1, &t2, pool,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::relation::Relation;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    use crate::batch::kernels;

    fn temporal(rows: usize, seed: i64) -> ColumnarRelation {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            (0..rows as i64)
                .map(|i| {
                    let s = (i * 7 + seed) % 101;
                    tuple![format!("v{}", i % 13), s, s + 1 + (i % 9)]
                })
                .collect(),
        )
        .unwrap();
        ColumnarRelation::from_relation(&r).unwrap()
    }

    #[test]
    fn parallel_sweep_is_list_exact_at_any_width() {
        let l = temporal(1500, 3);
        let r = temporal(1100, 17);
        let out_schema = Arc::new(
            tqo_core::ops::temporal::product_t::product_t_schema(l.schema(), r.schema()).unwrap(),
        );
        let want = kernels::product_t_sweep(&l, &r, out_schema.clone())
            .unwrap()
            .to_relation();
        for threads in [1, 2, 3, 4, 8] {
            let pool = WorkerPool::new(threads);
            let got = product_t_sweep_parallel(&l, &r, out_schema.clone(), &pool)
                .unwrap()
                .to_relation();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_nested_loop_is_list_exact() {
        let l = temporal(300, 5);
        let r = temporal(200, 11);
        let out_schema = Arc::new(
            tqo_core::ops::temporal::product_t::product_t_schema(l.schema(), r.schema()).unwrap(),
        );
        let want = kernels::product_t_nested(&l, &r, out_schema.clone())
            .unwrap()
            .to_relation();
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let got = product_t_nested_parallel(&l, &r, out_schema.clone(), &pool)
                .unwrap()
                .to_relation();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_sides_produce_empty_output() {
        let l = temporal(0, 0);
        let r = temporal(50, 1);
        let out_schema = Arc::new(
            tqo_core::ops::temporal::product_t::product_t_schema(l.schema(), r.schema()).unwrap(),
        );
        let pool = WorkerPool::new(4);
        let got = product_t_sweep_parallel(&l, &r, out_schema, &pool).unwrap();
        assert_eq!(got.rows(), 0);
    }
}
