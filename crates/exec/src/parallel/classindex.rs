//! Hash-partitioned grouping: the parallel counterpart of
//! [`crate::batch::kernels::ClassIndex`].
//!
//! Grouping (value-equivalence classes, distinct rows, aggregation groups)
//! is the hash-heavy heart of `rdup`, aggregation, `\`, and every
//! per-class temporal kernel. The parallel build partitions the **key
//! space** by hash: per-row hashes are computed in parallel over
//! contiguous chunks, then each worker owns one partition and scans the
//! hash array, inserting only the rows whose key hashes into its
//! partition. Because every key belongs to exactly one partition, the
//! partitions' tables, class lists, and member lists are disjoint and
//! built without any synchronization.
//!
//! A final (cheap, `O(classes)`) merge step interleaves the partitions'
//! class lists by first-occurrence row, so the global class order is the
//! serial engine's first-occurrence order **regardless of the partition
//! count** — the property that keeps parallel output byte-identical to the
//! serial engines at any thread count.

use std::sync::Arc;

use tqo_core::columnar::{Column, ColumnarRelation};

use crate::batch::hash::{part_of, radix_scatter, KeyStore, RowTable};

use super::morsel::{for_each_chunk_mut, for_each_part, WorkerPool};

/// How much per-class detail the build records. Operators ask for the
/// cheapest level they need: distinct detection only needs the prototype
/// rows, multiset difference only per-class counts, aggregation and the
/// per-class temporal kernels the full member lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// First-occurrence rows only.
    Protos,
    /// Prototypes plus a member count per class.
    Counts,
    /// Prototypes plus full member lists per class, in row order.
    Members,
}

/// One key-space partition: a private linear-probe table plus its classes
/// in local first-occurrence order.
#[derive(Debug)]
pub struct Partition {
    table: RowTable,
    store: KeyStore,
    /// First member row of each local class, ascending.
    protos: Vec<u32>,
    /// Member rows of each local class, in row order ([`Track::Members`]).
    members: Vec<Vec<u32>>,
    /// Member count of each local class ([`Track::Counts`]).
    counts: Vec<i64>,
    /// Local class id → global class id (filled by the merge step).
    global: Vec<u32>,
}

/// The partitioned class index over a set of key columns.
#[derive(Debug)]
pub struct ParClassIndex {
    parts: Vec<Partition>,
    key_idx: Vec<usize>,
    /// Global class id → (partition, local class id).
    classes: Vec<(u32, u32)>,
    /// Global first-occurrence row of every class, ascending.
    protos: Vec<u32>,
    /// Per-row key hashes (kept so probes skip rehashing).
    hashes: Vec<u64>,
}

/// Compute per-row key hashes in parallel (contiguous chunks per worker).
pub fn hash_rows_parallel(
    cols: &[Arc<Column>],
    key_idx: &[usize],
    rows: usize,
    pool: &WorkerPool,
) -> Vec<u64> {
    let mut hashes = vec![0u64; rows];
    for_each_chunk_mut(pool, &mut hashes, |start, chunk| {
        for &k in key_idx {
            cols[k].hash_range(start, chunk);
        }
    });
    hashes
}

impl ParClassIndex {
    /// Build the index over `key_idx` columns of `input` on the pool,
    /// tracking full member lists.
    pub fn build(
        input: &ColumnarRelation,
        key_idx: Vec<usize>,
        pool: &WorkerPool,
    ) -> ParClassIndex {
        ParClassIndex::build_with(input, key_idx, pool, Track::Members)
    }

    /// Build the index, recording only the per-class detail `track` asks
    /// for.
    pub fn build_with(
        input: &ColumnarRelation,
        key_idx: Vec<usize>,
        pool: &WorkerPool,
        track: Track,
    ) -> ParClassIndex {
        let rows = input.rows();
        let cols = input.columns();
        let hashes = hash_rows_parallel(cols, &key_idx, rows, pool);

        // Sub-morsel inputs build one partition inline — partitioning's
        // spawn and scan overheads only pay off past a few thousand rows.
        // The partition count never affects the output: the merge below
        // restores global first-occurrence order regardless.
        let nparts = if rows < super::morsel::MORSEL_SIZE {
            1
        } else {
            pool.threads()
        };
        let mut parts: Vec<Partition> = (0..nparts)
            .map(|_| Partition {
                table: RowTable::with_capacity((rows / nparts).max(16)),
                store: KeyStore::for_keys(input.schema(), &key_idx),
                protos: Vec::new(),
                members: Vec::new(),
                counts: Vec::new(),
                global: Vec::new(),
            })
            .collect();
        // Radix-scatter the row ids by partition once (two passes over the
        // hash array) so each worker walks only its own rows — without the
        // scatter every worker re-scans the full hash array and build work
        // grows as `O(rows × partitions)`. The scatter is stable, so each
        // partition's ids stay ascending and the per-partition build is a
        // serial first-occurrence scan restricted to that partition.
        let (offsets, ids) = radix_scatter(&hashes, nparts);
        let offsets = &offsets;
        let ids = &ids;
        for_each_part(pool, &mut parts, |p, part| {
            for &row in &ids[offsets[p] as usize..offsets[p + 1] as usize] {
                let row = row as usize;
                let h = hashes[row];
                let (id, inserted) =
                    part.table
                        .find_or_insert(h, |e| part.store.eq_row(e, cols, &key_idx, row), 0);
                if inserted {
                    part.store.push_row(cols, &key_idx, row);
                    part.protos.push(row as u32);
                    match track {
                        Track::Protos => {}
                        Track::Counts => part.counts.push(0),
                        Track::Members => part.members.push(Vec::new()),
                    }
                }
                match track {
                    Track::Protos => {}
                    Track::Counts => part.counts[id as usize] += 1,
                    Track::Members => part.members[id as usize].push(row as u32),
                }
            }
        });

        // Merge: interleave the partitions' (ascending) proto lists into
        // the global first-occurrence order.
        let total: usize = parts.iter().map(|p| p.protos.len()).sum();
        let mut classes = Vec::with_capacity(total);
        let mut protos = Vec::with_capacity(total);
        let mut cursor = vec![0usize; nparts];
        for _ in 0..total {
            let mut best: Option<(u32, usize)> = None;
            for (p, part) in parts.iter().enumerate() {
                if let Some(&proto) = part.protos.get(cursor[p]) {
                    if best.is_none_or(|(b, _)| proto < b) {
                        best = Some((proto, p));
                    }
                }
            }
            let (proto, p) = best.expect("cursor invariant");
            let local = cursor[p];
            cursor[p] += 1;
            parts[p].global.push(classes.len() as u32);
            classes.push((p as u32, local as u32));
            protos.push(proto);
        }

        ParClassIndex {
            parts,
            key_idx,
            classes,
            protos,
            hashes,
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the input had no rows (hence no classes).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Global first-occurrence rows, ascending — the kept rows of a
    /// distinct operator, the group prototypes of an aggregation.
    pub fn protos(&self) -> &[u32] {
        &self.protos
    }

    /// The key hashes of the indexed rows.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Member rows of a global class, in row order ([`Track::Members`]
    /// builds only).
    pub fn members(&self, class: usize) -> &[u32] {
        let (p, l) = self.classes[class];
        &self.parts[p as usize].members[l as usize]
    }

    /// Member count of a global class ([`Track::Counts`] or
    /// [`Track::Members`] builds).
    pub fn count(&self, class: usize) -> i64 {
        let (p, l) = self.classes[class];
        let part = &self.parts[p as usize];
        match part.counts.get(l as usize) {
            Some(&c) => c,
            None => part.members[l as usize].len() as i64,
        }
    }

    /// Global class id of physical `row` of `cols` (any relation sharing
    /// the key layout), if its key is present.
    pub fn find(&self, cols: &[Arc<Column>], row: usize) -> Option<u32> {
        self.find_hashed(KeyStore::hash_row(cols, &self.key_idx, row), cols, row)
    }

    /// [`ParClassIndex::find`] with a precomputed hash.
    pub fn find_hashed(&self, hash: u64, cols: &[Arc<Column>], row: usize) -> Option<u32> {
        let part = &self.parts[part_of(hash, self.parts.len())];
        part.table
            .find(hash, |e| part.store.eq_row(e, cols, &self.key_idx, row))
            .map(|local| part.global[local as usize])
    }

    /// The key columns used to build the index.
    pub fn key_idx(&self) -> &[usize] {
        &self.key_idx
    }

    /// Number of key-space partitions (the build pool's width).
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// The partition a hash belongs to.
    pub fn part_of_hash(&self, hash: u64) -> usize {
        part_of(hash, self.parts.len())
    }

    /// Location of a global class: `(partition, local class id)`.
    pub fn class_location(&self, class: usize) -> (usize, usize) {
        let (p, l) = self.classes[class];
        (p as usize, l as usize)
    }

    /// Number of local classes in a partition.
    pub fn local_len(&self, part: usize) -> usize {
        self.parts[part].protos.len()
    }

    /// Member rows of a partition's local class, in row order.
    pub fn local_members(&self, part: usize, local: usize) -> &[u32] {
        &self.parts[part].members[local]
    }

    /// Global class id of a partition's local class.
    pub fn global_of(&self, part: usize, local: usize) -> u32 {
        self.parts[part].global[local]
    }

    /// Local class id within `part` of physical `row` of `cols`, given its
    /// precomputed hash (the caller has already routed the row to the
    /// partition with [`ParClassIndex::part_of_hash`]).
    pub fn find_local(
        &self,
        part: usize,
        hash: u64,
        cols: &[Arc<Column>],
        row: usize,
    ) -> Option<u32> {
        let p = &self.parts[part];
        p.table
            .find(hash, |e| p.store.eq_row(e, cols, &self.key_idx, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::relation::Relation;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    use crate::batch::kernels::ClassIndex;

    fn table(rows: usize) -> ColumnarRelation {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            (0..rows as i64)
                .map(|i| tuple![i % 37, format!("s{}", i % 11)])
                .collect(),
        )
        .unwrap();
        ColumnarRelation::from_relation(&r).unwrap()
    }

    #[test]
    fn matches_serial_class_index_at_any_width() {
        let input = table(5000);
        let keys = vec![0usize, 1usize];
        let serial = ClassIndex::build(&input, keys.clone());
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let par = ParClassIndex::build(&input, keys.clone(), &pool);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            assert_eq!(par.protos(), &serial.protos[..], "threads={threads}");
            for c in 0..par.len() {
                assert_eq!(par.members(c), &serial.members[c][..], "threads={threads}");
            }
            // find agrees with the serial index on every row.
            let cols = input.columns().to_vec();
            for row in 0..input.rows() {
                assert_eq!(
                    par.find(&cols, row),
                    serial.find(&cols, row),
                    "row {row} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_input_builds_empty_index() {
        let input = table(0);
        let pool = WorkerPool::new(4);
        let par = ParClassIndex::build(&input, vec![0], &pool);
        assert!(par.is_empty());
        assert_eq!(par.len(), 0);
    }
}
