//! Lowering physical plans into partition-pipeline task graphs.
//!
//! The multi-query scheduler ([`super::sched`]) does not execute whole
//! plans: it executes **stages**. A stage is a maximal breaker-bounded
//! fragment of a physical plan — the same boundaries the adaptive
//! executor checkpoints at ([`crate::adaptive`]) — and the stage graph
//! is the plan rewritten so each breaker subtree becomes its own
//! runnable unit whose output downstream stages consume through a
//! synthetic scan binding.
//!
//! The cut is byte-preserving by construction: a breaker fully
//! materializes its output anyway, so executing the subtree separately
//! and re-reading the materialized relation through `scan(__qN_stageK)`
//! feeds every downstream operator exactly the input it would have seen
//! inline. This is the same argument that makes an untriggered adaptive
//! run byte-identical to a static one, and `tests/serve_stress.rs` holds
//! the scheduler to it under concurrency.

use std::sync::Arc;

use tqo_core::error::Result;

use crate::physical::{PhysicalNode, PhysicalPlan};

/// One breaker-bounded fragment of a physical plan, executable as soon
/// as every stage in `deps` has completed and bound its output.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Index of this stage in [`StageGraph::stages`] (topological:
    /// dependencies always have smaller ids).
    pub id: usize,
    /// The fragment to execute. Dependency outputs appear as
    /// `scan(<binding>)` leaves (see [`StageGraph::binding`]).
    pub plan: PhysicalPlan,
    /// Stage ids whose outputs this fragment scans.
    pub deps: Vec<usize>,
}

/// A physical plan decomposed into pipeline stages at its breakers.
///
/// `stages` is in topological order; the **last** stage produces the
/// query result. A plan with no internal breakers lowers to exactly one
/// stage containing the whole tree.
#[derive(Debug, Clone)]
pub struct StageGraph {
    /// Breaker-bounded fragments, dependencies before dependents.
    pub stages: Vec<Stage>,
    prefix: String,
}

/// Pipeline breakers: operators that fully materialize their output
/// before anything downstream can consume a row. The set mirrors the
/// adaptive executor's checkpoint sites, translated to physical nodes.
fn is_breaker(node: &PhysicalNode) -> bool {
    matches!(
        node,
        PhysicalNode::Sort { .. }
            | PhysicalNode::Aggregate { .. }
            | PhysicalNode::AggregateT { .. }
            | PhysicalNode::Product { .. }
            | PhysicalNode::ProductT { .. }
            | PhysicalNode::DifferenceT { .. }
            | PhysicalNode::RdupT { .. }
            | PhysicalNode::UnionMax { .. }
            | PhysicalNode::UnionT { .. }
            | PhysicalNode::Coalesce { .. }
    )
}

impl StageGraph {
    /// Decompose `plan` into breaker-bounded stages. `prefix` namespaces
    /// the inter-stage bindings (`{prefix}stage{id}`) so concurrent
    /// queries sharing one scheduler never collide in the environment or
    /// its columnar cache — the scheduler passes a per-query prefix.
    ///
    /// Estimates are not threaded through to the fragments (stage
    /// operators report no estimates); results are unaffected.
    pub fn lower(plan: &PhysicalPlan, prefix: &str) -> Result<StageGraph> {
        let mut graph = StageGraph {
            stages: Vec::new(),
            prefix: prefix.to_owned(),
        };
        let (root, deps) = graph.cut(&plan.root)?;
        let id = graph.stages.len();
        graph.stages.push(Stage {
            id,
            plan: PhysicalPlan {
                root,
                estimates: Vec::new(),
            },
            deps,
        });
        Ok(graph)
    }

    /// The environment binding stage `id`'s output is published under.
    pub fn binding(&self, id: usize) -> String {
        format!("{}stage{id}", self.prefix)
    }

    /// Recursively rebuild `node` with breaker subtrees cut into stages;
    /// returns the rewritten node plus the stage ids the rewritten
    /// fragment scans.
    fn cut(&mut self, node: &Arc<PhysicalNode>) -> Result<(Arc<PhysicalNode>, Vec<usize>)> {
        let mut deps = Vec::new();
        let children = node.children();
        let rebuilt = if children.is_empty() {
            Arc::clone(node)
        } else {
            let mut new_children = Vec::with_capacity(children.len());
            let mut changed = false;
            for c in children {
                let (nc, d) = self.cut(c)?;
                changed |= !Arc::ptr_eq(&nc, c);
                new_children.push(nc);
                deps.extend(d);
            }
            if changed {
                Arc::new(node.with_children(new_children)?)
            } else {
                Arc::clone(node)
            }
        };
        if is_breaker(node) {
            let id = self.stages.len();
            self.stages.push(Stage {
                id,
                plan: PhysicalPlan {
                    root: rebuilt,
                    estimates: Vec::new(),
                },
                deps,
            });
            Ok((
                Arc::new(PhysicalNode::Scan {
                    name: self.binding(id),
                }),
                vec![id],
            ))
        } else {
            Ok((rebuilt, deps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::expr::Expr;
    use tqo_core::sortspec::Order;

    fn scan(name: &str) -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::Scan { name: name.into() })
    }

    #[test]
    fn pipeline_without_breakers_is_one_stage() {
        let plan = PhysicalPlan::new(PhysicalNode::Select {
            input: scan("R"),
            predicate: Expr::eq(Expr::col("E"), Expr::lit("a")),
        });
        let g = StageGraph::lower(&plan, "__q0_").unwrap();
        assert_eq!(g.stages.len(), 1);
        assert!(g.stages[0].deps.is_empty());
        assert_eq!(g.stages[0].plan.root, plan.root);
    }

    #[test]
    fn breakers_cut_into_dependent_stages() {
        // sort(select(product(R, S))): product and sort are breakers.
        let plan = PhysicalPlan::new(PhysicalNode::Sort {
            input: Arc::new(PhysicalNode::Select {
                input: Arc::new(PhysicalNode::Product {
                    left: scan("R"),
                    right: scan("S"),
                }),
                predicate: Expr::eq(Expr::col("E"), Expr::lit("a")),
            }),
            order: Order::asc(&["E"]),
        });
        let g = StageGraph::lower(&plan, "__q7_").unwrap();
        assert_eq!(g.stages.len(), 3);
        // Stage 0: the product subtree, no deps.
        assert_eq!(g.stages[0].plan.root.label(), "product");
        assert!(g.stages[0].deps.is_empty());
        // Stage 1: sort(select(scan(__q7_stage0))).
        assert_eq!(g.stages[1].deps, vec![0]);
        assert_eq!(g.stages[1].plan.root.label(), "sort[stable]");
        let inner = &g.stages[1].plan.root.children()[0];
        assert_eq!(inner.children()[0].label(), "scan(__q7_stage0)");
        // Final stage: just re-reads the root breaker's binding.
        assert_eq!(g.stages[2].deps, vec![1]);
        assert_eq!(g.stages[2].plan.root.label(), "scan(__q7_stage1)");
    }

    #[test]
    fn binary_breakers_collect_deps_from_both_sides() {
        // union-max over two sorted inputs: three breakers below the root.
        let plan = PhysicalPlan::new(PhysicalNode::UnionMax {
            left: Arc::new(PhysicalNode::Sort {
                input: scan("R"),
                order: Order::asc(&["E"]),
            }),
            right: Arc::new(PhysicalNode::Sort {
                input: scan("S"),
                order: Order::asc(&["E"]),
            }),
        });
        let g = StageGraph::lower(&plan, "__q1_").unwrap();
        assert_eq!(g.stages.len(), 4);
        assert_eq!(g.stages[2].deps, vec![0, 1]);
        assert_eq!(g.stages[2].plan.root.label(), "union-max");
        assert_eq!(g.stages[3].deps, vec![2]);
    }
}
