//! Parallel output assembly: the exchange/merge boundary.
//!
//! Every parallel operator ends by materializing a [`ColumnarRelation`]
//! from deterministic, morsel-ordered parts — row-index gathers and
//! freshly computed period columns. Assembly parallelizes **per output
//! column** (columns are independent), which keeps the merge bandwidth-
//! bound work off the critical path without ever reordering rows.

use std::sync::Arc;

use tqo_core::columnar::{Column, ColumnarRelation};
use tqo_core::schema::Schema;
use tqo_core::value::DataType;

use super::morsel::{map_tasks, WorkerPool, MORSEL_SIZE};

/// One task per output column when the output is big enough to justify
/// spawning; small outputs assemble inline on the caller's thread.
pub(crate) fn column_tasks<T, F>(pool: &WorkerPool, count: usize, rows: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if rows < MORSEL_SIZE {
        (0..count).map(f).collect()
    } else {
        map_tasks(pool, count, f)
    }
}

/// A `Time` column from raw instants.
pub fn time_column(values: &[i64]) -> Column {
    let mut c = Column::with_capacity(DataType::Time, values.len());
    for &v in values {
        c.push_time(v);
    }
    c
}

/// Gather `idx` rows of every column, one parallel task per column.
pub fn gather_parallel(cols: &[Arc<Column>], idx: &[u32], pool: &WorkerPool) -> Vec<Arc<Column>> {
    column_tasks(pool, cols.len(), idx.len(), |c| {
        Arc::new(cols[c].gather(idx))
    })
}

/// Materialize `idx` rows of `input` under `schema` (same column layout).
pub fn gather_relation(
    input: &ColumnarRelation,
    schema: Arc<Schema>,
    idx: &[u32],
    pool: &WorkerPool,
) -> ColumnarRelation {
    ColumnarRelation::new(schema, gather_parallel(input.columns(), idx, pool))
}

/// Assemble the output of a per-class temporal kernel: explicit attributes
/// come from prototype rows of `input`, the period from the parallel
/// `t1`/`t2` vectors. The parallel counterpart of the serial kernels'
/// `emit_fragments`, assembling one output column per task.
pub fn fragments_parallel(
    input: &ColumnarRelation,
    out_schema: Arc<Schema>,
    protos: &[u32],
    t1: &[i64],
    t2: &[i64],
    pool: &WorkerPool,
) -> ColumnarRelation {
    let (i1, i2) = (
        out_schema.t1_index().expect("temporal output"),
        out_schema.t2_index().expect("temporal output"),
    );
    let columns = column_tasks(pool, out_schema.arity(), t1.len(), |c| {
        if c == i1 {
            Arc::new(time_column(t1))
        } else if c == i2 {
            Arc::new(time_column(t2))
        } else {
            Arc::new(input.column(c).gather(protos))
        }
    });
    ColumnarRelation::new(out_schema, columns)
}

/// Assemble a `×ᵀ` output: left columns gathered at `lidx`, right columns
/// at `ridx`, the intersection period appended — the parallel counterpart
/// of the serial kernels' `product_t_output`.
#[allow(clippy::too_many_arguments)] // mirrors the serial kernel's signature
pub fn join_parallel(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    out_schema: Arc<Schema>,
    lidx: &[u32],
    ridx: &[u32],
    t1: &[i64],
    t2: &[i64],
    pool: &WorkerPool,
) -> ColumnarRelation {
    let nl = left.columns().len();
    let nr = right.columns().len();
    let columns = column_tasks(pool, out_schema.arity(), lidx.len(), |c| {
        if c < nl {
            Arc::new(left.column(c).gather(lidx))
        } else if c < nl + nr {
            Arc::new(right.column(c - nl).gather(ridx))
        } else if c == nl + nr {
            Arc::new(time_column(t1))
        } else {
            Arc::new(time_column(t2))
        }
    });
    ColumnarRelation::new(out_schema, columns)
}
