//! The morsel scheduler and worker pool.
//!
//! Parallelism in the parallel engine is *morsel-driven* (after Leis et
//! al., SIGMOD 2014): an operator's input is split into fixed-size row
//! ranges — morsels — and a small pool of workers pulls the next morsel
//! from a shared atomic counter until none remain. Scheduling is dynamic
//! (a worker that finishes a cheap morsel immediately takes another), but
//! results are always reassembled **in morsel order**, which is how every
//! parallel operator preserves exact equality with the serial engines at
//! any thread count.
//!
//! The pool is built on [`std::thread::scope`]: workers borrow the
//! operator's inputs directly, no `'static` bounds, no external
//! dependencies, and a one-thread pool degenerates to an inline call with
//! zero spawn overhead. Every parallel region records its per-worker busy
//! time into the pool; the driver drains the accumulated times per
//! operator ([`WorkerPool::take_times`]) so
//! [`crate::metrics::OperatorMetrics`] can report the per-thread
//! breakdown next to the operator's wall-clock time.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tqo_core::context::{self, QueryContext};
use tqo_core::error::Result;
use tqo_core::trace::{self, counters, Category};

/// What a parallel region captures from the driver thread and re-installs
/// on every worker: the trace collector and the governance context. Both
/// are thread-local installs, so worker threads must inherit them
/// explicitly for morsel spans to land in the query profile and morsel
/// checkpoints to observe the query's token/deadline/budget.
struct WorkerEnv {
    collector: Option<trace::Collector>,
    ctx: Option<QueryContext>,
}

impl WorkerEnv {
    fn capture() -> WorkerEnv {
        WorkerEnv {
            collector: trace::current(),
            ctx: context::current(),
        }
    }
}

/// Worker-side shim: installs the driver's collector and governance
/// context (captured once per parallel region) on the worker thread and
/// wraps the work in a per-worker busy span. Inert when tracing and
/// governance are disabled.
fn traced_worker<R>(env: &WorkerEnv, worker: usize, work: impl FnOnce() -> R) -> R {
    let _trace_guard = env.collector.as_ref().map(trace::install);
    let _ctx_guard = env.ctx.as_ref().map(context::install);
    let _span = trace::span_with(Category::Morsel, || format!("worker {worker}"));
    work()
}

/// Rows per morsel. Larger than the batch engine's `BATCH_SIZE` so each
/// scheduled unit amortizes the pull from the shared counter; small enough
/// that a typical operator yields many times more morsels than workers,
/// keeping the dynamic schedule balanced under skew.
pub const MORSEL_SIZE: usize = 4096;

/// A fixed-size worker pool over scoped threads.
///
/// The pool stores its width plus the per-worker busy times of the
/// parallel regions run since the last [`WorkerPool::take_times`].
/// Threads are spawned per parallel region (a scoped spawn is a few
/// microseconds, amortized over morsels measured in milliseconds) and
/// joined before the region returns, so borrowed inputs never escape.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    times: Mutex<Vec<Duration>>,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool {
            threads: threads.max(1),
            times: Mutex::new(Vec::new()),
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Add a region's per-worker busy times to the running totals.
    fn record(&self, region: &[Duration]) {
        let mut acc = self.times.lock().expect("pool time sink");
        if acc.len() < region.len() {
            acc.resize(region.len(), Duration::ZERO);
        }
        for (a, t) in acc.iter_mut().zip(region) {
            *a += *t;
        }
    }

    /// Drain the per-worker busy times accumulated since the last call —
    /// one entry per worker that did any work.
    pub fn take_times(&self) -> Vec<Duration> {
        std::mem::take(&mut *self.times.lock().expect("pool time sink"))
    }

    /// Run `job(worker_id)` on every worker, recording per-worker busy
    /// time. A one-thread pool runs the job inline.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            let started = Instant::now();
            job(0);
            self.record(&[started.elapsed()]);
            return;
        }
        let env = WorkerEnv::capture();
        let mut times = vec![Duration::ZERO; self.threads];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let job = &job;
                    let env = &env;
                    s.spawn(move || {
                        traced_worker(env, w, || {
                            let started = Instant::now();
                            job(w);
                            started.elapsed()
                        })
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                times[w] = h.join().expect("worker thread panicked");
            }
        });
        self.record(&times);
    }
}

/// Run `count` independent tasks on the pool (workers pull task indices
/// from a shared counter); results are returned in task order. A single
/// task runs inline — no reason to pay a spawn for it.
pub fn map_tasks<T, F>(pool: &WorkerPool, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    if count == 1 {
        let started = Instant::now();
        let out = vec![f(0)];
        pool.record(&[started.elapsed()]);
        return out;
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(count));
    pool.run(|_| {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            local.push((i, f(i)));
        }
        done.lock().expect("task sink").extend(local);
    });
    let mut tagged = done.into_inner().expect("task sink");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// The morsel ranges covering `total` rows.
pub fn morsels_of(total: usize) -> Vec<Range<usize>> {
    (0..total.div_ceil(MORSEL_SIZE))
        .map(|i| i * MORSEL_SIZE..((i + 1) * MORSEL_SIZE).min(total))
        .collect()
}

/// Morsel-parallel map over `total` rows: `f(morsel_index, rows)` runs on
/// the pool, results in morsel order.
pub fn map_morsels<T, F>(pool: &WorkerPool, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let ranges = morsels_of(total);
    counters::MORSELS_DISPATCHED.add(ranges.len() as u64);
    map_tasks(pool, ranges.len(), |i| f(i, ranges[i].clone()))
}

/// Fallible morsel-parallel map. Every morsel runs (errors do not cancel
/// in-flight work); the error surfaced is the one from the **earliest**
/// morsel, so failures are deterministic and match the serial engines'
/// first-failure semantics.
pub fn try_map_morsels<T, F>(pool: &WorkerPool, total: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    // Governance checkpoint at morsel dispatch: each morsel polls the
    // query context before running, so a cancellation/deadline surfaces
    // within one morsel and, via earliest-morsel-error selection below,
    // deterministically at any thread count.
    let results = map_morsels(pool, total, |i, range| {
        context::check_current()?;
        f(i, range)
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Split `data` into one contiguous chunk per worker and run
/// `f(start_offset, chunk)` on each in parallel — the static-partitioned
/// counterpart of [`map_morsels`] for filling a preallocated buffer (e.g.
/// per-row hashes) without scattered writes.
pub fn for_each_chunk_mut<T, F>(pool: &WorkerPool, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let chunk = n.div_ceil(pool.threads());
    // Sub-morsel inputs run inline: a spawn costs more than the work.
    if pool.threads() == 1 || chunk == n || n < MORSEL_SIZE {
        let started = Instant::now();
        f(0, data);
        pool.record(&[started.elapsed()]);
        return;
    }
    let env = WorkerEnv::capture();
    let mut times = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, part)| {
                let f = &f;
                let env = &env;
                s.spawn(move || {
                    traced_worker(env, i, || {
                        let started = Instant::now();
                        f(i * chunk, part);
                        started.elapsed()
                    })
                })
            })
            .collect();
        for h in handles {
            times.push(h.join().expect("worker thread panicked"));
        }
    });
    pool.record(&times);
}

/// Run `f(range_index, slice)` over explicit contiguous `ranges` of
/// `data` in parallel, one worker per range. The ranges must tile `data`
/// from the start (ascending, gap-free) — exactly what
/// `kernels::chunk_ranges` produces — so callers that later merge per
/// range (the partition-then-merge sorts) operate on the *same*
/// boundaries the workers sorted, with no second chunking formula to
/// drift out of sync.
pub fn for_each_range_mut<T, F>(pool: &WorkerPool, data: &mut [T], ranges: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(ranges.first().is_none_or(|r| r.start == 0));
    debug_assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
    debug_assert!(ranges.last().is_none_or(|r| r.end == data.len()));
    if ranges.len() <= 1 || pool.threads() == 1 {
        let started = Instant::now();
        for (i, r) in ranges.iter().enumerate() {
            f(i, &mut data[r.clone()]);
        }
        pool.record(&[started.elapsed()]);
        return;
    }
    let env = WorkerEnv::capture();
    let mut times = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut rest = data;
        let mut offset = 0;
        for (i, r) in ranges.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(r.end - offset);
            rest = tail;
            offset = r.end;
            let f = &f;
            let env = &env;
            handles.push(s.spawn(move || {
                traced_worker(env, i, || {
                    let started = Instant::now();
                    f(i, chunk);
                    started.elapsed()
                })
            }));
        }
        for h in handles {
            times.push(h.join().expect("worker thread panicked"));
        }
    });
    pool.record(&times);
}

/// Run `f(index, part)` for every element of `parts` in parallel, each
/// worker owning its element mutably — the build phase of the partitioned
/// hash operators (one hash-table partition per worker).
pub fn for_each_part<T, F>(pool: &WorkerPool, parts: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if parts.len() <= 1 || pool.threads() == 1 {
        let started = Instant::now();
        for (i, p) in parts.iter_mut().enumerate() {
            f(i, p);
        }
        pool.record(&[started.elapsed()]);
        return;
    }
    let env = WorkerEnv::capture();
    let mut times = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter_mut()
            .enumerate()
            .map(|(i, part)| {
                let f = &f;
                let env = &env;
                s.spawn(move || {
                    traced_worker(env, i, || {
                        let started = Instant::now();
                        f(i, part);
                        started.elapsed()
                    })
                })
            })
            .collect();
        for h in handles {
            times.push(h.join().expect("worker thread panicked"));
        }
    });
    pool.record(&times);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_total_exactly() {
        let m = morsels_of(2 * MORSEL_SIZE + 7);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], 0..MORSEL_SIZE);
        assert_eq!(m[2], 2 * MORSEL_SIZE..2 * MORSEL_SIZE + 7);
        assert!(morsels_of(0).is_empty());
    }

    #[test]
    fn map_tasks_preserves_order_at_any_width() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let out = map_tasks(&pool, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            let times = pool.take_times();
            assert!(!times.is_empty());
            assert!(pool.take_times().is_empty(), "times drain");
        }
    }

    #[test]
    fn try_map_reports_earliest_morsel_error() {
        let pool = WorkerPool::new(4);
        let total = 3 * MORSEL_SIZE;
        let failing = [1usize, 2];
        let r = try_map_morsels(&pool, total, |i, range| {
            if failing.contains(&i) {
                Err(tqo_core::error::Error::Plan {
                    reason: format!("morsel {i}"),
                })
            } else {
                Ok(range.len())
            }
        });
        let err = r.expect_err("must fail").to_string();
        assert!(err.contains("morsel 1"), "{err}");
    }

    #[test]
    fn chunks_and_parts_visit_everything() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u32; 1000];
        for_each_chunk_mut(&pool, &mut data, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start + k) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));

        let mut parts = vec![0usize; 3];
        for_each_part(&pool, &mut parts, |i, p| *p = i + 1);
        assert_eq!(parts, vec![1, 2, 3]);
    }
}
