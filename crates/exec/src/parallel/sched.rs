//! The multi-query partition-pipeline scheduler.
//!
//! Where the morsel pool ([`super::morsel`]) parallelizes *inside* one
//! operator, this module multiplexes *many queries* over one shared,
//! process-wide worker pool, push-style: each submitted plan is lowered
//! into a breaker-bounded stage graph ([`super::stage`]), completed
//! stages push their dependents onto the shared run queue, and workers
//! pick the next stage task under a weighted-fair policy. Nothing here
//! changes what a query computes — stages execute with the ordinary
//! deterministic engines — so a result produced through the scheduler is
//! byte-identical to the same plan's serial run (ARCHITECTURE
//! invariant 16).
//!
//! Governance hooks:
//!
//! * **Admission control** — at most `max_queries` queries may be
//!   resident; later submissions get the typed
//!   [`Error::AdmissionRejected`] so serving front-ends can shed load
//!   without masking execution failures.
//! * **Weighted-fair picking** — each query accrues *service* (rows
//!   flowed through its completed stages, a deterministic proxy for
//!   work) divided by its weight; workers always run the ready stage of
//!   the query with the least service. A long scan therefore cannot
//!   starve a short query: after one stage of the scan, the short query
//!   has strictly less service and wins every pick until it catches up.
//!   Newly admitted queries start at the pool's current service floor,
//!   not at zero, so they cannot monopolize a long-running pool either.
//! * **Per-query context** — each query's
//!   [`QueryContext`](tqo_core::context::QueryContext) is installed on
//!   the worker for the duration of its tasks only; deadlines, budgets,
//!   and cancellation are re-checked at every task boundary and fail
//!   just that query, leaving the pool serving everyone else.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use tqo_core::context::{self, CancellationToken, QueryContext};
use tqo_core::error::{Error, Result};
use tqo_core::interp::Env;
use tqo_core::relation::Relation;
use tqo_core::trace::{self, counters, Category};

use super::stage::{Stage, StageGraph};
use crate::executor::{execute_mode, ExecMode};
use crate::metrics::ExecMetrics;
use crate::physical::PhysicalPlan;

/// Sizing and admission knobs for a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the shared run queue. `0` spawns no
    /// threads — tasks then only run through [`Scheduler::step`], the
    /// deterministic mode the fairness tests drive.
    pub workers: usize,
    /// Admission limit: queries resident at once before
    /// [`Error::AdmissionRejected`].
    pub max_queries: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get()),
            max_queries: 64,
        }
    }
}

/// Per-query options for [`Scheduler::submit`].
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Governance context: deadline, budget, cancellation token. The
    /// scheduler installs it around every task of this query.
    pub ctx: QueryContext,
    /// Engine executing each stage (default: batch).
    pub mode: ExecMode,
    /// Fair-share weight (clamped to ≥ 0.001). A query with weight 2
    /// absorbs twice the service of a weight-1 query before yielding.
    pub weight: f64,
}

impl SubmitOptions {
    fn weight(&self) -> f64 {
        if self.weight > 0.001 {
            self.weight
        } else if self.weight == 0.0 {
            1.0 // Default-constructed: unweighted.
        } else {
            0.001
        }
    }
}

/// A handle to a query resident in a [`Scheduler`].
///
/// Dropping the handle without [`QueryHandle::wait`]ing leaks the
/// query's admission slot until the scheduler shuts down — serving code
/// should always wait (or cancel, then wait).
pub struct QueryHandle {
    shared: Arc<Shared>,
    id: u64,
    token: CancellationToken,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("id", &self.id).finish()
    }
}

impl QueryHandle {
    /// The scheduler-assigned query id (also the stage-binding
    /// namespace `__q{id}_`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Trip this query's cancellation token. Only this query's tasks
    /// observe it; the pool and every other query keep running.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether the query has reached an outcome (result or typed
    /// error). Non-blocking.
    pub fn is_finished(&self) -> bool {
        let state = self.shared.state.lock().expect("scheduler state");
        state
            .queries
            .get(&self.id)
            .is_none_or(|q| q.outcome.is_some())
    }

    /// Block until the query finishes and take its outcome.
    pub fn wait(self) -> Result<(Relation, ExecMetrics)> {
        let mut state = self.shared.state.lock().expect("scheduler state");
        loop {
            match state.queries.get(&self.id) {
                None => {
                    return Err(Error::Plan {
                        reason: format!("query {} already waited on", self.id),
                    })
                }
                Some(q) if q.outcome.is_some() => {
                    let q = state.queries.remove(&self.id).expect("query present");
                    return q.outcome.expect("outcome present");
                }
                Some(_) => {
                    state = self
                        .shared
                        .done
                        .wait(state)
                        .expect("scheduler state poisoned");
                }
            }
        }
    }
}

/// The shared multi-query worker pool. See the module docs for the
/// scheduling model; construct one with [`Scheduler::new`] or use the
/// process-wide [`Scheduler::global`].
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

struct Shared {
    config: SchedulerConfig,
    state: Mutex<State>,
    /// Workers wait here for runnable tasks.
    work: Condvar,
    /// Handle waiters ([`QueryHandle::wait`]) wait here for outcomes.
    done: Condvar,
}

#[derive(Default)]
struct State {
    queries: HashMap<u64, QueryState>,
    next_id: u64,
    /// Monotone service floor: newly admitted queries start here so a
    /// newcomer cannot out-prioritize the whole resident population.
    floor: f64,
    shutdown: bool,
}

struct QueryState {
    ctx: QueryContext,
    collector: Option<trace::Collector>,
    /// Base bindings plus, as stages complete, their outputs under
    /// `__q{id}_stage{k}` names (private clone; the caller's `Env` is
    /// never mutated).
    env: Env,
    mode: ExecMode,
    weight: f64,
    /// Accrued service / weight — the fair-share virtual time.
    vtime: f64,
    stages: Vec<Stage>,
    bindings: Vec<String>,
    /// For each stage, the stages scanning its output.
    dependents: Vec<Vec<usize>>,
    /// Unmet-dependency counts; a stage is runnable at zero.
    waiting: Vec<usize>,
    ready: Vec<usize>,
    running: usize,
    /// Failures recorded so far, by stage id; the lowest stage id wins
    /// so the reported error does not depend on worker timing.
    failures: Vec<(usize, Error)>,
    metrics: Vec<Option<ExecMetrics>>,
    outcome: Option<Result<(Relation, ExecMetrics)>>,
}

impl QueryState {
    fn runnable(&self) -> bool {
        self.outcome.is_none() && !self.ready.is_empty() && self.failures.is_empty()
    }

    /// Terminal check after a task retires: success when the final stage
    /// completed, failure once nothing is running and a failure is
    /// recorded. Sets `outcome` and returns true if the query just
    /// finished.
    fn try_finish(&mut self) -> bool {
        if self.outcome.is_some() {
            return false;
        }
        if !self.failures.is_empty() {
            if self.running == 0 {
                self.failures.sort_by_key(|(id, _)| *id);
                let (_, err) = self.failures[0].clone();
                self.outcome = Some(Err(err));
                return true;
            }
            return false;
        }
        let last = self.stages.len() - 1;
        if self.metrics[last].is_some() {
            let mut all = ExecMetrics::default();
            for m in &mut self.metrics {
                all.operators
                    .extend(m.take().map(|m| m.operators).unwrap_or_default());
            }
            let result = self
                .env
                .get(&self.bindings[last])
                .expect("final stage binding")
                .clone();
            self.outcome = Some(Ok((result, all)));
            return true;
        }
        false
    }
}

/// Everything a worker needs to run one stage task lock-free.
struct Task {
    query: u64,
    stage: usize,
    plan: PhysicalPlan,
    env: Env,
    ctx: QueryContext,
    collector: Option<trace::Collector>,
    mode: ExecMode,
}

impl Scheduler {
    /// A scheduler with `config.workers` threads already running.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        let shared = Arc::new(Shared {
            config: config.clone(),
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("tqo-sched-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The process-wide scheduler (default config), created on first
    /// use. This is the pool `tqo-serve` and the conformance scheduler
    /// leg share.
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler::new(SchedulerConfig::default()))
    }

    /// Admit `plan` and start scheduling its stages. Returns the typed
    /// [`Error::AdmissionRejected`] when `max_queries` queries are
    /// already resident; the caller should retry later.
    ///
    /// The environment is snapshotted (cheap: relations are shared) —
    /// later mutations of the caller's `env` do not affect this query.
    pub fn submit(
        &self,
        plan: &PhysicalPlan,
        env: &Env,
        opts: SubmitOptions,
    ) -> Result<QueryHandle> {
        let mut state = self.shared.state.lock().expect("scheduler state");
        if state.shutdown {
            return Err(Error::Plan {
                reason: "scheduler is shut down".into(),
            });
        }
        let active = state.queries.len();
        let limit = self.shared.config.max_queries;
        if active >= limit {
            counters::QUERIES_REJECTED.incr();
            return Err(Error::AdmissionRejected { active, limit });
        }
        let id = state.next_id;
        state.next_id += 1;
        let graph = StageGraph::lower(plan, &format!("__q{id}_"))?;
        let n = graph.stages.len();
        let bindings: Vec<String> = (0..n).map(|k| graph.binding(k)).collect();
        let mut dependents = vec![Vec::new(); n];
        let mut waiting = vec![0usize; n];
        let mut ready = Vec::new();
        for stage in &graph.stages {
            waiting[stage.id] = stage.deps.len();
            if stage.deps.is_empty() {
                ready.push(stage.id);
            }
            for &d in &stage.deps {
                dependents[d].push(stage.id);
            }
        }
        let entry = state
            .queries
            .values()
            .filter(|q| q.outcome.is_none())
            .map(|q| q.vtime)
            .fold(f64::INFINITY, f64::min);
        let floor = if entry.is_finite() {
            state.floor.max(entry)
        } else {
            state.floor
        };
        state.floor = floor;
        let token = opts.ctx.token().clone();
        state.queries.insert(
            id,
            QueryState {
                ctx: opts.ctx.clone(),
                collector: trace::current(),
                env: env.clone(),
                mode: opts.mode,
                weight: opts.weight(),
                vtime: floor,
                stages: graph.stages,
                bindings,
                dependents,
                waiting,
                ready,
                running: 0,
                failures: Vec::new(),
                metrics: vec![None; n],
                outcome: None,
            },
        );
        counters::QUERIES_ADMITTED.incr();
        drop(state);
        self.shared.work.notify_all();
        Ok(QueryHandle {
            shared: Arc::clone(&self.shared),
            id,
            token,
        })
    }

    /// Submit and block for the outcome — the serial-call convenience
    /// the conformance scheduler leg uses.
    pub fn run(
        &self,
        plan: &PhysicalPlan,
        env: &Env,
        opts: SubmitOptions,
    ) -> Result<(Relation, ExecMetrics)> {
        self.submit(plan, env, opts)?.wait()
    }

    /// Run at most one stage task on the calling thread; `false` when
    /// nothing is runnable. With `workers: 0` this is the whole engine —
    /// the fairness tests drive it to observe every pick
    /// deterministically. Returns the query id the task belonged to.
    pub fn step(&self) -> Option<u64> {
        let task = {
            let mut state = self.shared.state.lock().expect("scheduler state");
            next_task(&mut state)?
        };
        let query = task.query;
        run_task(&self.shared, task);
        Some(query)
    }

    /// Queries currently resident (admitted, outcome not yet claimed).
    pub fn resident(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("scheduler state")
            .queries
            .len()
    }

    /// Stop accepting queries, finish the resident ones, and join the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler state");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("scheduler workers"));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pick the runnable stage of the least-service query, marking it
/// running. Holds the state lock.
fn next_task(state: &mut State) -> Option<Task> {
    let (&id, _) =
        state
            .queries
            .iter()
            .filter(|(_, q)| q.runnable())
            .min_by(|(ai, a), (bi, b)| {
                a.vtime
                    .partial_cmp(&b.vtime)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ai.cmp(bi))
            })?;
    let q = state.queries.get_mut(&id).expect("picked query");
    state.floor = state.floor.max(q.vtime);
    // FIFO among this query's ready stages keeps dependency chains
    // moving breadth-first.
    let stage = q.ready.remove(0);
    q.running += 1;
    Some(Task {
        query: id,
        stage,
        plan: q.stages[stage].plan.clone(),
        env: q.env.clone(),
        ctx: q.ctx.clone(),
        collector: q.collector.clone(),
        mode: q.mode,
    })
}

/// Execute one stage task (no locks held) and retire it.
fn run_task(shared: &Arc<Shared>, task: Task) {
    counters::SCHED_TASKS.incr();
    let result = {
        let _trace = task.collector.as_ref().map(trace::install);
        let _ctx = context::install(&task.ctx);
        let _span = trace::span_with(Category::Exec, || {
            format!("sched q{} stage {}", task.query, task.stage)
        });
        // Task-boundary governance checkpoint: a tripped token, expired
        // deadline, or exhausted budget fails the query before any more
        // of its work is scheduled.
        task.ctx
            .check()
            .and_then(|()| execute_mode(&task.plan, &task.env, task.mode))
            .and_then(|(rel, m)| {
                // Stage outputs stay resident until the query finishes;
                // charge them against the query's budget at the boundary.
                task.ctx.budget().try_charge(rel.approx_bytes())?;
                Ok((rel, m))
            })
    };
    retire(shared, task.query, task.stage, result);
}

/// Retire a finished stage task: book service, publish the output (or
/// record the failure), wake dependents and waiters.
fn retire(shared: &Arc<Shared>, query: u64, stage: usize, result: Result<(Relation, ExecMetrics)>) {
    let mut state = shared.state.lock().expect("scheduler state");
    let Some(q) = state.queries.get_mut(&query) else {
        return; // Query vanished (shutdown race); nothing to book.
    };
    q.running -= 1;
    match result {
        Ok((rel, metrics)) => {
            // Deterministic service proxy: rows flowed through the
            // stage. Using work, not wall time, makes pick order
            // reproducible under --test-threads=1.
            let service: usize = metrics
                .operators
                .iter()
                .map(|o| o.rows_in + o.rows_out)
                .sum::<usize>()
                + 1;
            q.vtime += service as f64 / q.weight;
            q.metrics[stage] = Some(metrics);
            let binding = q.bindings[stage].clone();
            q.env.insert(binding, rel);
            for k in 0..q.dependents[stage].len() {
                let dep = q.dependents[stage][k];
                q.waiting[dep] -= 1;
                if q.waiting[dep] == 0 {
                    q.ready.push(dep);
                }
            }
        }
        Err(err) => {
            q.failures.push((stage, err));
            // Stop scheduling this query's remaining stages; in-flight
            // siblings retire through this same path.
            q.ready.clear();
        }
    }
    let finished = q.try_finish();
    drop(state);
    // More tasks may be runnable (dependents or other queries), and a
    // finished query has a waiter to wake.
    shared.work.notify_all();
    if finished {
        shared.done.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("scheduler state");
            loop {
                if let Some(task) = next_task(&mut state) {
                    break task;
                }
                // Drain semantics: exit only once shutdown is flagged
                // and every resident query has reached an outcome.
                if state.shutdown && state.queries.values().all(|q| q.outcome.is_some()) {
                    return;
                }
                state = shared.work.wait(state).expect("scheduler state poisoned");
            }
        };
        run_task(shared, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalNode;
    use std::sync::Arc;
    use tqo_core::expr::Expr;
    use tqo_core::schema::Schema;
    use tqo_core::sortspec::Order;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::{DataType, Value};

    fn env() -> Env {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            (0..4000i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(format!("v{}", i % 23)),
                        Value::Time(i % 11),
                        Value::Time(i % 11 + 1 + (i % 5)),
                    ])
                })
                .collect(),
        )
        .unwrap();
        Env::new().with("R", r)
    }

    fn sort_plan() -> PhysicalPlan {
        PhysicalPlan::new(PhysicalNode::Sort {
            input: Arc::new(PhysicalNode::Select {
                input: Arc::new(PhysicalNode::Scan { name: "R".into() }),
                predicate: Expr::eq(Expr::col("E"), Expr::lit("v7")),
            }),
            order: Order::asc(&["E"]),
        })
    }

    #[test]
    fn scheduled_run_matches_serial_run() {
        let e = env();
        let plan = sort_plan();
        let (serial, _) = execute_mode(&plan, &e, ExecMode::Batch).unwrap();
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            max_queries: 4,
        });
        let (out, metrics) = sched.run(&plan, &e, SubmitOptions::default()).unwrap();
        assert_eq!(out, serial);
        // Stage metrics cover every operator of the plan (plus the
        // synthetic final-stage scan).
        assert!(metrics.operators.len() >= plan.root.size());
        sched.shutdown();
    }

    #[test]
    fn admission_limit_is_a_typed_error() {
        let e = env();
        let plan = sort_plan();
        // No workers: submissions stay resident, so the second one must
        // bounce off the limit deterministically.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 0,
            max_queries: 1,
        });
        let _h = sched.submit(&plan, &e, SubmitOptions::default()).unwrap();
        let err = sched
            .submit(&plan, &e, SubmitOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            Error::AdmissionRejected {
                active: 1,
                limit: 1
            }
        );
        // Drain so shutdown joins cleanly.
        while sched.step().is_some() {}
        sched.shutdown();
    }

    #[test]
    fn step_mode_runs_a_query_to_completion() {
        let e = env();
        let plan = sort_plan();
        let (serial, _) = execute_mode(&plan, &e, ExecMode::Batch).unwrap();
        let sched = Scheduler::new(SchedulerConfig {
            workers: 0,
            max_queries: 4,
        });
        let h = sched.submit(&plan, &e, SubmitOptions::default()).unwrap();
        let mut steps = 0;
        while sched.step().is_some() {
            steps += 1;
        }
        assert_eq!(steps, 2); // sort stage + final scan stage
        assert!(h.is_finished());
        let (out, _) = h.wait().unwrap();
        assert_eq!(out, serial);
    }

    #[test]
    fn cancellation_kills_only_its_own_query() {
        let e = env();
        let plan = sort_plan();
        let sched = Scheduler::new(SchedulerConfig {
            workers: 0,
            max_queries: 4,
        });
        let victim = sched
            .submit(
                &plan,
                &e,
                SubmitOptions {
                    ctx: QueryContext::new(),
                    ..Default::default()
                },
            )
            .unwrap();
        let survivor = sched.submit(&plan, &e, SubmitOptions::default()).unwrap();
        victim.cancel();
        while sched.step().is_some() {}
        assert_eq!(victim.wait().unwrap_err(), Error::Cancelled);
        let (out, _) = survivor.wait().unwrap();
        let (serial, _) = execute_mode(&plan, &e, ExecMode::Batch).unwrap();
        assert_eq!(out, serial);
    }
}
