//! Adaptive mid-query re-optimization driven by runtime cardinality
//! feedback.
//!
//! The static optimizer plans once, from estimates; on skewed temporal
//! data those estimates can be wildly wrong, and the chosen algorithms and
//! plan shapes wrong with them. This module closes the loop the
//! statistics layer left open (`est_rows` / `q_error()` were recorded in
//! [`crate::metrics::OperatorMetrics`] but nothing acted on them):
//!
//! 1. **Stage execution.** The plan is executed stage by stage at its
//!    pipeline breakers — the materialization points (`sort`, hash and
//!    sweep boundaries) that already exist in every engine. The deepest
//!    breaker subtree runs first, on whichever engine is active
//!    (row/batch/parallel).
//! 2. **Checkpoint.** The completed breaker's materialized output is bound
//!    as a synthetic base table with *measured* statistics
//!    ([`tqo_core::stats::TableSummary::measure`]: row and distinct
//!    counts, histograms, time range, snapshot-overlap degree) and
//!    measured invariants ([`tqo_core::plan::BaseProps::measured`]).
//! 3. **Feedback.** The breaker's estimated-vs-actual q-error is compared
//!    against [`AdaptiveConfig::q_threshold`]. Below the threshold the
//!    executed subtree is spliced out of the *static physical plan*
//!    unchanged — an untriggered adaptive run executes exactly the
//!    operators the static run would, so its result is byte-identical to
//!    the static result. At or above the threshold (and within
//!    [`AdaptiveConfig::max_reopt`]), the unexecuted remainder re-enters
//!    the planner with the measured statistics: lowering re-picks
//!    algorithms within their equivalence licenses, and when a rule set is
//!    supplied the memo (or exhaustive) optimizer re-searches the
//!    remainder's plan space. The executed prefix is pinned by
//!    construction — it is now a scan leaf, which no rule can rewrite
//!    away.
//!
//! **Result guarantees.** Every re-planning step preserves the query's
//! declared result type (`≡SQL`), exactly like static optimization; and
//! because every adaptive decision is a deterministic function of actual
//! cardinalities — which all engines agree on — an adaptive run produces
//! byte-identical results across the row, batch, and parallel engines at
//! any thread count. With re-lowering only (no rule re-entry) in faithful
//! mode, the adaptive result is byte-identical to the reference
//! interpreter. See `docs/adaptive.md` for the full invariant table.

use std::sync::Arc;

use tqo_core::context;
use tqo_core::cost::CostModel;
use tqo_core::error::Result;
use tqo_core::interp::Env;
use tqo_core::optimizer::{optimize, Optimized, OptimizerConfig};
use tqo_core::plan::{BaseProps, LogicalPlan, Path, PlanNode};
use tqo_core::relation::Relation;
use tqo_core::rules::RuleSet;

use tqo_core::trace::{self, counters, Category};

use crate::executor::execute_mode;
use crate::metrics::{ExecMetrics, ReoptEvent};
use crate::physical::{PhysicalNode, PhysicalPlan};
use crate::planner::{lower, optimize_and_lower, PlannerConfig};

/// Knobs of the adaptive re-optimization loop, carried on
/// [`PlannerConfig::adaptive`].
///
/// ```
/// use tqo_exec::adaptive::AdaptiveConfig;
///
/// // The default triggers on 2× misestimates, up to four times a query.
/// let cfg = AdaptiveConfig::default();
/// assert_eq!(cfg.q_threshold, 2.0);
/// // q-errors are ≥ 1 by definition, so a threshold of 1.0 re-plans at
/// // every completed breaker — maximum re-planning pressure.
/// let eager = AdaptiveConfig { q_threshold: 1.0, ..cfg };
/// assert!(eager.q_threshold <= cfg.q_threshold);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Re-plan the remainder when a completed pipeline breaker's q-error
    /// (`max(est/actual, actual/est)`, floored at one row on both sides)
    /// reaches this threshold. Since q-errors are ≥ 1, a threshold of
    /// `1.0` re-plans at every breaker.
    pub q_threshold: f64,
    /// Maximum number of re-plans per query (checkpoints past the budget
    /// still execute stage-wise but keep the static remainder).
    pub max_reopt: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            q_threshold: 2.0,
            max_reopt: 4,
        }
    }
}

/// True for logical operators the engines materialize at (the batch
/// pipeline's blocking operators and the row engine's equivalents) —
/// the only places a mid-query checkpoint is free.
fn is_breaker(node: &PlanNode) -> bool {
    matches!(
        node,
        PlanNode::Sort { .. }
            | PlanNode::Aggregate { .. }
            | PlanNode::AggregateT { .. }
            | PlanNode::Product { .. }
            | PlanNode::ProductT { .. }
            | PlanNode::DifferenceT { .. }
            | PlanNode::RdupT { .. }
            | PlanNode::UnionMax { .. }
            | PlanNode::UnionT { .. }
            | PlanNode::Coalesce { .. }
    )
}

/// The next checkpoint site: the deepest-leftmost non-root breaker with no
/// breaker strictly below it (its whole subtree completes in one stage).
/// `None` when the only breaker left is the root — the remainder then runs
/// to completion.
fn checkpoint_site(root: &PlanNode) -> Option<Path> {
    fn walk(node: &PlanNode, path: &mut Path, found: &mut Option<Path>) -> bool {
        let mut below = false;
        for (i, c) in node.children().iter().enumerate() {
            path.push(i);
            below |= walk(c, path, found);
            path.pop();
            if found.is_some() {
                return true;
            }
        }
        if is_breaker(node) {
            if !below && !path.is_empty() {
                *found = Some(path.clone());
            }
            return true;
        }
        below
    }
    let mut found = None;
    walk(root, &mut Vec::new(), &mut found);
    found
}

/// Post-order index of the first node of the subtree at `path` (post-order
/// is the sequence both engines emit metrics and the planner emits
/// estimates in; a subtree occupies a contiguous range there).
fn postorder_start(root: &PhysicalNode, path: &[usize]) -> usize {
    let mut start = 0;
    let mut cur = root;
    for &i in path {
        let children = cur.children();
        for c in children.iter().take(i) {
            start += c.size();
        }
        cur = children[i];
    }
    start
}

/// The static remainder: `plan` with the executed subtree at `path`
/// replaced by a scan of the checkpoint, estimates spliced so the scan
/// reports the (now known) actual cardinality. Algorithm choices of the
/// surviving operators are untouched.
fn splice_checkpoint(
    plan: &PhysicalPlan,
    path: &[usize],
    name: &str,
    actual_rows: u64,
) -> Result<PhysicalPlan> {
    let start = postorder_start(&plan.root, path);
    let len = plan.root.get(path)?.size();
    let root = plan.root.replace(
        path,
        PhysicalNode::Scan {
            name: name.to_owned(),
        },
    )?;
    let mut estimates = plan.estimates.clone();
    if estimates.len() == plan.root.size() {
        estimates.splice(start..start + len, [Some(actual_rows)]);
    } else {
        estimates = Vec::new();
    }
    Ok(PhysicalPlan {
        root: Arc::new(root),
        estimates,
    })
}

/// Execute a logical plan adaptively: lower it, run it stage by stage at
/// its pipeline breakers, and re-plan the remainder with measured
/// statistics whenever a checkpoint's q-error reaches the configured
/// threshold (`config.adaptive`, defaulted when `None`).
///
/// With `rules: None` re-planning is *re-lowering only* — algorithm
/// selection re-runs against measured statistics within the equivalence
/// licenses, but the plan shape is fixed. With `rules: Some(_)` the
/// remainder also re-enters the configured search strategy (memo by
/// default in callers that care about latency), which can restructure it —
/// move work across the stratum split, reorder joins — exactly as the
/// static optimizer could have, had it known the true cardinalities.
pub fn execute_adaptive(
    plan: &LogicalPlan,
    env: &Env,
    rules: Option<&RuleSet>,
    config: PlannerConfig,
) -> Result<(Relation, ExecMetrics)> {
    let physical = lower(plan, config)?;
    drive(plan.clone(), physical, env, rules, config)
}

/// Statically optimize with `rules`, then execute the winner adaptively
/// (re-entering the same rule set at checkpoints). The adaptive analogue
/// of [`crate::planner::optimize_and_lower`] + execute.
pub fn optimize_and_execute_adaptive(
    plan: &LogicalPlan,
    rules: &RuleSet,
    env: &Env,
    config: PlannerConfig,
) -> Result<(Relation, ExecMetrics, Optimized)> {
    let (physical, optimized) = optimize_and_lower(plan, rules, config)?;
    let (result, metrics) = drive(optimized.best.clone(), physical, env, rules.into(), config)?;
    Ok((result, metrics, optimized))
}

/// The optimizer configuration a re-plan uses: the caller's search
/// strategy, the cost model calibrated to the engine that keeps executing.
fn reopt_config(config: PlannerConfig) -> OptimizerConfig {
    OptimizerConfig {
        strategy: config.strategy,
        cost_model: CostModel::calibrated(config.mode.engine())
            .with_fast_algorithms(config.allow_fast),
        ..OptimizerConfig::default()
    }
}

fn drive(
    mut logical: LogicalPlan,
    mut physical: PhysicalPlan,
    env: &Env,
    rules: Option<&RuleSet>,
    config: PlannerConfig,
) -> Result<(Relation, ExecMetrics)> {
    let acfg = config.adaptive.unwrap_or_default();
    // A private clone: checkpoint bindings must not leak into the caller's
    // environment (the columnar cache is shared and identity-checked).
    let mut env = env.clone();
    let mut metrics = ExecMetrics::default();
    let mut replans = 0usize;

    for ckpt in 0.. {
        // Governance checkpoint: between stages is the natural cancellation
        // point of the adaptive loop (each stage's engine also checks
        // internally at its own granularity).
        context::check_current()?;
        let Some(path) = checkpoint_site(&logical.root) else {
            break;
        };
        debug_assert_eq!(logical.root.size(), physical.root.size());
        let mut ckpt_span = trace::span_with(Category::Adaptive, || format!("checkpoint {ckpt}"));

        // Execute the stage subtree on the active engine, with its slice
        // of the post-order estimates so the breaker reports a q-error.
        let stage_root = Arc::new(physical.root.get(&path)?.clone());
        let start = postorder_start(&physical.root, &path);
        let len = stage_root.size();
        let stage = PhysicalPlan {
            root: stage_root,
            estimates: if physical.estimates.len() == physical.root.size() {
                physical.estimates[start..start + len].to_vec()
            } else {
                Vec::new()
            },
        };
        let (rel, stage_metrics) = execute_mode(&stage, &env, config.mode)?;
        let breaker = stage_metrics.operators.last().expect("stage has operators");
        let (label, est, q) = (breaker.label.clone(), breaker.est_rows, breaker.q_error());
        let actual = rel.len();
        metrics.operators.extend(stage_metrics.operators);

        // Bind the materialized intermediate as a synthetic base table
        // with measured statistics and invariants. Once the re-plan
        // budget is spent no future re-plan can consume statistics, so
        // skip the per-column measurement sweep and bind bare counts.
        let budget_left = replans < acfg.max_reopt;
        let name = format!("__adaptive{ckpt}");
        let base = if budget_left {
            BaseProps::measured(&rel)?
        } else {
            BaseProps::unordered(rel.schema().clone(), rel.len() as u64)
        };
        env.insert(name.clone(), rel);
        logical = logical.with_root(logical.root.replace(
            &path,
            PlanNode::Scan {
                name: name.clone(),
                base,
            },
        )?);

        // The remainder a non-adaptive run would execute: checkpoint scan
        // spliced in, every surviving algorithm choice untouched.
        let spliced = splice_checkpoint(&physical, &path, &name, actual as u64)?;

        let triggered = budget_left && q.is_some_and(|q| q >= acfg.q_threshold);
        if triggered {
            counters::REOPTS_TRIGGERED.incr();
            replans += 1;
            if let Some(rules) = rules {
                logical = optimize(&logical, rules, &reopt_config(config))?.best;
            }
            physical = lower(&logical, config)?;
        } else {
            physical = spliced.clone();
        }
        trace::instant_with(
            Category::Adaptive,
            || format!("reopt @ {label}"),
            || {
                format!(
                    "\"est\": {}, \"actual\": {actual}, \"q\": {}, \"replanned\": {triggered}, \
                     \"plan_changed\": {}",
                    est.map_or_else(|| "null".into(), |e| e.to_string()),
                    q.map_or_else(|| "null".into(), |q| format!("{q:.2}")),
                    triggered && physical.root != spliced.root,
                )
            },
        );
        ckpt_span.note_with(|| {
            format!(
                "\"breaker\": \"{}\", \"rows\": {actual}",
                trace::json_escape(&label)
            )
        });
        drop(ckpt_span);
        metrics.reopts.push(ReoptEvent {
            checkpoint: label,
            est_rows: est,
            actual_rows: actual,
            q_error: q,
            replanned: triggered,
            plan_changed: triggered && physical.root != spliced.root,
        });
    }

    // No non-root breakers left: run the remainder to completion.
    let (result, final_metrics) = execute_mode(&physical, &env, config.mode)?;
    metrics.operators.extend(final_metrics.operators);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecMode;
    use tqo_core::plan::PlanBuilder;
    use tqo_core::schema::Schema;
    use tqo_core::sortspec::Order;
    use tqo_core::stats::TableSummary;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::{DataType, Value};

    fn temporal(rows: usize, classes: usize) -> Relation {
        let tuples = (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Str(format!("v{}", i % classes.max(1)).into()),
                    Value::Time((i / classes.max(1)) as i64 * 3),
                    Value::Time((i / classes.max(1)) as i64 * 3 + 2),
                ])
            })
            .collect();
        Relation::new(Schema::temporal(&[("E", DataType::Str)]), tuples).unwrap()
    }

    /// Scan with statistics measured from a *stale sample* of the table —
    /// the seeded-misestimate device the adaptive tests use.
    fn stale_scan(name: &str, actual: &Relation, sample_rows: usize) -> PlanBuilder {
        let sample = Relation::new(
            actual.schema().clone(),
            actual.tuples()[..sample_rows.min(actual.len())].to_vec(),
        )
        .unwrap();
        let mut base = BaseProps::measured(&sample).unwrap();
        base.schema = actual.schema().clone();
        PlanBuilder::scan(name, base)
    }

    #[test]
    fn checkpoint_sites_are_deepest_non_root_breakers() {
        let a = temporal(10, 3);
        let plan = stale_scan("A", &a, 10)
            .rdup_t()
            .coalesce()
            .sort(Order::asc(&["E"]))
            .build_multiset();
        // rdupT is the deepest breaker.
        assert_eq!(checkpoint_site(&plan.root), Some(vec![0, 0]));
        // A plan whose only breaker is the root has no checkpoint site.
        let sort_only = stale_scan("A", &a, 10)
            .sort(Order::asc(&["E"]))
            .build_multiset();
        assert_eq!(checkpoint_site(&sort_only.root), None);
        // A streaming-only plan has none either.
        let streaming = stale_scan("A", &a, 10).rdup().build_multiset();
        assert_eq!(checkpoint_site(&streaming.root), None);
    }

    #[test]
    fn untriggered_adaptive_runs_are_byte_identical_to_static() {
        let a = temporal(200, 10);
        let b = temporal(40, 10);
        let env = Env::new().with("A", a.clone()).with("B", b.clone());
        // Accurate statistics: nothing should trigger at the default 2×.
        let scan = |n: &str, r: &Relation| PlanBuilder::scan(n, BaseProps::measured(r).unwrap());
        let plan = scan("A", &a)
            .rdup_t()
            .difference_t(scan("B", &b))
            .coalesce()
            .build_multiset();
        for mode in [ExecMode::Row, ExecMode::Batch, ExecMode::parallel()] {
            let config = PlannerConfig {
                mode,
                ..PlannerConfig::default()
            };
            let (expected, _) = crate::executor::execute_logical(&plan, &env, config).unwrap();
            let adaptive_config = PlannerConfig {
                adaptive: Some(AdaptiveConfig::default()),
                ..config
            };
            let (got, m) = execute_adaptive(&plan, &env, None, adaptive_config).unwrap();
            assert_eq!(got, expected, "untriggered adaptive diverged ({mode:?})");
            assert_eq!(m.replanned_count(), 0, "accurate stats must not trigger");
            assert!(!m.reopts.is_empty(), "breakers still checkpoint");
        }
    }

    #[test]
    fn max_reopt_zero_pins_the_static_plan_even_under_pressure() {
        let a = temporal(400, 20);
        let env = Env::new().with("A", a.clone());
        let plan = stale_scan("A", &a, 8).rdup_t().coalesce().build_multiset();
        let config = PlannerConfig {
            adaptive: Some(AdaptiveConfig {
                q_threshold: 1.0,
                max_reopt: 0,
            }),
            ..PlannerConfig::default()
        };
        let (got, m) = execute_adaptive(&plan, &env, None, config).unwrap();
        let (expected, _) =
            crate::executor::execute_logical(&plan, &env, PlannerConfig::default()).unwrap();
        assert_eq!(got, expected);
        assert_eq!(m.replanned_count(), 0);
    }

    #[test]
    fn checkpoints_carry_measured_statistics() {
        // The stale scan claims 8 rows; the checkpointed rdupᵀ output is
        // re-measured, so the remainder's estimate snaps to the truth and
        // the final breaker's q-error is ~1.
        let a = temporal(400, 20);
        let env = Env::new().with("A", a.clone());
        let plan = stale_scan("A", &a, 8).rdup_t().coalesce().build_multiset();
        let config = PlannerConfig {
            adaptive: Some(AdaptiveConfig {
                q_threshold: 1.0,
                max_reopt: 4,
            }),
            ..PlannerConfig::default()
        };
        let (_, m) = execute_adaptive(&plan, &env, None, config).unwrap();
        assert_eq!(m.replanned_count(), 1);
        let coalesce = m
            .operators
            .iter()
            .find(|o| o.label.starts_with("coalesce"))
            .unwrap();
        let q = coalesce.q_error().unwrap();
        assert!(
            q < 1.5,
            "post-checkpoint estimate should be measured: q={q}"
        );
        // And the checkpoint summary itself is a faithful measurement.
        let s = TableSummary::measure(env.get("A").unwrap()).unwrap();
        assert_eq!(s.rows, 400);
    }
}
