//! Fast temporal duplicate elimination: per-class period-union sweep.
//!
//! `O(n log n)` against the faithful algorithm's `O(n²)` worst case. The
//! output is the *canonical* snapshot-dedup: per value-equivalence class,
//! the maximal intervals covered by any of the class's periods, classes in
//! first-occurrence order. This is `≡SM`-equivalent to the faithful
//! `rdupᵀ` (both are snapshot-duplicate-free and have identical snapshots)
//! but fragments periods differently — e.g. Figure 3's John becomes
//! `[1,11)` here instead of the faithful `[1,8), [8,11)`.

use tqo_core::error::{Error, Result};
use tqo_core::relation::Relation;
use tqo_core::time::normalize_periods;
use tqo_core::tuple::Tuple;

/// Canonical sweep-based `rdupᵀ`.
pub fn rdup_t_sweep(r: &Relation) -> Result<Relation> {
    if !r.is_temporal() {
        return Err(Error::NotTemporal {
            context: "rdup_t_sweep",
        });
    }
    let schema = r.schema().clone();
    let mut out: Vec<Tuple> = Vec::with_capacity(r.len());
    for (_, indices) in r.value_classes()? {
        let mut periods = Vec::with_capacity(indices.len());
        for &i in &indices {
            periods.push(r.tuples()[i].period(&schema)?);
        }
        let proto = &r.tuples()[indices[0]];
        for p in normalize_periods(periods) {
            out.push(proto.with_period(&schema, p)?);
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::ops::rdup_t;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn schema() -> Schema {
        Schema::temporal(&[("E", DataType::Str)])
    }

    #[test]
    fn figure3_input_canonical_output() {
        let r1 = Relation::new(
            schema(),
            vec![
                tuple!["John", 1i64, 8i64],
                tuple!["John", 6i64, 11i64],
                tuple!["Anna", 2i64, 6i64],
                tuple!["Anna", 2i64, 6i64],
                tuple!["Anna", 6i64, 12i64],
            ],
        )
        .unwrap();
        let got = rdup_t_sweep(&r1).unwrap();
        // Canonical: maximal intervals (John merged, Anna merged).
        assert_eq!(
            got.tuples(),
            &[tuple!["John", 1i64, 11i64], tuple!["Anna", 2i64, 12i64]]
        );
        assert!(!got.has_snapshot_duplicates().unwrap());
    }

    #[test]
    fn snapshot_multiset_equivalent_to_faithful() {
        let r = Relation::new(
            schema(),
            vec![
                tuple!["a", 4i64, 6i64],
                tuple!["a", 1i64, 10i64],
                tuple!["b", 2i64, 5i64],
                tuple!["b", 7i64, 9i64],
                tuple!["a", 12i64, 14i64],
            ],
        )
        .unwrap();
        let fast = rdup_t_sweep(&r).unwrap();
        let faithful = rdup_t(&r).unwrap();
        assert!(tqo_core::equivalence::equiv_snapshot_multiset(&fast, &faithful).unwrap());
    }

    #[test]
    fn disjoint_input_is_preserved_up_to_grouping() {
        let r = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 3i64], tuple!["a", 5i64, 7i64]],
        )
        .unwrap();
        let got = rdup_t_sweep(&r).unwrap();
        assert_eq!(got.tuples(), r.tuples());
    }

    #[test]
    fn rejects_snapshot_relations() {
        let r = Relation::new(Schema::of(&[("A", DataType::Int)]), vec![tuple![1i64]]).unwrap();
        assert!(rdup_t_sweep(&r).is_err());
    }
}
