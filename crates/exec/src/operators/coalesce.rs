//! Fast coalescing: per-class sort-merge.
//!
//! `O(n log n)` against the fixpoint's `O(n²)` worst case. Periods of each
//! value-equivalence class are sorted by start and adjacent (not
//! overlapping!) neighbours merged in one pass. For snapshot-duplicate-free
//! inputs the merge relation is confluent, so the output is
//! `≡M`-equivalent to the faithful fixpoint (same multiset, different
//! order: classes in first-occurrence order, fragments chronological).

use tqo_core::error::{Error, Result};
use tqo_core::relation::Relation;
use tqo_core::time::Period;
use tqo_core::tuple::Tuple;

/// Sort-merge `coalᵀ`.
pub fn coalesce_sort_merge(r: &Relation) -> Result<Relation> {
    if !r.is_temporal() {
        return Err(Error::NotTemporal {
            context: "coalesce_sort_merge",
        });
    }
    let schema = r.schema().clone();
    let mut out: Vec<Tuple> = Vec::with_capacity(r.len());
    for (_, indices) in r.value_classes()? {
        let mut periods: Vec<Period> = Vec::with_capacity(indices.len());
        for &i in &indices {
            periods.push(r.tuples()[i].period(&schema)?);
        }
        periods.sort();
        let proto = &r.tuples()[indices[0]];
        let mut current: Option<Period> = None;
        for p in periods {
            match current {
                None => current = Some(p),
                Some(c) if c.end == p.start => current = Some(Period::of(c.start, p.end)),
                Some(c) => {
                    out.push(proto.with_period(&schema, c)?);
                    current = Some(p);
                }
            }
        }
        if let Some(c) = current {
            out.push(proto.with_period(&schema, c)?);
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::equivalence::equiv_multiset;
    use tqo_core::ops::coalesce;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn schema() -> Schema {
        Schema::temporal(&[("E", DataType::Str)])
    }

    #[test]
    fn merges_adjacent_not_overlapping() {
        let r = Relation::new(
            schema(),
            vec![
                tuple!["a", 3i64, 5i64],
                tuple!["a", 1i64, 3i64],
                tuple!["b", 1i64, 4i64],
                tuple!["b", 2i64, 6i64], // overlap — must NOT merge
            ],
        )
        .unwrap();
        let got = coalesce_sort_merge(&r).unwrap();
        assert_eq!(
            got.tuples(),
            &[
                tuple!["a", 1i64, 5i64],
                tuple!["b", 1i64, 4i64],
                tuple!["b", 2i64, 6i64],
            ]
        );
    }

    #[test]
    fn multiset_equivalent_to_faithful_on_sdf_input() {
        let r = Relation::new(
            schema(),
            vec![
                tuple!["a", 5i64, 7i64],
                tuple!["a", 1i64, 3i64],
                tuple!["a", 3i64, 5i64],
                tuple!["b", 2i64, 4i64],
                tuple!["b", 4i64, 9i64],
            ],
        )
        .unwrap();
        assert!(!r.has_snapshot_duplicates().unwrap());
        let fast = coalesce_sort_merge(&r).unwrap();
        let faithful = coalesce(&r).unwrap();
        assert!(equiv_multiset(&fast, &faithful).unwrap());
        assert!(fast.is_coalesced().unwrap());
    }

    #[test]
    fn exact_duplicates_survive() {
        let r = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 3i64], tuple!["a", 1i64, 3i64]],
        )
        .unwrap();
        let got = coalesce_sort_merge(&r).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn chain_collapses() {
        let r = Relation::new(
            schema(),
            vec![
                tuple!["a", 1i64, 2i64],
                tuple!["a", 2i64, 3i64],
                tuple!["a", 3i64, 4i64],
                tuple!["a", 4i64, 5i64],
            ],
        )
        .unwrap();
        let got = coalesce_sort_merge(&r).unwrap();
        assert_eq!(got.tuples(), &[tuple!["a", 1i64, 5i64]]);
    }
}
