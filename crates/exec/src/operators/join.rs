//! Fast temporal Cartesian product: plane sweep over period endpoints.
//!
//! Instead of testing all `n·m` pairs, both inputs are sorted by period
//! start and swept together; each tuple is joined only against the other
//! side's *active* set (periods containing the sweep point). For workloads
//! whose snapshots are small relative to the total history this approaches
//! `O(n log n + output)`. The output is `≡M`-equivalent to the faithful
//! left-major nested loop (same pairs, sweep order).

use tqo_core::error::Result;
use tqo_core::ops::temporal::product_t::product_t_schema;
use tqo_core::relation::Relation;
use tqo_core::time::Period;
use tqo_core::tuple::Tuple;
use tqo_core::value::Value;

/// Plane-sweep `×ᵀ`.
pub fn product_t_plane_sweep(r1: &Relation, r2: &Relation) -> Result<Relation> {
    let schema = product_t_schema(r1.schema(), r2.schema())?;

    // (start, side, index) events; starts sorted ascending. Tuples are
    // joined on insertion against the opposite active list.
    let mut left: Vec<(Period, &Tuple)> = Vec::with_capacity(r1.len());
    for t in r1.tuples() {
        left.push((t.period(r1.schema())?, t));
    }
    let mut right: Vec<(Period, &Tuple)> = Vec::with_capacity(r2.len());
    for t in r2.tuples() {
        right.push((t.period(r2.schema())?, t));
    }
    left.sort_by_key(|(p, _)| (p.start, p.end));
    right.sort_by_key(|(p, _)| (p.start, p.end));

    let mut out: Vec<Tuple> = Vec::new();
    let mut active_left: Vec<(Period, &Tuple)> = Vec::new();
    let mut active_right: Vec<(Period, &Tuple)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);

    let emit = |l: &Tuple, r: &Tuple, p: Period, out: &mut Vec<Tuple>| {
        let mut values = l.values().to_vec();
        values.extend(r.values().iter().cloned());
        values.push(Value::Time(p.start));
        values.push(Value::Time(p.end));
        out.push(Tuple::new(values));
    };

    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some((lp, _)), Some((rp, _))) => (lp.start, lp.end) <= (rp.start, rp.end),
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            let (lp, lt) = left[i];
            i += 1;
            active_right.retain(|(rp, _)| rp.end > lp.start);
            for (rp, rt) in &active_right {
                if let Some(p) = lp.intersect(rp) {
                    emit(lt, rt, p, &mut out);
                }
            }
            active_left.push((lp, lt));
        } else {
            let (rp, rt) = right[j];
            j += 1;
            active_left.retain(|(lp, _)| lp.end > rp.start);
            for (lp, lt) in &active_left {
                if let Some(p) = lp.intersect(&rp) {
                    emit(lt, rt, p, &mut out);
                }
            }
            active_right.push((rp, rt));
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::equivalence::equiv_multiset;
    use tqo_core::ops::product_t;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn rel(name: &str, rows: &[(&str, i64, i64)]) -> Relation {
        let schema = Schema::temporal(&[(name, DataType::Str)]);
        Relation::new(
            schema,
            rows.iter().map(|(v, s, e)| tuple![*v, *s, *e]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn matches_nested_loop_as_multiset() {
        let l = rel("A", &[("a", 1, 5), ("b", 4, 9), ("c", 10, 12)]);
        let r = rel("B", &[("x", 3, 6), ("y", 8, 12), ("z", 1, 2)]);
        let fast = product_t_plane_sweep(&l, &r).unwrap();
        let faithful = product_t(&l, &r).unwrap();
        assert!(equiv_multiset(&fast, &faithful).unwrap());
    }

    #[test]
    fn no_overlap_no_output() {
        let l = rel("A", &[("a", 1, 3)]);
        let r = rel("B", &[("x", 3, 6)]);
        assert!(product_t_plane_sweep(&l, &r).unwrap().is_empty());
    }

    #[test]
    fn identical_periods_join_fully() {
        let l = rel("A", &[("a", 1, 5), ("b", 1, 5)]);
        let r = rel("B", &[("x", 1, 5)]);
        let got = product_t_plane_sweep(&l, &r).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn larger_random_agreement() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mk = |rng: &mut rand::rngs::StdRng, name: &str, n: usize| {
            let rows: Vec<(String, i64, i64)> = (0..n)
                .map(|i| {
                    let s = rng.gen_range(0..50);
                    (format!("v{}", i % 7), s, s + rng.gen_range(1..10))
                })
                .collect();
            let schema = Schema::temporal(&[(name, DataType::Str)]);
            Relation::new(
                schema,
                rows.iter()
                    .map(|(v, s, e)| tuple![v.as_str(), *s, *e])
                    .collect(),
            )
            .unwrap()
        };
        let l = mk(&mut rng, "A", 40);
        let r = mk(&mut rng, "B", 30);
        let fast = product_t_plane_sweep(&l, &r).unwrap();
        let faithful = product_t(&l, &r).unwrap();
        assert!(equiv_multiset(&fast, &faithful).unwrap());
    }
}
