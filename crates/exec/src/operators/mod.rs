//! Physical operator algorithms.
//!
//! Algorithms that are *specification-faithful* simply delegate to
//! `tqo_core::ops`; the alternatives here trade exact list output for
//! asymptotic speed and are selected by the planner only where the plan's
//! operation properties license the weaker equivalence.

pub mod coalesce;
pub mod dedup;
pub mod difference;
pub mod join;

pub use coalesce::coalesce_sort_merge;
pub use dedup::rdup_t_sweep;
pub use difference::difference_t_subtract_union;
pub use join::product_t_plane_sweep;
