//! Ablation variant of temporal difference: per-tuple subtract-union.
//!
//! For every left tuple, subtract the normalized union of the right side's
//! value-equivalent periods. For snapshot-duplicate-free left arguments
//! this computes the same point set as the faithful count-timeline sweep
//! but keeps the left argument's own fragment boundaries (the sweep merges
//! adjacent equal-count fragments), so the result is `≡SM`-equivalent.
//! Used by the ablation benches comparing `\ᵀ` algorithms.

use std::collections::HashMap;

use tqo_core::error::{Error, Result};
use tqo_core::relation::Relation;
use tqo_core::time::{normalize_periods, Period};
use tqo_core::tuple::Tuple;
use tqo_core::value::Value;

/// Subtract-union `\ᵀ` (left argument must be free of snapshot
/// duplicates; enforced).
pub fn difference_t_subtract_union(r1: &Relation, r2: &Relation) -> Result<Relation> {
    if !r1.is_temporal() || !r2.is_temporal() {
        return Err(Error::NotTemporal {
            context: "difference_t_subtract_union",
        });
    }
    r1.schema()
        .check_union_compatible(r2.schema(), "difference_t_subtract_union")?;
    if r1.has_snapshot_duplicates()? {
        return Err(Error::Plan {
            reason: "subtract-union temporal difference requires a snapshot-duplicate-free \
                     left argument"
                .into(),
        });
    }
    // Right side: normalized period union per class.
    let mut right: HashMap<Vec<Value>, Vec<Period>> = HashMap::new();
    for t in r2.tuples() {
        right
            .entry(t.explicit_values(r2.schema()))
            .or_default()
            .push(t.period(r2.schema())?);
    }
    for periods in right.values_mut() {
        *periods = normalize_periods(std::mem::take(periods));
    }

    let schema = r1.schema().clone();
    let mut out: Vec<Tuple> = Vec::new();
    for t in r1.tuples() {
        let key = t.explicit_values(&schema);
        let mut fragments = vec![t.period(&schema)?];
        if let Some(subtrahends) = right.get(&key) {
            for s in subtrahends {
                let mut next = Vec::with_capacity(fragments.len() + 1);
                for f in fragments {
                    next.extend(f.subtract(s));
                }
                fragments = next;
                if fragments.is_empty() {
                    break;
                }
            }
        }
        for f in fragments {
            out.push(t.with_period(&schema, f)?);
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::equivalence::equiv_snapshot_multiset;
    use tqo_core::ops::difference_t;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn schema() -> Schema {
        Schema::temporal(&[("E", DataType::Str)])
    }

    #[test]
    fn agrees_with_sweep_up_to_snapshots() {
        let r1 = Relation::new(
            schema(),
            vec![
                tuple!["a", 1i64, 8i64],
                tuple!["a", 8i64, 12i64], // adjacent fragments preserved here
                tuple!["b", 2i64, 6i64],
            ],
        )
        .unwrap();
        let r2 = Relation::new(
            schema(),
            vec![tuple!["a", 3i64, 5i64], tuple!["b", 0i64, 10i64]],
        )
        .unwrap();
        let fast = difference_t_subtract_union(&r1, &r2).unwrap();
        let faithful = difference_t(&r1, &r2).unwrap();
        assert!(equiv_snapshot_multiset(&fast, &faithful).unwrap());
        // Fragment boundaries are kept: [5,8) and [8,12) stay separate.
        assert_eq!(
            fast.tuples(),
            &[
                tuple!["a", 1i64, 3i64],
                tuple!["a", 5i64, 8i64],
                tuple!["a", 8i64, 12i64],
            ]
        );
    }

    #[test]
    fn rejects_snapshot_duplicated_left() {
        let dirty = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 5i64], tuple!["a", 3i64, 8i64]],
        )
        .unwrap();
        let r2 = Relation::new(schema(), vec![tuple!["a", 2i64, 3i64]]).unwrap();
        assert!(difference_t_subtract_union(&dirty, &r2).is_err());
    }

    #[test]
    fn empty_right_is_identity() {
        let r1 = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let r2 = Relation::empty(schema());
        let got = difference_t_subtract_union(&r1, &r2).unwrap();
        assert_eq!(got.tuples(), r1.tuples());
    }

    #[test]
    fn multi_subtrahend_fragmentation() {
        let r1 = Relation::new(schema(), vec![tuple!["a", 0i64, 20i64]]).unwrap();
        let r2 = Relation::new(
            schema(),
            vec![
                tuple!["a", 2i64, 4i64],
                tuple!["a", 6i64, 8i64],
                tuple!["a", 10i64, 12i64],
            ],
        )
        .unwrap();
        let got = difference_t_subtract_union(&r1, &r2).unwrap();
        assert_eq!(got.len(), 4);
        let faithful = difference_t(&r1, &r2).unwrap();
        assert!(equiv_snapshot_multiset(&got, &faithful).unwrap());
    }
}
