//! `EXPLAIN ANALYZE`: execute a plan, then render it annotated with what
//! actually happened.
//!
//! The renderer joins the physical plan's tree shape with the engines'
//! post-order [`OperatorMetrics`] and prints, per operator: estimated
//! rows, actual rows, the q-error between them, **exclusive** wall time
//! (children subtracted), cpu time with the worker count that produced
//! it, and output throughput (`—` when the operator finished below the
//! timer's resolution). The same columns render on all three engines —
//! row, batch, and morsel-parallel — and through the stratum, so a plan
//! can be compared across engines line by line.
//!
//! Adaptive runs have no single static plan (the remainder is re-lowered
//! at checkpoints), so they render as a flat list in execution order with
//! each re-opt decision inlined directly after its checkpoint operator.
//!
//! Analysis never perturbs the query: the result relation returned by
//! [`explain_analyze`] is byte-identical to a plain
//! [`execute_logical`](crate::executor::execute_logical) run.

use std::time::Duration;

use tqo_core::error::Result;
use tqo_core::interp::Env;
use tqo_core::plan::LogicalPlan;
use tqo_core::relation::Relation;

use crate::executor::execute_mode;
use crate::metrics::{ExecMetrics, OperatorMetrics};
use crate::physical::{PhysicalNode, PhysicalPlan};
use crate::planner::{lower, PlannerConfig};

/// The output of [`explain_analyze`]: the (unperturbed) query result, the
/// raw metrics, and the rendered report.
#[derive(Debug)]
pub struct Analyzed {
    /// The query result — byte-identical to a plain execution.
    pub result: Relation,
    /// The per-operator metrics the report was rendered from.
    pub metrics: ExecMetrics,
    /// The executed physical plan (`None` under adaptive execution,
    /// which stages and re-lowers rather than fixing one plan).
    pub plan: Option<PhysicalPlan>,
    /// The annotated report.
    pub report: String,
}

/// Lower and execute `plan` on the engine selected by `config.mode`
/// (adaptively when `config.adaptive` is set), then render the analyze
/// report.
pub fn explain_analyze(plan: &LogicalPlan, env: &Env, config: PlannerConfig) -> Result<Analyzed> {
    if config.adaptive.is_some() {
        let (result, metrics) = crate::adaptive::execute_adaptive(plan, env, None, config)?;
        let report = render(None, &metrics, &engine_name(config));
        return Ok(Analyzed {
            result,
            metrics,
            plan: None,
            report,
        });
    }
    let physical = lower(plan, config)?;
    let (result, metrics) = execute_mode(&physical, env, config.mode)?;
    let report = render(Some(&physical), &metrics, &engine_name(config));
    Ok(Analyzed {
        result,
        metrics,
        plan: Some(physical),
        report,
    })
}

fn engine_name(config: PlannerConfig) -> String {
    if config.adaptive.is_some() {
        format!("{:?}, adaptive", config.mode)
    } else {
        format!("{:?}", config.mode)
    }
}

/// Render the analyze report for an executed plan.
///
/// With `plan` given (and its post-order matching `metrics.operators`),
/// operators render as an indented tree in plan order. Without it —
/// adaptive runs, or metrics from a staged execution — operators render
/// as a flat list in execution order. Re-opt events are inlined after
/// the checkpoint operator they fired at in both shapes.
pub fn render(plan: Option<&PhysicalPlan>, metrics: &ExecMetrics, engine: &str) -> String {
    let mut out = format!("EXPLAIN ANALYZE ({engine} engine)\n");
    out.push_str(&format!(
        "{:<44} {:>9} {:>9} {:>7} {:>11} {:>11} {:>4} {:>12}\n",
        "operator", "est rows", "act rows", "q-err", "time", "cpu", "thr", "rows/s"
    ));
    match plan {
        Some(p) if p.root.size() == metrics.operators.len() => {
            render_tree(&p.root, 0, &mut PostOrder { offset: 0 }, metrics, &mut out);
        }
        _ => {
            let mut reopt_cursor = 0usize;
            for op in &metrics.operators {
                out.push_str(&row(&op.label, 0, op));
                // A stage always ends at its checkpoint breaker: inline
                // the decision right where it happened.
                if metrics
                    .reopts
                    .get(reopt_cursor)
                    .is_some_and(|e| e.checkpoint == op.label)
                {
                    out.push_str(&format!(
                        "  ↳ {}\n",
                        metrics.reopts[reopt_cursor].describe()
                    ));
                    reopt_cursor += 1;
                }
            }
        }
    }
    let wall = metrics.total_time();
    let cpu = metrics.total_cpu_time();
    out.push_str(&format!(
        "total: {wall:?} operator wall, {cpu:?} cpu across {} operator(s)",
        metrics.operators.len()
    ));
    if let Some(q) = metrics.median_q_error() {
        out.push_str(&format!(", median q-error {q:.2}"));
    }
    if !metrics.reopts.is_empty() {
        out.push_str(&format!(
            ", {} checkpoint(s) / {} re-plan(s)",
            metrics.reopts.len(),
            metrics.replanned_count()
        ));
    }
    out.push('\n');
    out
}

/// Post-order index bookkeeping for the tree renderer: each subtree of
/// size `n` occupies `n` consecutive post-order slots, the root taking
/// the last one.
struct PostOrder {
    offset: usize,
}

fn render_tree(
    node: &PhysicalNode,
    depth: usize,
    po: &mut PostOrder,
    metrics: &ExecMetrics,
    out: &mut String,
) {
    // The node's post-order index is offset + size - 1; children occupy
    // the slots before it in declaration order.
    let index = po.offset + node.size() - 1;
    let op = &metrics.operators[index];
    out.push_str(&row(&op.label, depth, op));
    let mut child_offset = po.offset;
    for c in node.children() {
        let mut child_po = PostOrder {
            offset: child_offset,
        };
        render_tree(c, depth + 1, &mut child_po, metrics, out);
        child_offset += c.size();
    }
    po.offset = index + 1;
}

fn row(label: &str, depth: usize, op: &OperatorMetrics) -> String {
    let indented = format!("{}{}", "  ".repeat(depth), label);
    let est = op.est_rows.map_or_else(|| "-".into(), |e| e.to_string());
    let q = op
        .q_error()
        .map_or_else(|| "-".into(), |q| format!("{q:.2}"));
    let cpu = format!("{:?}", op.cpu_time());
    let rate = op
        .throughput()
        .map_or_else(|| "—".into(), |r| format!("{r:.0}"));
    format!(
        "{indented:<44} {est:>9} {:>9} {q:>7} {:>11} {cpu:>11} {:>4} {rate:>12}\n",
        op.rows_out,
        format!("{:?}", op.elapsed),
        op.threads(),
    )
}

/// Debug-assertion helper shared by tests: for serial engines every
/// operator must report `cpu_time == elapsed` (no thread breakdown to
/// diverge), and on every engine the sum of exclusive operator times can
/// never exceed `wall` (the measured end-to-end query time).
pub fn check_time_invariants(metrics: &ExecMetrics, wall: Duration, serial: bool) {
    if serial {
        for op in &metrics.operators {
            assert!(
                op.thread_times.is_empty() && op.cpu_time() == op.elapsed,
                "serial operator `{}` must report cpu_time == elapsed",
                op.label
            );
        }
    }
    let sum = metrics.total_time();
    assert!(
        sum <= wall,
        "sum of exclusive operator times {sum:?} exceeds query wall time {wall:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecMode;
    use crate::metrics::ReoptEvent;
    use tqo_core::equivalence::ResultType;
    use tqo_core::plan::PlanBuilder;
    use tqo_core::sortspec::Order;
    use tqo_storage::paper;

    fn figure2a() -> LogicalPlan {
        let cat = paper::catalog();
        let emp = PlanBuilder::scan("EMPLOYEE", cat.base_props("EMPLOYEE").unwrap())
            .project_cols(&["EmpName", "T1", "T2"])
            .rdup_t();
        let prj = PlanBuilder::scan("PROJECT", cat.base_props("PROJECT").unwrap())
            .project_cols(&["EmpName", "T1", "T2"]);
        let root = emp
            .difference_t(prj)
            .rdup_t()
            .coalesce()
            .sort(Order::asc(&["EmpName"]))
            .node();
        LogicalPlan::new(root, ResultType::List(Order::asc(&["EmpName"])))
    }

    #[test]
    fn analyze_renders_every_operator_with_columns() {
        let cat = paper::catalog();
        for mode in [
            ExecMode::Row,
            ExecMode::Batch,
            ExecMode::Parallel { threads: 2 },
        ] {
            let a = explain_analyze(
                &figure2a(),
                &cat.env(),
                PlannerConfig {
                    mode,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.result, paper::figure1_result());
            let plan = a.plan.as_ref().unwrap();
            assert_eq!(plan.root.size(), a.metrics.operators.len());
            for col in ["est rows", "act rows", "q-err", "cpu", "thr", "rows/s"] {
                assert!(
                    a.report.contains(col),
                    "missing column {col}:\n{}",
                    a.report
                );
            }
            for op in &a.metrics.operators {
                assert!(
                    a.report.contains(&op.label),
                    "missing {}:\n{}",
                    op.label,
                    a.report
                );
            }
            // The tree view indents children under the root operator.
            assert!(a.report.contains("\n  "), "no indentation:\n{}", a.report);
        }
    }

    #[test]
    fn flat_view_inlines_reopts_after_their_checkpoint() {
        let op = |label: &str| OperatorMetrics {
            label: label.into(),
            rows_in: 0,
            rows_out: 5,
            est_rows: Some(50),
            batches: 1,
            elapsed: Duration::from_micros(3),
            thread_times: Vec::new(),
        };
        let metrics = ExecMetrics {
            operators: vec![op("scan(R)"), op("rdupT[sweep]"), op("sort[stable]")],
            reopts: vec![ReoptEvent {
                checkpoint: "rdupT[sweep]".into(),
                est_rows: Some(50),
                actual_rows: 5,
                q_error: Some(10.0),
                replanned: true,
                plan_changed: true,
            }],
        };
        let report = render(None, &metrics, "Batch, adaptive");
        let reopt_at = report
            .find("↳ reopt @ rdupT[sweep]")
            .expect("inlined event");
        let sort_at = report.find("sort[stable]").unwrap();
        assert!(
            reopt_at < sort_at,
            "re-opt must appear before the next stage:\n{report}"
        );
        assert!(report.contains("plan CHANGED"), "{report}");
    }

    #[test]
    fn sub_resolution_operators_render_a_dash() {
        let metrics = ExecMetrics {
            operators: vec![OperatorMetrics {
                label: "select".into(),
                rows_in: 1,
                rows_out: 1,
                est_rows: None,
                batches: 1,
                elapsed: Duration::ZERO,
                thread_times: Vec::new(),
            }],
            reopts: Vec::new(),
        };
        let report = render(None, &metrics, "Row");
        let line = report.lines().find(|l| l.contains("select")).unwrap();
        assert!(line.trim_end().ends_with('—'), "{report}");
    }
}
