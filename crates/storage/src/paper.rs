//! The exact relations of the paper's Figure 1, and the expected results of
//! Figures 1 and 3 — the ground truth for the figure-reproduction tests.

use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::tuple;
use tqo_core::value::DataType;

use crate::catalog::Catalog;

/// Schema of the EMPLOYEE relation: `(EmpName, Dept, T1, T2)`.
pub fn employee_schema() -> Schema {
    Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)])
}

/// Schema of the PROJECT relation: `(EmpName, Prj, T1, T2)`.
pub fn project_schema() -> Schema {
    Schema::temporal(&[("EmpName", DataType::Str), ("Prj", DataType::Str)])
}

/// Figure 1's EMPLOYEE relation.
pub fn employee() -> Relation {
    Relation::new(
        employee_schema(),
        vec![
            tuple!["John", "Sales", 1i64, 8i64],
            tuple!["John", "Advertising", 6i64, 11i64],
            tuple!["Anna", "Sales", 2i64, 6i64],
            tuple!["Anna", "Advertising", 2i64, 6i64],
            tuple!["Anna", "Sales", 6i64, 12i64],
        ],
    )
    .expect("static relation is valid")
}

/// Figure 1's PROJECT relation.
pub fn project() -> Relation {
    Relation::new(
        project_schema(),
        vec![
            tuple!["John", "P1", 2i64, 3i64],
            tuple!["John", "P2", 5i64, 6i64],
            tuple!["John", "P1", 7i64, 8i64],
            tuple!["John", "P3", 9i64, 10i64],
            tuple!["Anna", "P2", 3i64, 4i64],
            tuple!["Anna", "P2", 5i64, 6i64],
            tuple!["Anna", "P3", 7i64, 8i64],
            tuple!["Anna", "P3", 9i64, 10i64],
        ],
    )
    .expect("static relation is valid")
}

/// Figure 1's Result relation: "which employees worked in a department but
/// not on any project, and when" — sorted, coalesced, without snapshot
/// duplicates.
pub fn figure1_result() -> Relation {
    Relation::new(
        Schema::temporal(&[("EmpName", DataType::Str)]),
        vec![
            tuple!["Anna", 2i64, 3i64],
            tuple!["Anna", 4i64, 5i64],
            tuple!["Anna", 6i64, 7i64],
            tuple!["Anna", 8i64, 9i64],
            tuple!["Anna", 10i64, 12i64],
            tuple!["John", 1i64, 2i64],
            tuple!["John", 3i64, 5i64],
            tuple!["John", 6i64, 7i64],
            tuple!["John", 8i64, 9i64],
            tuple!["John", 10i64, 11i64],
        ],
    )
    .expect("static relation is valid")
}

/// Figure 3's `R1 = π_{EmpName,T1,T2}(EMPLOYEE)`.
pub fn figure3_r1() -> Relation {
    Relation::new(
        Schema::temporal(&[("EmpName", DataType::Str)]),
        vec![
            tuple!["John", 1i64, 8i64],
            tuple!["John", 6i64, 11i64],
            tuple!["Anna", 2i64, 6i64],
            tuple!["Anna", 2i64, 6i64],
            tuple!["Anna", 6i64, 12i64],
        ],
    )
    .expect("static relation is valid")
}

/// Figure 3's `R2 = rdup(R1)` — a snapshot relation with demoted time
/// attributes.
pub fn figure3_r2() -> Relation {
    Relation::new(
        Schema::of(&[
            ("EmpName", DataType::Str),
            ("1.T1", DataType::Time),
            ("1.T2", DataType::Time),
        ]),
        vec![
            tuple!["John", 1i64, 8i64],
            tuple!["John", 6i64, 11i64],
            tuple!["Anna", 2i64, 6i64],
            tuple!["Anna", 6i64, 12i64],
        ],
    )
    .expect("static relation is valid")
}

/// Figure 3's `R3 = rdupᵀ(R1)` — note John's trimmed second period.
pub fn figure3_r3() -> Relation {
    Relation::new(
        Schema::temporal(&[("EmpName", DataType::Str)]),
        vec![
            tuple!["John", 1i64, 8i64],
            tuple!["John", 8i64, 11i64],
            tuple!["Anna", 2i64, 6i64],
            tuple!["Anna", 6i64, 12i64],
        ],
    )
    .expect("static relation is valid")
}

/// A catalog pre-loaded with Figure 1's EMPLOYEE and PROJECT.
pub fn catalog() -> Catalog {
    let cat = Catalog::new();
    cat.register("EMPLOYEE", employee()).expect("valid");
    cat.register("PROJECT", project()).expect("valid");
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_have_expected_sizes() {
        assert_eq!(employee().len(), 5);
        assert_eq!(project().len(), 8);
        assert_eq!(figure1_result().len(), 10);
        assert_eq!(figure3_r1().len(), 5);
        assert_eq!(figure3_r2().len(), 4);
        assert_eq!(figure3_r3().len(), 4);
    }

    #[test]
    fn figure3_relations_relate_as_the_paper_says() {
        use tqo_core::ops::{rdup, rdup_t};
        assert_eq!(rdup(&figure3_r1()).unwrap(), figure3_r2());
        assert_eq!(rdup_t(&figure3_r1()).unwrap(), figure3_r3());
    }

    #[test]
    fn catalog_is_loaded() {
        let cat = catalog();
        assert!(cat.contains("EMPLOYEE"));
        assert!(cat.contains("PROJECT"));
        // EMPLOYEE itself is snapshot-dup-free (John's overlapping rows
        // differ on Dept); snapshot duplicates only arise after projecting
        // onto EmpName — which is why Figure 2(a) needs the lower rdupᵀ.
        assert!(cat.base_props("EMPLOYEE").unwrap().snapshot_dup_free);
        assert!(tqo_core::ops::project(
            &employee(),
            &[
                tqo_core::expr::ProjItem::col("EmpName"),
                tqo_core::expr::ProjItem::col("T1"),
                tqo_core::expr::ProjItem::col("T2")
            ]
        )
        .unwrap()
        .has_snapshot_duplicates()
        .unwrap());
    }
}
