//! Stored tables: a relation plus its declared invariants.

use std::sync::Arc;

use parking_lot::RwLock;

use tqo_core::error::{Error, Result};
use tqo_core::plan::BaseProps;
use tqo_core::relation::Relation;
use tqo_core::stats::TableSummary;
use tqo_core::trace::counters;
use tqo_core::tuple::Tuple;

use crate::stats::TableStats;

/// A stored relation. The declared [`BaseProps`] are *verified* on
/// construction and after every mutation, so `Scan` nodes embedding them
/// can be trusted by the optimizer.
///
/// Statistics (histograms, distinct counts, time ranges) are computed
/// lazily on first use and cached; every mutation path invalidates the
/// cache, so readers never see statistics of a previous version.
#[derive(Debug)]
pub struct Table {
    name: String,
    relation: Relation,
    props: BaseProps,
    /// Lazily computed statistics cache. `None` = not yet measured (or
    /// invalidated by a mutation).
    stats: RwLock<Option<(Arc<TableStats>, Arc<TableSummary>)>>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            relation: self.relation.clone(),
            props: self.props.clone(),
            stats: RwLock::new(self.stats.read().clone()),
        }
    }
}

impl Table {
    /// Create a table, deriving honest base properties from the data:
    /// duplicate-freedom, snapshot-duplicate-freedom, and coalescedness are
    /// measured, not assumed.
    pub fn new(name: impl Into<String>, relation: Relation) -> Result<Table> {
        let name = name.into();
        let props = derive_props(&relation)?;
        Ok(Table {
            name,
            relation,
            props,
            stats: RwLock::new(None),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Declared base properties *without* statistics; planners wanting
    /// statistics-driven estimation use [`Table::planning_props`].
    pub fn props(&self) -> &BaseProps {
        &self.props
    }

    /// Base properties with the measured [`TableSummary`] attached — what
    /// catalog-backed scans embed so the optimizer estimates from data.
    pub fn planning_props(&self) -> BaseProps {
        self.props.clone().with_summary(self.summary())
    }

    /// Measured statistics, computed on first call and cached until the
    /// next mutation.
    pub fn stats(&self) -> Arc<TableStats> {
        self.measured().0
    }

    /// The core-side summary of [`Table::stats`] (same cache).
    pub fn summary(&self) -> Arc<TableSummary> {
        self.measured().1
    }

    fn measured(&self) -> (Arc<TableStats>, Arc<TableSummary>) {
        if let Some(cached) = self.stats.read().clone() {
            counters::STATS_CACHE_HITS.incr();
            return cached;
        }
        counters::STATS_CACHE_MISSES.incr();
        let stats = Arc::new(
            TableStats::compute(&self.relation)
                .expect("statistics over a validated relation cannot fail"),
        );
        let summary = Arc::new(stats.summary());
        let mut slot = self.stats.write();
        // A racing writer may have filled the slot; either value is
        // equivalent (the relation is immutable between mutations).
        slot.get_or_insert((stats, summary)).clone()
    }

    /// Invalidation hook: drop cached statistics. Called by every mutation
    /// path; public so external bulk loaders can force re-measurement.
    pub fn invalidate_stats(&self) {
        let mut slot = self.stats.write();
        if slot.is_some() {
            counters::STATS_CACHE_INVALIDATIONS.incr();
        }
        *slot = None;
    }

    /// True when statistics are currently cached (test/diagnostic hook).
    pub fn stats_cached(&self) -> bool {
        self.stats.read().is_some()
    }

    pub fn len(&self) -> usize {
        self.relation.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Append tuples, revalidating and re-deriving properties.
    pub fn insert(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        let mut all = self.relation.tuples().to_vec();
        all.extend(tuples);
        let relation = Relation::new(self.relation.schema().clone(), all)?;
        self.props = derive_props(&relation)?;
        self.relation = relation;
        self.invalidate_stats();
        Ok(())
    }

    /// Replace the contents wholesale.
    pub fn replace(&mut self, relation: Relation) -> Result<()> {
        if !relation.schema().union_compatible(self.relation.schema()) {
            return Err(Error::SchemaMismatch {
                left: self.relation.schema().to_string(),
                right: relation.schema().to_string(),
                context: "table replace",
            });
        }
        self.props = derive_props(&relation)?;
        self.relation = relation;
        self.invalidate_stats();
        Ok(())
    }
}

/// Measure the honest base properties of a relation.
pub fn derive_props(relation: &Relation) -> Result<BaseProps> {
    let temporal = relation.is_temporal();
    Ok(BaseProps {
        schema: relation.schema().clone(),
        order: tqo_core::sortspec::Order::unordered(),
        dup_free: !relation.has_duplicates(),
        snapshot_dup_free: if temporal {
            !relation.has_snapshot_duplicates()?
        } else {
            !relation.has_duplicates()
        },
        coalesced: if temporal {
            relation.is_coalesced()?
        } else {
            true
        },
        card: relation.len() as u64,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn schema() -> Schema {
        Schema::temporal(&[("E", DataType::Str)])
    }

    #[test]
    fn props_are_measured() {
        let r = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 5i64], tuple!["a", 3i64, 8i64]],
        )
        .unwrap();
        let t = Table::new("T", r).unwrap();
        assert!(t.props().dup_free);
        assert!(!t.props().snapshot_dup_free); // overlap at [3,5)
        assert!(t.props().coalesced);
        assert_eq!(t.props().card, 2);
    }

    #[test]
    fn insert_revalidates() {
        let r = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let mut t = Table::new("T", r).unwrap();
        assert!(t.props().snapshot_dup_free);
        t.insert(vec![tuple!["a", 2i64, 4i64]]).unwrap();
        assert!(!t.props().snapshot_dup_free);
        assert_eq!(t.len(), 2);
        // Bad tuples are rejected and leave the table untouched.
        assert!(t.insert(vec![tuple!["x", 9i64, 3i64]]).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replace_checks_schema() {
        let r = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let mut t = Table::new("T", r).unwrap();
        let other = Relation::new(Schema::of(&[("X", DataType::Int)]), vec![tuple![1i64]]).unwrap();
        assert!(t.replace(other).is_err());
        let ok = Relation::new(schema(), vec![tuple!["b", 2i64, 3i64]]).unwrap();
        t.replace(ok).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stats_are_lazy_cached_and_invalidated() {
        let r = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 5i64], tuple!["b", 2i64, 4i64]],
        )
        .unwrap();
        let mut t = Table::new("T", r).unwrap();
        assert!(!t.stats_cached(), "stats must not be computed eagerly");
        assert_eq!(t.stats().distinct("E"), Some(2));
        assert!(t.stats_cached());
        // Mutation invalidates; the next read re-measures.
        t.insert(vec![tuple!["c", 1i64, 2i64]]).unwrap();
        assert!(!t.stats_cached(), "insert must invalidate the cache");
        assert_eq!(t.stats().distinct("E"), Some(3));
        assert_eq!(t.summary().rows, 3);
    }

    #[test]
    fn planning_props_attach_summary() {
        let r = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let t = Table::new("T", r).unwrap();
        let props = t.planning_props();
        let summary = props.stats.expect("summary attached");
        assert_eq!(summary.rows, 1);
        assert_eq!(props.card, 1);
    }
}
