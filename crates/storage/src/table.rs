//! Stored tables: a relation plus its declared invariants.

use tqo_core::error::{Error, Result};
use tqo_core::plan::BaseProps;
use tqo_core::relation::Relation;
use tqo_core::tuple::Tuple;

use crate::stats::TableStats;

/// A stored relation. The declared [`BaseProps`] are *verified* on
/// construction and after every mutation, so `Scan` nodes embedding them
/// can be trusted by the optimizer.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    relation: Relation,
    props: BaseProps,
    stats: TableStats,
}

impl Table {
    /// Create a table, deriving honest base properties from the data:
    /// duplicate-freedom, snapshot-duplicate-freedom, and coalescedness are
    /// measured, not assumed.
    pub fn new(name: impl Into<String>, relation: Relation) -> Result<Table> {
        let name = name.into();
        let props = derive_props(&relation)?;
        let stats = TableStats::compute(&relation)?;
        Ok(Table {
            name,
            relation,
            props,
            stats,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    pub fn props(&self) -> &BaseProps {
        &self.props
    }

    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    pub fn len(&self) -> usize {
        self.relation.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Append tuples, revalidating and re-deriving properties.
    pub fn insert(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        let mut all = self.relation.tuples().to_vec();
        all.extend(tuples);
        let relation = Relation::new(self.relation.schema().clone(), all)?;
        self.props = derive_props(&relation)?;
        self.stats = TableStats::compute(&relation)?;
        self.relation = relation;
        Ok(())
    }

    /// Replace the contents wholesale.
    pub fn replace(&mut self, relation: Relation) -> Result<()> {
        if !relation.schema().union_compatible(self.relation.schema()) {
            return Err(Error::SchemaMismatch {
                left: self.relation.schema().to_string(),
                right: relation.schema().to_string(),
                context: "table replace",
            });
        }
        self.props = derive_props(&relation)?;
        self.stats = TableStats::compute(&relation)?;
        self.relation = relation;
        Ok(())
    }
}

/// Measure the honest base properties of a relation.
pub fn derive_props(relation: &Relation) -> Result<BaseProps> {
    let temporal = relation.is_temporal();
    Ok(BaseProps {
        schema: relation.schema().clone(),
        order: tqo_core::sortspec::Order::unordered(),
        dup_free: !relation.has_duplicates(),
        snapshot_dup_free: if temporal {
            !relation.has_snapshot_duplicates()?
        } else {
            !relation.has_duplicates()
        },
        coalesced: if temporal {
            relation.is_coalesced()?
        } else {
            true
        },
        card: relation.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn schema() -> Schema {
        Schema::temporal(&[("E", DataType::Str)])
    }

    #[test]
    fn props_are_measured() {
        let r = Relation::new(
            schema(),
            vec![tuple!["a", 1i64, 5i64], tuple!["a", 3i64, 8i64]],
        )
        .unwrap();
        let t = Table::new("T", r).unwrap();
        assert!(t.props().dup_free);
        assert!(!t.props().snapshot_dup_free); // overlap at [3,5)
        assert!(t.props().coalesced);
        assert_eq!(t.props().card, 2);
    }

    #[test]
    fn insert_revalidates() {
        let r = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let mut t = Table::new("T", r).unwrap();
        assert!(t.props().snapshot_dup_free);
        t.insert(vec![tuple!["a", 2i64, 4i64]]).unwrap();
        assert!(!t.props().snapshot_dup_free);
        assert_eq!(t.len(), 2);
        // Bad tuples are rejected and leave the table untouched.
        assert!(t.insert(vec![tuple!["x", 9i64, 3i64]]).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replace_checks_schema() {
        let r = Relation::new(schema(), vec![tuple!["a", 1i64, 5i64]]).unwrap();
        let mut t = Table::new("T", r).unwrap();
        let other = Relation::new(Schema::of(&[("X", DataType::Int)]), vec![tuple![1i64]]).unwrap();
        assert!(t.replace(other).is_err());
        let ok = Relation::new(schema(), vec![tuple!["b", 2i64, 3i64]]).unwrap();
        t.replace(ok).unwrap();
        assert_eq!(t.len(), 1);
    }
}
