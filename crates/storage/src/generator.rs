//! Seeded synthetic workload generators.
//!
//! The paper's evaluation is the EMPLOYEE/PROJECT scenario of Figure 1;
//! these generators reproduce its *shape* at arbitrary scale with three
//! independently tunable knobs, each exercising a distinct optimizer
//! concern:
//!
//! * `adjacency_prob` — consecutive periods of a value-equivalence class
//!   meet exactly, creating coalescing potential (`coalᵀ` work);
//! * `overlap_prob` — consecutive periods overlap, creating snapshot
//!   duplicates (`rdupᵀ` work and the D2/C10 preconditions);
//! * `duplicate_prob` — exact duplicate tuples (regular `rdup` work).
//!
//! All generation is deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tqo_core::error::Result;
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::time::Instant;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};

use crate::catalog::Catalog;

/// Configuration of one generated temporal relation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of value-equivalence classes (e.g. employees).
    pub classes: usize,
    /// Periods ("fragments") per class.
    pub fragments_per_class: usize,
    /// Start of the covered time range.
    pub time_origin: Instant,
    /// Mean period duration (durations are uniform in `1..=2·mean`).
    pub mean_duration: i64,
    /// Mean gap between consecutive periods of one class.
    pub mean_gap: i64,
    /// Probability that a period starts exactly where the previous one
    /// ended (adjacent — coalescible).
    pub adjacency_prob: f64,
    /// Probability that a period starts before the previous one ended
    /// (overlapping — snapshot duplicates).
    pub overlap_prob: f64,
    /// Probability of emitting an exact duplicate of a generated tuple.
    pub duplicate_prob: f64,
    /// Shuffle the output list (base tables are unordered).
    pub shuffle: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            classes: 100,
            fragments_per_class: 10,
            time_origin: 0,
            mean_duration: 10,
            mean_gap: 5,
            adjacency_prob: 0.3,
            overlap_prob: 0.0,
            duplicate_prob: 0.0,
            shuffle: true,
        }
    }
}

impl GenConfig {
    /// Expected output cardinality (ignoring duplicates).
    pub fn base_rows(&self) -> usize {
        self.classes * self.fragments_per_class
    }

    /// A configuration whose output is fully clean: no adjacency, no
    /// overlap, no duplicates — already coalesced and snapshot-dup-free.
    pub fn clean(classes: usize, fragments_per_class: usize) -> GenConfig {
        GenConfig {
            classes,
            fragments_per_class,
            adjacency_prob: 0.0,
            overlap_prob: 0.0,
            duplicate_prob: 0.0,
            ..GenConfig::default()
        }
    }

    /// A heavily fragmented configuration (high coalescing potential).
    pub fn fragmented(classes: usize, fragments_per_class: usize) -> GenConfig {
        GenConfig {
            classes,
            fragments_per_class,
            adjacency_prob: 0.9,
            mean_gap: 3,
            ..GenConfig::default()
        }
    }
}

/// A seeded generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
}

impl WorkloadGenerator {
    pub fn new(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate the period list for one class.
    fn class_periods(&mut self, cfg: &GenConfig) -> Vec<(Instant, Instant)> {
        let mut out = Vec::with_capacity(cfg.fragments_per_class);
        let mut cursor = cfg.time_origin + self.rng.gen_range(0..=cfg.mean_gap.max(1));
        for _ in 0..cfg.fragments_per_class {
            let duration = self.rng.gen_range(1..=(2 * cfg.mean_duration).max(1));
            let roll: f64 = self.rng.gen();
            let start = if roll < cfg.adjacency_prob && !out.is_empty() {
                cursor // adjacent: starts exactly at the previous end
            } else if roll < cfg.adjacency_prob + cfg.overlap_prob && !out.is_empty() {
                // overlapping: start strictly inside the previous period
                let (ps, pe) = *out.last().expect("nonempty");
                self.rng.gen_range(ps..pe)
            } else {
                cursor + self.rng.gen_range(1..=(2 * cfg.mean_gap).max(1))
            };
            let end = start + duration;
            out.push((start, end));
            cursor = cursor.max(end);
        }
        out
    }

    /// A generic single-attribute temporal relation `(E, T1, T2)` with
    /// class values `e0, e1, …`.
    pub fn temporal(&mut self, cfg: &GenConfig) -> Result<Relation> {
        let schema = Schema::temporal(&[("E", DataType::Str)]);
        let names: Vec<String> = (0..cfg.classes).map(|i| format!("e{i}")).collect();
        self.temporal_with_values(cfg, schema, |i| vec![Value::Str(names[i].clone().into())])
    }

    /// An EMPLOYEE-shaped relation `(EmpName, Dept, T1, T2)`.
    pub fn employees(&mut self, cfg: &GenConfig, depts: usize) -> Result<Relation> {
        let schema = Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)]);
        let mut dept_of = Vec::with_capacity(cfg.classes);
        for _ in 0..cfg.classes {
            dept_of.push(format!("d{}", self.rng.gen_range(0..depts.max(1))));
        }
        self.temporal_with_values(cfg, schema, |i| {
            vec![
                Value::Str(format!("emp{i}").into()),
                Value::Str(dept_of[i].clone().into()),
            ]
        })
    }

    /// A PROJECT-shaped relation `(EmpName, Prj, T1, T2)` over the same
    /// employee population (`emp0 …`), covering `participation` of them.
    pub fn projects(
        &mut self,
        cfg: &GenConfig,
        employees: usize,
        projects: usize,
        participation: f64,
    ) -> Result<Relation> {
        let schema = Schema::temporal(&[("EmpName", DataType::Str), ("Prj", DataType::Str)]);
        let mut participants = Vec::new();
        for i in 0..employees {
            if self.rng.gen::<f64>() < participation {
                participants.push(i);
            }
        }
        if participants.is_empty() && employees > 0 {
            participants.push(0);
        }
        let cfg = GenConfig {
            classes: participants.len(),
            ..cfg.clone()
        };
        let mut prj_of = Vec::with_capacity(participants.len());
        for _ in 0..participants.len() {
            prj_of.push(format!("P{}", self.rng.gen_range(0..projects.max(1))));
        }
        self.temporal_with_values(&cfg, schema, |i| {
            vec![
                Value::Str(format!("emp{}", participants[i]).into()),
                Value::Str(prj_of[i].clone().into()),
            ]
        })
    }

    /// Shared generation core: per class, generate periods and attach the
    /// class's explicit values.
    fn temporal_with_values(
        &mut self,
        cfg: &GenConfig,
        schema: Schema,
        mut values_of: impl FnMut(usize) -> Vec<Value>,
    ) -> Result<Relation> {
        let mut tuples = Vec::with_capacity(cfg.base_rows());
        for class in 0..cfg.classes {
            let explicit = values_of(class);
            for (start, end) in self.class_periods(cfg) {
                let mut values = explicit.clone();
                values.push(Value::Time(start));
                values.push(Value::Time(end));
                let t = Tuple::new(values);
                if self.rng.gen::<f64>() < cfg.duplicate_prob {
                    tuples.push(t.clone());
                }
                tuples.push(t);
            }
        }
        if cfg.shuffle {
            // Fisher–Yates with the generator's rng (deterministic in seed).
            for i in (1..tuples.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                tuples.swap(i, j);
            }
        }
        Relation::new(schema, tuples)
    }

    /// A conventional relation `(A: Int, B: Str)` with controlled
    /// duplication: `rows` tuples over `distinct_a` values of `A`.
    pub fn conventional(&mut self, rows: usize, distinct_a: usize) -> Result<Relation> {
        let schema = Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]);
        let mut tuples = Vec::with_capacity(rows);
        for _ in 0..rows {
            let a = self.rng.gen_range(0..distinct_a.max(1)) as i64;
            let b = format!("s{}", self.rng.gen_range(0..distinct_a.max(1)));
            tuples.push(Tuple::new(vec![Value::Int(a), Value::Str(b.into())]));
        }
        Relation::new(schema, tuples)
    }

    /// A scaled Figure 1 workload: EMPLOYEE and PROJECT registered in a
    /// fresh catalog. `scale` multiplies the number of employees.
    pub fn figure1_workload(&mut self, scale: usize) -> Result<Catalog> {
        let employees = 10 * scale.max(1);
        let emp_cfg = GenConfig {
            classes: employees,
            fragments_per_class: 4,
            adjacency_prob: 0.25,
            overlap_prob: 0.25,
            duplicate_prob: 0.05,
            ..GenConfig::default()
        };
        let prj_cfg = GenConfig {
            classes: employees, // overwritten by participation
            fragments_per_class: 6,
            adjacency_prob: 0.1,
            overlap_prob: 0.1,
            mean_duration: 4,
            ..GenConfig::default()
        };
        let cat = Catalog::new();
        cat.register("EMPLOYEE", self.employees(&emp_cfg, 1 + employees / 10)?)?;
        cat.register(
            "PROJECT",
            self.projects(&prj_cfg, employees, 3 + employees / 5, 0.8)?,
        )?;
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GenConfig::default();
        let a = WorkloadGenerator::new(42).temporal(&cfg).unwrap();
        let b = WorkloadGenerator::new(42).temporal(&cfg).unwrap();
        let c = WorkloadGenerator::new(43).temporal(&cfg).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clean_config_produces_clean_data() {
        let cfg = GenConfig::clean(20, 5);
        let r = WorkloadGenerator::new(7).temporal(&cfg).unwrap();
        assert_eq!(r.len(), 100);
        assert!(!r.has_duplicates());
        assert!(!r.has_snapshot_duplicates().unwrap());
        assert!(r.is_coalesced().unwrap());
    }

    #[test]
    fn overlap_knob_creates_snapshot_duplicates() {
        let cfg = GenConfig {
            classes: 20,
            fragments_per_class: 10,
            adjacency_prob: 0.0,
            overlap_prob: 0.8,
            ..GenConfig::default()
        };
        let r = WorkloadGenerator::new(7).temporal(&cfg).unwrap();
        assert!(r.has_snapshot_duplicates().unwrap());
    }

    #[test]
    fn adjacency_knob_creates_coalescing_potential() {
        let cfg = GenConfig::fragmented(20, 10);
        let r = WorkloadGenerator::new(7).temporal(&cfg).unwrap();
        assert!(!r.is_coalesced().unwrap());
        // Coalescing should shrink it substantially.
        let coalesced = tqo_core::ops::coalesce(&r).unwrap();
        assert!(coalesced.len() < r.len());
    }

    #[test]
    fn duplicate_knob_creates_duplicates() {
        let cfg = GenConfig {
            duplicate_prob: 0.5,
            ..GenConfig::clean(20, 5)
        };
        let r = WorkloadGenerator::new(7).temporal(&cfg).unwrap();
        assert!(r.has_duplicates());
        assert!(r.len() > 100);
    }

    #[test]
    fn employees_and_projects_share_population() {
        let mut g = WorkloadGenerator::new(1);
        let cfg = GenConfig::clean(30, 3);
        let emp = g.employees(&cfg, 5).unwrap();
        let prj = g.projects(&cfg, 30, 6, 0.5).unwrap();
        assert!(emp.len() == 90);
        assert!(!prj.is_empty());
        // Every project participant is an employee name emp0..emp29.
        let idx = prj.schema().resolve("EmpName").unwrap();
        for t in prj.tuples() {
            let name = t.value(idx).as_str().unwrap();
            assert!(name.starts_with("emp"));
            let n: usize = name[3..].parse().unwrap();
            assert!(n < 30);
        }
    }

    #[test]
    fn figure1_workload_registers_both_tables() {
        let cat = WorkloadGenerator::new(5).figure1_workload(2).unwrap();
        assert!(cat.contains("EMPLOYEE"));
        assert!(cat.contains("PROJECT"));
        assert!(cat.get("EMPLOYEE").unwrap().len() >= 80);
    }

    #[test]
    fn conventional_relation_shape() {
        let r = WorkloadGenerator::new(3).conventional(500, 10).unwrap();
        assert_eq!(r.len(), 500);
        assert!(r.has_duplicates() || r.len() <= 100); // 500 rows over ≤100 combos
    }
}
