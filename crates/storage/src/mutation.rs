//! Sequenced temporal modifications (§7's modification extension).
//!
//! Valid-time tables are modified *sequenced*: an insertion, deletion, or
//! update applies over an applicability period `[T1, T2)` and must leave
//! the history outside that period untouched. Deletion therefore subtracts
//! the period from matching tuples (splitting straddling tuples in two,
//! exactly the `Changeᵀ` arithmetic of `rdupᵀ`), and update rewrites only
//! the covered fragments.
//!
//! All functions are pure (`Relation → Relation`); [`crate::table::Table`]
//! wrappers re-derive the stored invariants afterwards.

use tqo_core::error::{Error, Result};
use tqo_core::expr::Expr;
use tqo_core::relation::Relation;
use tqo_core::time::Period;
use tqo_core::tuple::Tuple;

/// Sequenced INSERT: append a tuple valid over `period`.
pub fn insert_sequenced(
    relation: &Relation,
    values: Vec<tqo_core::value::Value>,
    period: Period,
) -> Result<Relation> {
    if !relation.is_temporal() {
        return Err(Error::NotTemporal {
            context: "sequenced insert",
        });
    }
    if period.is_empty() {
        return Err(Error::InvalidPeriod {
            start: period.start,
            end: period.end,
        });
    }
    let mut all = relation.tuples().to_vec();
    let mut v = values;
    v.push(tqo_core::value::Value::Time(period.start));
    v.push(tqo_core::value::Value::Time(period.end));
    all.push(Tuple::new(v));
    Relation::new(relation.schema().clone(), all)
}

/// Sequenced DELETE: remove the validity of every tuple satisfying
/// `predicate` over `period`. Tuples whose periods straddle the deletion
/// window are split; fully covered tuples disappear.
pub fn delete_sequenced(relation: &Relation, predicate: &Expr, period: Period) -> Result<Relation> {
    if !relation.is_temporal() {
        return Err(Error::NotTemporal {
            context: "sequenced delete",
        });
    }
    let schema = relation.schema().clone();
    let mut out = Vec::with_capacity(relation.len());
    for t in relation.tuples() {
        if !predicate.eval_predicate(&schema, t)? {
            out.push(t.clone());
            continue;
        }
        for fragment in t.period(&schema)?.subtract(&period) {
            out.push(t.with_period(&schema, fragment)?);
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// Sequenced UPDATE: for every tuple satisfying `predicate`, replace the
/// explicit values over the intersection with `period` via `apply`; the
/// uncovered fragments keep the old values.
pub fn update_sequenced(
    relation: &Relation,
    predicate: &Expr,
    period: Period,
    apply: impl Fn(&Tuple) -> Result<Tuple>,
) -> Result<Relation> {
    if !relation.is_temporal() {
        return Err(Error::NotTemporal {
            context: "sequenced update",
        });
    }
    let schema = relation.schema().clone();
    let mut out = Vec::with_capacity(relation.len() + 4);
    for t in relation.tuples() {
        let p = t.period(&schema)?;
        let covered = p.intersect(&period);
        if !predicate.eval_predicate(&schema, t)? || covered.is_none() {
            out.push(t.clone());
            continue;
        }
        let covered = covered.expect("checked above");
        // Old values outside the window…
        for fragment in p.subtract(&period) {
            out.push(t.with_period(&schema, fragment)?);
        }
        // …new values inside it.
        let updated = apply(t)?;
        if updated.arity() != t.arity() {
            return Err(Error::MalformedTuple {
                reason: "sequenced update must preserve arity".into(),
            });
        }
        out.push(updated.with_period(&schema, covered)?);
    }
    Relation::new(schema, out)
}

impl crate::table::Table {
    /// Sequenced INSERT on a stored table.
    pub fn insert_sequenced(
        &mut self,
        values: Vec<tqo_core::value::Value>,
        period: Period,
    ) -> Result<()> {
        let next = insert_sequenced(self.relation(), values, period)?;
        self.replace(next)
    }

    /// Sequenced DELETE on a stored table.
    pub fn delete_sequenced(&mut self, predicate: &Expr, period: Period) -> Result<()> {
        let next = delete_sequenced(self.relation(), predicate, period)?;
        self.replace(next)
    }

    /// Sequenced UPDATE on a stored table.
    pub fn update_sequenced(
        &mut self,
        predicate: &Expr,
        period: Period,
        apply: impl Fn(&Tuple) -> Result<Tuple>,
    ) -> Result<()> {
        let next = update_sequenced(self.relation(), predicate, period, apply)?;
        self.replace(next)
    }
}

/// Catalog-level sequenced mutations. Every path routes through
/// [`crate::table::Table::replace`], which re-derives the base properties
/// and invalidates the cached statistics — the invalidation hook the
/// optimizer's `StatisticsProvider` relies on.
impl crate::catalog::Catalog {
    /// Sequenced INSERT into a cataloged table.
    pub fn insert_sequenced(
        &self,
        table: &str,
        values: Vec<tqo_core::value::Value>,
        period: Period,
    ) -> Result<()> {
        self.with_table_mut(table, |t| t.insert_sequenced(values, period))
    }

    /// Sequenced DELETE on a cataloged table.
    pub fn delete_sequenced(&self, table: &str, predicate: &Expr, period: Period) -> Result<()> {
        self.with_table_mut(table, |t| t.delete_sequenced(predicate, period))
    }

    /// Sequenced UPDATE on a cataloged table.
    pub fn update_sequenced(
        &self,
        table: &str,
        predicate: &Expr,
        period: Period,
        apply: impl Fn(&Tuple) -> Result<Tuple>,
    ) -> Result<()> {
        self.with_table_mut(table, |t| t.update_sequenced(predicate, period, apply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::{DataType, Value};

    fn dept() -> Relation {
        Relation::new(
            Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)]),
            vec![
                tuple!["John", "Sales", 1i64, 8i64],
                tuple!["Anna", "Ads", 2i64, 6i64],
            ],
        )
        .unwrap()
    }

    fn is_john() -> Expr {
        Expr::eq(Expr::col("EmpName"), Expr::lit("John"))
    }

    #[test]
    fn insert_appends_with_period() {
        let r = insert_sequenced(
            &dept(),
            vec![Value::Str("Mia".into()), Value::Str("Sales".into())],
            Period::of(4, 9),
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuples()[2], tuple!["Mia", "Sales", 4i64, 9i64]);
        // Empty periods and snapshot relations are rejected.
        assert!(insert_sequenced(&dept(), vec![], Period::of(4, 4)).is_err());
    }

    #[test]
    fn delete_splits_straddling_tuples() {
        let r = delete_sequenced(&dept(), &is_john(), Period::of(3, 5)).unwrap();
        // John [1,8) minus [3,5) → [1,3) and [5,8); Anna untouched.
        assert_eq!(
            r.tuples(),
            &[
                tuple!["John", "Sales", 1i64, 3i64],
                tuple!["John", "Sales", 5i64, 8i64],
                tuple!["Anna", "Ads", 2i64, 6i64],
            ]
        );
    }

    #[test]
    fn delete_removes_fully_covered_tuples() {
        let r = delete_sequenced(&dept(), &is_john(), Period::of(0, 10)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0], tuple!["Anna", "Ads", 2i64, 6i64]);
    }

    #[test]
    fn delete_outside_validity_is_noop() {
        let r = delete_sequenced(&dept(), &is_john(), Period::of(20, 30)).unwrap();
        assert_eq!(r.tuples(), dept().tuples());
    }

    #[test]
    fn update_rewrites_only_the_covered_window() {
        let schema = dept().schema().clone();
        let r = update_sequenced(&dept(), &is_john(), Period::of(3, 5), |t| {
            let mut t = t.clone();
            t.set_value(schema.resolve("Dept").unwrap(), Value::Str("Ads".into()));
            Ok(t)
        })
        .unwrap();
        // John: old Sales on [1,3) and [5,8), new Ads on [3,5).
        let mut rows: Vec<String> = r.tuples().iter().map(|t| t.to_string()).collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                "(Anna, Ads, 2, 6)",
                "(John, Ads, 3, 5)",
                "(John, Sales, 1, 3)",
                "(John, Sales, 5, 8)",
            ]
        );
        // The update is snapshot-sound: at every instant John is in exactly
        // one department.
        assert!(!r.has_snapshot_duplicates().unwrap());
    }

    #[test]
    fn table_wrappers_maintain_invariants() {
        let mut table = crate::table::Table::new("D", dept()).unwrap();
        assert!(table.props().snapshot_dup_free);
        table
            .insert_sequenced(
                vec![Value::Str("John".into()), Value::Str("Sales".into())],
                Period::of(6, 12),
            )
            .unwrap();
        // John now has overlapping Sales periods → property re-derived.
        assert!(!table.props().snapshot_dup_free);
        table
            .delete_sequenced(&is_john(), Period::of(0, 30))
            .unwrap();
        assert_eq!(table.len(), 1);
        assert!(table.props().snapshot_dup_free);
    }

    #[test]
    fn catalog_mutations_invalidate_statistics() {
        use crate::catalog::{Catalog, StatisticsProvider};
        let cat = Catalog::new();
        cat.register("D", dept()).unwrap();
        assert_eq!(cat.table_stats("D").unwrap().distinct("EmpName"), Some(2));
        cat.insert_sequenced(
            "D",
            vec![Value::Str("Mia".into()), Value::Str("Sales".into())],
            Period::of(4, 9),
        )
        .unwrap();
        // Statistics were recomputed, not served stale.
        assert_eq!(cat.table_stats("D").unwrap().distinct("EmpName"), Some(3));
        cat.delete_sequenced("D", &is_john(), Period::of(0, 30))
            .unwrap();
        assert_eq!(cat.table_stats("D").unwrap().distinct("EmpName"), Some(2));
        cat.update_sequenced("D", &is_john(), Period::of(2, 4), |t| Ok(t.clone()))
            .unwrap();
        assert!(cat.table_stats("D").is_some());
    }

    #[test]
    fn update_preserving_history_roundtrip() {
        // Delete then re-insert equals update with identity (as snapshots).
        let r = dept();
        let updated =
            update_sequenced(&r, &is_john(), Period::of(2, 4), |t| Ok(t.clone())).unwrap();
        for t in 0..10 {
            assert_eq!(
                updated.snapshot(t).unwrap().counts(),
                r.snapshot(t).unwrap().counts(),
                "instant {t}"
            );
        }
    }
}
