//! # tqo-storage — catalog, tables, statistics, workload generators
//!
//! The storage substrate under the optimizer and execution engine:
//!
//! * [`catalog`] — a thread-safe catalog of named tables carrying declared
//!   invariants ([`tqo_core::plan::BaseProps`]) and measured statistics.
//! * [`table`] — a stored relation plus maintenance operations.
//! * [`stats`] — per-table and per-column statistics feeding cardinality
//!   estimation.
//! * [`generator`] — seeded synthetic data generators reproducing the shape
//!   of the paper's EMPLOYEE/PROJECT workload at any scale, with tunable
//!   fragmentation (coalescing potential), overlap (snapshot duplicates),
//!   and duplication knobs.
//! * [`paper`] — the exact relations of the paper's Figure 1, used by the
//!   figure-reproduction tests and the quickstart examples.

pub mod catalog;
pub mod generator;
pub mod mutation;
pub mod paper;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, StatisticsProvider};
pub use generator::{GenConfig, WorkloadGenerator};
pub use stats::TableStats;
pub use table::Table;
