//! A thread-safe catalog of named tables, and the statistics provider the
//! optimizer plans against.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tqo_core::error::{Error, Result};
use tqo_core::interp::Env;
use tqo_core::plan::BaseProps;
use tqo_core::relation::Relation;
use tqo_core::stats::TableSummary;

use crate::stats::TableStats;
use crate::table::Table;

/// The statistics interface planners consume: measured per-table
/// statistics, computed lazily and cached per table, invalidated by every
/// mutation path. [`Catalog`] is the storage-backed implementation;
/// alternative backends (remote catalogs, statistics snapshots) implement
/// the same trait.
///
/// ```
/// use tqo_storage::{paper, StatisticsProvider};
///
/// let catalog = paper::catalog();
/// let stats = catalog.table_stats("EMPLOYEE").expect("cataloged");
/// assert_eq!(stats.rows, 5);
/// // The core-side summary is what `Scan` nodes embed for the optimizer.
/// let summary = catalog.table_summary("EMPLOYEE").expect("cataloged");
/// assert_eq!(summary.rows, 5);
/// ```
pub trait StatisticsProvider {
    /// Measured statistics for `name`, if the table exists.
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>>;

    /// The core-side summary of [`table_stats`] — what `Scan` nodes embed.
    ///
    /// [`table_stats`]: StatisticsProvider::table_stats
    fn table_summary(&self, name: &str) -> Option<Arc<TableSummary>>;

    /// Drop any cached statistics for `name` (after an external mutation).
    fn invalidate_stats(&self, name: &str);
}

/// A shared, concurrently readable catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, Arc<Table>>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or overwrite) a table built from a relation.
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> Result<()> {
        let name = name.into();
        let table = Table::new(name.clone(), relation)?;
        self.tables.write().insert(name, Arc::new(table));
        Ok(())
    }

    /// Drop a table; errors when absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::Storage {
                reason: format!("unknown table `{name}`"),
            })
    }

    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Storage {
                reason: format!("unknown table `{name}`"),
            })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Base properties for planning a scan of `name`, with the measured
    /// statistics attached — every catalog-compiled plan estimates from
    /// data.
    pub fn base_props(&self, name: &str) -> Result<BaseProps> {
        Ok(self.get(name)?.planning_props())
    }

    /// Mutate a table in place: the closure receives a working copy, the
    /// catalog swaps it in on success (statistics are invalidated by the
    /// mutation itself). The write lock is held across the whole
    /// read-mutate-swap, so concurrent mutations serialize instead of
    /// losing updates; readers holding the old `Arc` keep a consistent
    /// pre-mutation view.
    pub fn with_table_mut(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> Result<()>,
    ) -> Result<()> {
        let mut tables = self.tables.write();
        let current = tables.get(name).ok_or_else(|| Error::Storage {
            reason: format!("unknown table `{name}`"),
        })?;
        let mut working = (**current).clone();
        f(&mut working)?;
        tables.insert(name.to_owned(), Arc::new(working));
        Ok(())
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Materialize the catalog as an interpreter environment.
    pub fn env(&self) -> Env {
        let mut env = Env::new();
        for (name, table) in self.tables.read().iter() {
            env.insert(name.clone(), table.relation().clone());
        }
        env
    }
}

impl StatisticsProvider for Catalog {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.get(name).ok().map(|t| t.stats())
    }

    fn table_summary(&self, name: &str) -> Option<Arc<TableSummary>> {
        self.get(name).ok().map(|t| t.summary())
    }

    fn invalidate_stats(&self, name: &str) {
        if let Ok(t) = self.get(name) {
            t.invalidate_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn rel() -> Relation {
        Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![tuple!["a", 1i64, 5i64]],
        )
        .unwrap()
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        assert!(cat.contains("T"));
        assert_eq!(cat.get("T").unwrap().len(), 1);
        assert_eq!(cat.names(), vec!["T".to_string()]);
        cat.drop_table("T").unwrap();
        assert!(!cat.contains("T"));
        assert!(cat.drop_table("T").is_err());
        assert!(cat.get("T").is_err());
    }

    #[test]
    fn base_props_reflect_data() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        let props = cat.base_props("T").unwrap();
        assert!(props.snapshot_dup_free);
        assert_eq!(props.card, 1);
        // Measured statistics ride along for estimation.
        let summary = props.stats.expect("summary attached");
        assert_eq!(summary.rows, 1);
        assert_eq!(summary.column("E").unwrap().distinct, 1);
    }

    #[test]
    fn env_contains_all_tables() {
        let cat = Catalog::new();
        cat.register("A", rel()).unwrap();
        cat.register("B", rel()).unwrap();
        let env = cat.env();
        assert!(env.get("A").is_ok());
        assert!(env.get("B").is_ok());
        assert!(env.get("C").is_err());
    }

    #[test]
    fn clones_share_state() {
        let cat = Catalog::new();
        let clone = cat.clone();
        cat.register("T", rel()).unwrap();
        assert!(clone.contains("T"));
    }

    #[test]
    fn statistics_provider_caches_and_invalidates() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        let stats = cat.table_stats("T").unwrap();
        assert_eq!(stats.rows, 1);
        // Second read hits the same cached Arc.
        assert!(Arc::ptr_eq(&stats, &cat.table_stats("T").unwrap()));
        cat.invalidate_stats("T");
        let fresh = cat.table_stats("T").unwrap();
        assert!(!Arc::ptr_eq(&stats, &fresh));
        assert_eq!(fresh.rows, 1);
        assert!(cat.table_stats("MISSING").is_none());
        assert!(cat.table_summary("T").is_some());
    }

    #[test]
    fn with_table_mut_swaps_and_remeasures() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        cat.with_table_mut("T", |t| t.insert(vec![tuple!["b", 2i64, 4i64]]))
            .unwrap();
        assert_eq!(cat.get("T").unwrap().len(), 2);
        assert_eq!(cat.table_stats("T").unwrap().distinct("E"), Some(2));
        // Failed mutations leave the stored table untouched.
        let before = cat.get("T").unwrap();
        assert!(cat
            .with_table_mut("T", |t| t.insert(vec![tuple!["x", 9i64, 3i64]]))
            .is_err());
        assert!(Arc::ptr_eq(&before, &cat.get("T").unwrap()));
    }
}
