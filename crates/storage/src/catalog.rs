//! A thread-safe catalog of named tables.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tqo_core::error::{Error, Result};
use tqo_core::interp::Env;
use tqo_core::plan::BaseProps;
use tqo_core::relation::Relation;

use crate::table::Table;

/// A shared, concurrently readable catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, Arc<Table>>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or overwrite) a table built from a relation.
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> Result<()> {
        let name = name.into();
        let table = Table::new(name.clone(), relation)?;
        self.tables.write().insert(name, Arc::new(table));
        Ok(())
    }

    /// Drop a table; errors when absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::Storage {
                reason: format!("unknown table `{name}`"),
            })
    }

    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Storage {
                reason: format!("unknown table `{name}`"),
            })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Base properties for planning a scan of `name`.
    pub fn base_props(&self, name: &str) -> Result<BaseProps> {
        Ok(self.get(name)?.props().clone())
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Materialize the catalog as an interpreter environment.
    pub fn env(&self) -> Env {
        let mut env = Env::new();
        for (name, table) in self.tables.read().iter() {
            env.insert(name.clone(), table.relation().clone());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    fn rel() -> Relation {
        Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![tuple!["a", 1i64, 5i64]],
        )
        .unwrap()
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        assert!(cat.contains("T"));
        assert_eq!(cat.get("T").unwrap().len(), 1);
        assert_eq!(cat.names(), vec!["T".to_string()]);
        cat.drop_table("T").unwrap();
        assert!(!cat.contains("T"));
        assert!(cat.drop_table("T").is_err());
        assert!(cat.get("T").is_err());
    }

    #[test]
    fn base_props_reflect_data() {
        let cat = Catalog::new();
        cat.register("T", rel()).unwrap();
        let props = cat.base_props("T").unwrap();
        assert!(props.snapshot_dup_free);
        assert_eq!(props.card, 1);
    }

    #[test]
    fn env_contains_all_tables() {
        let cat = Catalog::new();
        cat.register("A", rel()).unwrap();
        cat.register("B", rel()).unwrap();
        let env = cat.env();
        assert!(env.get("A").is_ok());
        assert!(env.get("B").is_ok());
        assert!(env.get("C").is_err());
    }

    #[test]
    fn clones_share_state() {
        let cat = Catalog::new();
        let clone = cat.clone();
        cat.register("T", rel()).unwrap();
        assert!(clone.contains("T"));
    }
}
