//! Table statistics for cardinality estimation.

use std::collections::HashSet;

use tqo_core::error::Result;
use tqo_core::relation::Relation;
use tqo_core::time::{Instant, Period};

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    /// Number of distinct values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
}

/// Statistics for one stored relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub rows: usize,
    pub columns: Vec<ColumnStats>,
    /// For temporal relations: the covered time range.
    pub time_range: Option<Period>,
    /// For temporal relations: average period duration.
    pub avg_duration: Option<f64>,
    /// For temporal relations: the maximum number of value-equivalent
    /// tuples alive at one instant — the "snapshot duplicate degree".
    pub max_class_overlap: usize,
}

impl TableStats {
    pub fn compute(relation: &Relation) -> Result<TableStats> {
        let schema = relation.schema();
        let mut columns = Vec::with_capacity(schema.arity());
        for (i, attr) in schema.attrs().iter().enumerate() {
            let mut distinct = HashSet::new();
            let mut nulls = 0usize;
            for t in relation.tuples() {
                let v = t.value(i);
                if v.is_null() {
                    nulls += 1;
                } else {
                    distinct.insert(v);
                }
            }
            columns.push(ColumnStats {
                name: attr.name.clone(),
                distinct: distinct.len(),
                nulls,
            });
        }

        let (time_range, avg_duration, max_class_overlap) = if relation.is_temporal() {
            let mut lo: Option<Instant> = None;
            let mut hi: Option<Instant> = None;
            let mut total: i64 = 0;
            for t in relation.tuples() {
                let p = t.period(schema)?;
                lo = Some(lo.map_or(p.start, |v| v.min(p.start)));
                hi = Some(hi.map_or(p.end, |v| v.max(p.end)));
                total += p.duration();
            }
            let range = match (lo, hi) {
                (Some(a), Some(b)) => Some(Period::of(a, b)),
                _ => None,
            };
            let avg = if relation.is_empty() {
                None
            } else {
                Some(total as f64 / relation.len() as f64)
            };
            // Max simultaneous value-equivalent tuples.
            let mut max_overlap = 0usize;
            for (_, indices) in relation.value_classes()? {
                let mut events: Vec<(Instant, i32)> = Vec::with_capacity(indices.len() * 2);
                for &i in &indices {
                    let p = relation.tuples()[i].period(schema)?;
                    events.push((p.start, 1));
                    events.push((p.end, -1));
                }
                events.sort_unstable();
                let mut live = 0i32;
                for (_, d) in events {
                    live += d;
                    max_overlap = max_overlap.max(live as usize);
                }
            }
            (range, avg, max_overlap)
        } else {
            (None, None, 0)
        };

        Ok(TableStats {
            rows: relation.len(),
            columns,
            time_range,
            avg_duration,
            max_class_overlap,
        })
    }

    /// Distinct count for a named column, if known.
    pub fn distinct(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .find(|c| c.name == column)
            .map(|c| c.distinct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::value::DataType;

    #[test]
    fn computes_column_and_time_stats() {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![
                tuple!["a", 1i64, 5i64],
                tuple!["a", 3i64, 9i64],
                tuple!["b", 2i64, 4i64],
            ],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct("E"), Some(2));
        assert_eq!(s.time_range, Some(Period::of(1, 9)));
        assert_eq!(s.avg_duration, Some(4.0));
        assert_eq!(s.max_class_overlap, 2); // a's periods overlap on [3,5)
    }

    #[test]
    fn snapshot_relation_has_no_time_stats() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int)]),
            vec![tuple![1i64], tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct("A"), Some(2));
        assert!(s.time_range.is_none());
        assert_eq!(s.max_class_overlap, 0);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::temporal(&[("E", DataType::Str)]));
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 0);
        assert!(s.time_range.is_none());
        assert!(s.avg_duration.is_none());
    }
}
