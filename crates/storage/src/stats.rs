//! Table statistics for cardinality estimation.
//!
//! [`TableStats::compute`] measures everything the optimizer's estimator
//! consumes: row and distinct-tuple counts, per-column distinct/null
//! counts with min/max and a small equi-depth histogram, the covered time
//! range, the mean period duration, and the snapshot duplicate degree.
//! The measurement itself lives in core as
//! [`tqo_core::stats::TableSummary::measure`] — one routine shared by the
//! catalog and by the adaptive re-optimizer, which summarizes in-memory
//! intermediates with no catalog in sight. [`TableStats::summary`]
//! converts back to that core-side [`tqo_core::stats::TableSummary`] that
//! rides on `Scan` nodes.

use tqo_core::error::Result;
use tqo_core::relation::Relation;
use tqo_core::stats::{ColumnSummary, Histogram, TableSummary};
use tqo_core::time::Period;
use tqo_core::value::Value;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
    /// Smallest non-null value (None for empty or all-NULL columns).
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Equi-depth histogram over the non-null values.
    pub histogram: Option<Histogram>,
}

/// Statistics for one stored relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub rows: usize,
    /// Number of distinct tuples (= `rows` for duplicate-free relations).
    pub distinct_rows: usize,
    pub columns: Vec<ColumnStats>,
    /// For temporal relations: the covered time range.
    pub time_range: Option<Period>,
    /// For temporal relations: average period duration.
    pub avg_duration: Option<f64>,
    /// For temporal relations: the maximum number of value-equivalent
    /// tuples alive at one instant — the "snapshot duplicate degree".
    pub max_class_overlap: usize,
}

impl TableStats {
    /// Measure a stored relation's statistics by delegating to the shared
    /// core routine ([`TableSummary::measure`]) and converting to the
    /// catalog-side representation. The only representational difference
    /// is `avg_duration`, which core keeps as a milli fixed point so the
    /// summary stays `Eq + Hash`.
    pub fn compute(relation: &Relation) -> Result<TableStats> {
        let s = TableSummary::measure(relation)?;
        Ok(TableStats {
            rows: s.rows as usize,
            distinct_rows: s.distinct_rows as usize,
            columns: s
                .columns
                .iter()
                .map(|c| ColumnStats {
                    name: c.name.clone(),
                    distinct: c.distinct as usize,
                    nulls: c.nulls as usize,
                    min: c.min.clone(),
                    max: c.max.clone(),
                    histogram: c.histogram.clone(),
                })
                .collect(),
            time_range: s.time_range,
            avg_duration: s.avg_duration_milli.map(|m| m as f64 / 1000.0),
            max_class_overlap: s.max_class_overlap as usize,
        })
    }

    /// Distinct count for a named column, if known.
    pub fn distinct(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .find(|c| c.name == column)
            .map(|c| c.distinct)
    }

    /// Convert to the core-side summary attached to `Scan` nodes.
    pub fn summary(&self) -> TableSummary {
        TableSummary {
            rows: self.rows as u64,
            distinct_rows: self.distinct_rows as u64,
            columns: self
                .columns
                .iter()
                .map(|c| ColumnSummary {
                    name: c.name.clone(),
                    distinct: c.distinct as u64,
                    nulls: c.nulls as u64,
                    min: c.min.clone(),
                    max: c.max.clone(),
                    histogram: c.histogram.clone(),
                })
                .collect(),
            time_range: self.time_range,
            avg_duration_milli: self.avg_duration.map(|d| (d * 1000.0) as i64),
            max_class_overlap: self.max_class_overlap as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqo_core::schema::Schema;
    use tqo_core::tuple;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::DataType;

    #[test]
    fn computes_column_and_time_stats() {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![
                tuple!["a", 1i64, 5i64],
                tuple!["a", 3i64, 9i64],
                tuple!["b", 2i64, 4i64],
            ],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct_rows, 3);
        assert_eq!(s.distinct("E"), Some(2));
        assert_eq!(s.time_range, Some(Period::of(1, 9)));
        assert_eq!(s.avg_duration, Some(4.0));
        assert_eq!(s.max_class_overlap, 2); // a's periods overlap on [3,5)
    }

    #[test]
    fn snapshot_relation_has_no_time_stats() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int)]),
            vec![tuple![1i64], tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct_rows, 2);
        assert_eq!(s.distinct("A"), Some(2));
        assert!(s.time_range.is_none());
        assert_eq!(s.max_class_overlap, 0);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::temporal(&[("E", DataType::Str)]));
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct_rows, 0);
        assert!(s.time_range.is_none());
        assert!(s.avg_duration.is_none());
        let c = &s.columns[0];
        assert_eq!(c.distinct, 0);
        assert!(c.min.is_none() && c.max.is_none() && c.histogram.is_none());
        // The summary converts without panicking or dividing by zero.
        let summary = s.summary();
        assert_eq!(summary.rows, 0);
        assert!(summary.avg_duration_milli.is_none());
    }

    #[test]
    fn all_null_column_has_no_value_stats() {
        let r = Relation::new(
            Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]),
            vec![
                Tuple::new(vec![Value::Null, Value::Str("x".into())]),
                Tuple::new(vec![Value::Null, Value::Str("y".into())]),
            ],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        let a = &s.columns[0];
        assert_eq!(a.distinct, 0);
        assert_eq!(a.nulls, 2);
        assert!(a.min.is_none() && a.max.is_none() && a.histogram.is_none());
        let b = &s.columns[1];
        assert_eq!(b.distinct, 2);
        assert_eq!(b.nulls, 0);
    }

    #[test]
    fn abutting_periods_do_not_count_as_overlap() {
        // a: [1,3) then [3,5) — adjacent, never simultaneous. The close
        // event at 3 sorts before the open event at 3.
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![tuple!["a", 1i64, 3i64], tuple!["a", 3i64, 5i64]],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.max_class_overlap, 1);
    }

    #[test]
    fn min_max_and_histogram_reflect_data() {
        let tuples: Vec<_> = (0..64i64).map(|i| tuple![i % 16, 0i64, 1i64]).collect();
        let r = Relation::new(Schema::temporal(&[("A", DataType::Int)]), tuples).unwrap();
        let s = TableStats::compute(&r).unwrap();
        let a = &s.columns[0];
        assert_eq!(a.min, Some(Value::Int(0)));
        assert_eq!(a.max, Some(Value::Int(15)));
        let h = a.histogram.as_ref().unwrap();
        assert_eq!(h.total, 64);
        assert!((h.fraction_le(&Value::Int(7)) - 0.5).abs() < 0.2);
    }

    #[test]
    fn summary_round_trips_counts() {
        let r = Relation::new(
            Schema::temporal(&[("E", DataType::Str)]),
            vec![tuple!["a", 1i64, 5i64], tuple!["a", 1i64, 5i64]],
        )
        .unwrap();
        let s = TableStats::compute(&r).unwrap();
        assert_eq!(s.distinct_rows, 1);
        let sum = s.summary();
        assert_eq!(sum.rows, 2);
        assert_eq!(sum.distinct_rows, 1);
        assert_eq!(sum.column("E").unwrap().distinct, 1);
        assert_eq!(sum.avg_duration_milli, Some(4000));
        assert_eq!(sum.max_class_overlap, 2);
    }
}
