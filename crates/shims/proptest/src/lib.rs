//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the integration suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `boxed`, range and
//! tuple strategies, [`collection::vec`], [`sample::select`],
//! [`arbitrary::any`], `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from the real crate, deliberate for an offline build:
//! generation is driven by a per-test deterministic SplitMix64 stream (same
//! inputs every run, stable across machines), and failing cases are
//! reported but **not shrunk**. Regex string strategies (`"\\PC{0,80}"`)
//! generate printable strings of the right length range rather than
//! honoring the full regex language — sufficient for the fuzz suites that
//! use them. Swap the path dependency for crates.io proptest to get real
//! shrinking; the test sources compile unchanged.

pub mod test_runner {
    /// The error carried by failing `prop_assert*` macros. The real crate
    /// uses an enum; a message string is enough for helpers that return
    /// `Result<_, TestCaseError>` and get `?`-chained inside `proptest!`.
    pub type TestCaseError = String;

    /// Runner configuration: only the case count is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    /// Deterministic SplitMix64 stream seeding each test by its name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable FNV-1a hash of the test name, so every test
        /// gets an independent but reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// A value generator. `Value` is the generated type (matching the real
    /// crate's `Strategy<Value = T>` associated-type surface).
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.gen_value(rng)))
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Type-erased strategy, the target of [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    /// The constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String-literal "regex" strategies. Only the length range `{lo,hi}`
    /// suffix is honored; characters are drawn from the printable classes
    /// the fuzz suites expect (`\PC` — any printable char).
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Mostly ASCII printable, occasionally a multi-byte char to
                // exercise UTF-8 handling.
                let c = match rng.below(20) {
                    0 => '\u{00e9}',
                    1 => '\u{4e16}',
                    2 => '\u{1F600}',
                    _ => (0x20 + rng.below(0x5f) as u32) as u8 as char,
                };
                s.push(c);
            }
            s
        }
    }

    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern[open..].find('}')? + open;
        let body = &pattern[open + 1..close];
        let mut parts = body.splitn(2, ',');
        let lo = parts.next()?.trim().parse().ok()?;
        let hi = parts.next().map_or(Some(lo), |p| p.trim().parse().ok())?;
        (lo <= hi).then_some((lo, hi))
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::generate(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for [`vec`]: inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(vec![...])`: uniform choice from a fixed pool.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias the real prelude provides.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests. Each function runs `cases` times over freshly
/// generated inputs; `prop_assert*` failures abort with the case number
/// (no shrinking in this offline stand-in).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Discard the current case when its inputs don't fit the property's
/// precondition. (The real crate re-draws; this stand-in counts the case
/// as passed, which keeps runs deterministic.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, pair in (0usize..3, 1i64..=4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 < 3);
            prop_assert!((1..=4).contains(&pair.1), "pair.1 = {}", pair.1);
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0u8..5, 0..=7), w in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(v.len() <= 7);
            prop_assert!(w == "a" || w == "b");
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), 2usize..5, any::<bool>().prop_map(|b| b as usize)]) {
            prop_assert!(v < 5);
        }

        #[test]
        fn string_literal_strategy(s in "\\PC{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let s = (0i64..1000, 0usize..9);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
