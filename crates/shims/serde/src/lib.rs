//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as no-op derive macros so
//! `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compile
//! without the real crate. Swap this path dependency for crates.io serde to
//! get actual serialization — no source changes needed in the workspace.

pub use serde_derive_shim::{Deserialize, Serialize};
