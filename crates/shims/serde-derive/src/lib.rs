//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The vendored registry is unavailable in this build environment, and
//! nothing in the workspace actually serializes — the derives on core types
//! only declare the *capability*. These stand-ins accept the same syntax
//! (including `#[serde(...)]` helper attributes) and expand to nothing, so
//! the annotated code compiles unchanged against the real serde later.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
