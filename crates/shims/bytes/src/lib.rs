//! Offline stand-in for `bytes`.
//!
//! Implements `Bytes` / `BytesMut` and the `Buf` / `BufMut` accessors the
//! transfer wire uses, with the real crate's conventions: network byte
//! order, panics on buffer underflow (callers guard with `remaining()`),
//! cheap clones and slices via a shared backing allocation.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Immutable shared byte view with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view relative to the current view (no copy).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "bytes: buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

/// Big-endian reads off the front of a buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
    fn get_i64(&mut self) -> i64;
    fn get_f64(&mut self) -> f64;
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::from(self.take(len).to_vec())
    }
}

/// Growable write buffer.
#[derive(Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Big-endian writes onto the end of a buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_i64(&mut self, v: i64);
    fn put_f64(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slicing() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_i64(-42);
        w.put_f64(1.5);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 3);
        let cut = b.slice(0..b.len() - 1);
        assert_eq!(cut.len(), b.len() - 1);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64(), -42);
        assert_eq!(b.get_f64(), 1.5);
        let tail = b.copy_to_bytes(3);
        assert_eq!(&*tail, b"xyz");
        assert_eq!(b.remaining(), 0);
    }
}
