//! Offline stand-in for `rand`.
//!
//! Implements the subset of the rand 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over integer
//! ranges and `f64` — on top of SplitMix64. Deterministic for a given seed,
//! which is all the generators and tests rely on. Swap the path dependency
//! for crates.io rand to get the real engine; no source changes needed.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (stand-in for `Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Integers samplable from a range (stand-in for `SampleUniform`). The
/// single blanket `SampleRange` impl below keeps type inference open like
/// the real crate's, so `s + rng.gen_range(1..10)` unifies with `s: i64`
/// instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges samplable uniformly (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded sampling by rejection on the top of the u64 space.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty gen_range");
        T::from_i128(lo + bounded(rng, (hi - lo) as u64) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty gen_range");
        T::from_i128(lo + bounded(rng, (hi - lo + 1) as u64) as i128)
    }
}

/// The user-facing sampling interface, blanket-implemented for every core
/// RNG like in the real crate.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, seedable, passes BigCrush on its output stream —
    /// plenty for synthetic workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u8..=7);
            assert!((3..=7).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
