//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`read()` / `write()` / `lock()` returning guards directly). A poisoned
//! std lock — a writer panicked — propagates the panic, matching
//! parking_lot's behaviour of not exposing poison states.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        let m = Mutex::new("x");
        assert_eq!(*m.lock(), "x");
    }
}
