//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the bench suite uses — `Criterion`,
//! `benchmark_group`, `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples walltime measurement instead of criterion's
//! statistical machinery. Results print one line per benchmark:
//!
//! ```text
//! group/name/param        time: [median 1.234 ms]  (12 samples)
//! ```
//!
//! Swap the path dependency for crates.io criterion to get real analysis;
//! bench sources compile unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly; one sample = one timed call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        let _ = routine();
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let started = Instant::now();
            let out = routine();
            self.samples.push(started.elapsed());
            drop(out);
            if budget_start.elapsed() > self.measurement_time.max(Duration::from_millis(50)) {
                break;
            }
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.label(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark manager.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }

    fn report(&self, group: &str, label: &str, samples: &[Duration]) {
        let full = if group.is_empty() {
            label.to_owned()
        } else {
            format!("{group}/{label}")
        };
        if samples.is_empty() {
            println!("{full:<48} time: [no samples]");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        println!(
            "{full:<48} time: [median {}]  ({} samples)",
            format_duration(median),
            samples.len()
        );
    }
}

/// Identity hint that prevents the optimizer from deleting a value
/// (best-effort without intrinsics; matches criterion's API).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
