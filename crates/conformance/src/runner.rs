//! The conformance runner: executes every record of a `.slt` file through
//! the full engine/planner mode matrix and holds all legs to
//! byte-identical canonical renderings.
//!
//! Matrix per `query` record (under `modes all`):
//!
//! | leg | engines | comparison |
//! |---|---|---|
//! | reference | interpreter | pinned block in the file |
//! | faithful | row, batch, parallel{1,4} | `==` reference relation |
//! | fast | row, batch, parallel{1,4} | byte-identical rendering |
//! | scheduler | stage graph via the shared multi-query pool | `==` reference relation |
//! | optimizer | memo + exhaustive, via interpreter | byte-identical rendering |
//! | stratum | layered + layered-optimized | byte-identical rendering |
//! | adaptive | q_threshold = 1.0 (faithful row, fast parallel-4) | byte-identical rendering |
//!
//! `modes engines` keeps only the first four rows — used by generated
//! fixtures where planner legs would dominate runtime. The scheduler
//! leg runs for every record, so the corpus floor doubles as the
//! concurrency oracle (ARCHITECTURE invariant 16).
//!
//! With `UPDATE_SLT=1` the runner rewrites each record's expected block
//! (and fixes `?`/stale type strings) from the reference interpreter,
//! instead of failing on mismatch; large results are pinned as
//! `<n> values hashing to <hex>` digests.

use std::fmt::Write as _;
use std::path::Path;

use tqo_core::equivalence::ResultType;
use tqo_core::interp::{eval_plan, Env};
use tqo_core::optimizer::{optimize, OptimizerConfig, SearchStrategy};
use tqo_core::rules::RuleSet;
use tqo_exec::{
    execute_adaptive, execute_mode, lower, AdaptiveConfig, ExecMode, PlannerConfig, Scheduler,
    SubmitOptions,
};
use tqo_storage::Catalog;
use tqo_stratum::{make_layered, Stratum};

use crate::render::{digest_rows, render_rows, type_string, SortMode};
use crate::slt::{self, Expected, ModeSet, Record, RecordKind};

/// Results of running one corpus file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// `query` records executed through the matrix.
    pub queries: usize,
    /// `statement ok` records.
    pub statements: usize,
    /// `query error` records.
    pub errors: usize,
    /// Plans the layered stratum engine declined (`modes all` only).
    pub stratum_skipped: usize,
    /// Failure messages (`file:line: what`).
    pub failures: Vec<String>,
    /// True when `UPDATE_SLT=1` rewrote the file.
    pub blessed: bool,
}

/// Row count above which blessed blocks are pinned as digests.
const HASH_THRESHOLD: usize = 24;

/// Maximum re-planning pressure: q-errors are ≥ 1 by definition, so every
/// in-budget checkpoint re-plans.
fn adaptive_pressure() -> AdaptiveConfig {
    AdaptiveConfig {
        q_threshold: 1.0,
        max_reopt: 8,
    }
}

/// Run one `.slt` file. `bless` rewrites expected blocks in place.
pub fn run_slt_file(path: &Path, bless: bool) -> Result<FileOutcome, String> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{name}: cannot read: {e}"))?;
    let file = slt::parse(&text).map_err(|e| format!("{name}:{e}"))?;
    let catalog = file
        .fixture
        .catalog()
        .map_err(|e| format!("{name}: fixture failed: {e}"))?;
    let env = catalog.env();

    let mut outcome = FileOutcome::default();
    // (record index, new directive line, new expected block) for blessing.
    let mut updates: Vec<(usize, Option<String>, Vec<String>)> = Vec::new();

    for (ri, record) in file.records.iter().enumerate() {
        let at = format!("{name}:{}", record.line);
        match &record.kind {
            RecordKind::StatementOk => {
                outcome.statements += 1;
                match tqo_sql::compile(&record.sql, &catalog)
                    .and_then(|plan| eval_plan(&plan, &env))
                {
                    Ok(_) => {}
                    Err(e) => outcome
                        .failures
                        .push(format!("{at}: statement failed: {e}")),
                }
            }
            RecordKind::QueryError { pattern } => {
                outcome.errors += 1;
                let result =
                    tqo_sql::compile(&record.sql, &catalog).and_then(|plan| eval_plan(&plan, &env));
                match result {
                    Ok(_) => outcome
                        .failures
                        .push(format!("{at}: expected an error, query succeeded")),
                    Err(e) => {
                        let display = e.to_string();
                        if !pattern.is_empty() && !display.contains(pattern.as_str()) {
                            outcome.failures.push(format!(
                                "{at}: error `{display}` does not contain `{pattern}`"
                            ));
                        }
                    }
                }
            }
            RecordKind::Query {
                types,
                sort,
                expected,
            } => {
                outcome.queries += 1;
                match run_matrix(&catalog, &env, record, *sort, file.modes, &mut outcome) {
                    Err(e) => outcome.failures.push(format!("{at}: {e}")),
                    Ok((rows, actual_types)) => {
                        if bless {
                            let new_directive = (types != &actual_types).then(|| {
                                let sort_suffix = match sort {
                                    SortMode::RowSort => " rowsort",
                                    SortMode::NoSort => "",
                                };
                                format!("query {actual_types}{sort_suffix}")
                            });
                            updates.push((ri, new_directive, bless_block(&rows)));
                        } else {
                            if types != &actual_types {
                                outcome.failures.push(format!(
                                    "{at}: type string `{types}` but result has `{actual_types}`"
                                ));
                            }
                            check_expected(&at, expected, &rows, &mut outcome.failures);
                        }
                    }
                }
            }
        }
    }

    if bless {
        rewrite(path, &file.lines, &file.records, &updates)
            .map_err(|e| format!("{name}: bless failed: {e}"))?;
        outcome.blessed = true;
    }
    Ok(outcome)
}

/// Compare the canonical rendering against the pinned block.
fn check_expected(at: &str, expected: &Expected, rows: &[String], failures: &mut Vec<String>) {
    match expected {
        Expected::Missing => {
            failures.push(format!("{at}: no expected block (run with UPDATE_SLT=1)"));
        }
        Expected::Hash { values, hash } => {
            let cols = rows
                .first()
                .map(|r| r.split(' ').count())
                .unwrap_or_default();
            let actual_values = rows.len() * cols;
            let actual_hash = digest_rows(rows);
            if actual_values != *values || actual_hash != *hash {
                failures.push(format!(
                    "{at}: result digest mismatch: pinned {values} values/{hash:016x}, \
                     got {actual_values} values/{actual_hash:016x}"
                ));
            }
        }
        Expected::Rows(pinned) => {
            if pinned != rows {
                let mut msg = format!("{at}: result mismatch\n  pinned ({} rows):", pinned.len());
                for r in pinned.iter().take(8) {
                    let _ = write!(msg, "\n    {r}");
                }
                let _ = write!(msg, "\n  got ({} rows):", rows.len());
                for r in rows.iter().take(8) {
                    let _ = write!(msg, "\n    {r}");
                }
                failures.push(msg);
            }
        }
    }
}

/// Render a blessed expected block (row lines, or a digest line for large
/// results).
fn bless_block(rows: &[String]) -> Vec<String> {
    if rows.len() > HASH_THRESHOLD {
        let cols = rows
            .first()
            .map(|r| r.split(' ').count())
            .unwrap_or_default();
        vec![format!(
            "{} values hashing to {:016x}",
            rows.len() * cols,
            digest_rows(rows)
        )]
    } else {
        rows.to_vec()
    }
}

/// Execute one query through the mode matrix; returns the canonical
/// rendering (reference interpreter, post-sort) and the type string.
fn run_matrix(
    catalog: &Catalog,
    env: &Env,
    record: &Record,
    sort: SortMode,
    modes: ModeSet,
    outcome: &mut FileOutcome,
) -> Result<(Vec<String>, String), String> {
    let sql = &record.sql;
    let plan = tqo_sql::compile(sql, catalog).map_err(|e| format!("compile: {e}"))?;
    let reference = eval_plan(&plan, env).map_err(|e| format!("interp: {e}"))?;
    let actual_types = type_string(reference.schema());

    // Unordered results must be pinned order-insensitively: engines (and
    // especially optimized plans) are free to permute them.
    if sort == SortMode::NoSort && !matches!(plan.result_type, ResultType::List(_)) {
        return Err("unordered query must use rowsort".into());
    }

    // Under `≡ˢ` (DISTINCT without ORDER BY) optimized plans are held to
    // set equivalence only, so the canonical form is the sorted, deduped
    // line set. A no-op on the (duplicate-free) reference itself.
    let set_result = matches!(plan.result_type, ResultType::Set);
    let canon = |rel: &tqo_core::relation::Relation| {
        let mut rows = render_rows(rel, sort);
        if set_result {
            rows.dedup();
        }
        rows
    };

    let canonical = canon(&reference);
    let modes_list = [
        ExecMode::Row,
        ExecMode::Batch,
        ExecMode::Parallel { threads: 1 },
        ExecMode::Parallel { threads: 4 },
    ];

    // Row/batch/parallel engines, faithful and fast plans.
    for allow_fast in [false, true] {
        let physical = lower(
            &plan,
            PlannerConfig {
                allow_fast,
                ..Default::default()
            },
        )
        .map_err(|e| format!("lower(allow_fast={allow_fast}): {e}"))?;
        for mode in modes_list {
            let (got, _) = execute_mode(&physical, env, mode)
                .map_err(|e| format!("{mode:?}(allow_fast={allow_fast}): {e}"))?;
            if !allow_fast && got != reference {
                return Err(format!(
                    "faithful {mode:?} relation differs from the interpreter"
                ));
            }
            let rendered = canon(&got);
            if rendered != canonical {
                return Err(format!(
                    "{mode:?}(allow_fast={allow_fast}) rendering diverges from reference"
                ));
            }
        }
    }

    // Multi-query scheduler: the faithful plan, cut into a stage graph
    // and executed through the shared process-wide pool, must reproduce
    // the interpreter byte-for-byte. Every corpus query runs this leg,
    // so the ≥150-query floor doubles as the concurrency oracle.
    let faithful = lower(
        &plan,
        PlannerConfig {
            allow_fast: false,
            ..Default::default()
        },
    )
    .map_err(|e| format!("lower(scheduler): {e}"))?;
    let (got, _) = Scheduler::global()
        .run(&faithful, env, SubmitOptions::default())
        .map_err(|e| format!("scheduler: {e}"))?;
    if got != reference {
        return Err("scheduler run differs from the interpreter".into());
    }

    if modes == ModeSet::Engines {
        return Ok((canonical, actual_types));
    }

    // Optimizer strategies, evaluated through the interpreter.
    let rules = RuleSet::standard();
    for strategy in [SearchStrategy::Memo, SearchStrategy::Exhaustive] {
        let config = OptimizerConfig {
            strategy,
            ..OptimizerConfig::default()
        };
        let optimized =
            optimize(&plan, &rules, &config).map_err(|e| format!("{strategy:?}: {e}"))?;
        let got = eval_plan(&optimized.best, env).map_err(|e| format!("{strategy:?} eval: {e}"))?;
        if canon(&got) != canonical {
            return Err(format!(
                "{strategy:?}-optimized plan diverges from reference"
            ));
        }
    }

    // Layered stratum engine (plain and optimized), where the layering
    // supports the plan.
    match make_layered(&plan) {
        Err(_) => outcome.stratum_skipped += 1,
        Ok(layered) => {
            let stratum = Stratum::new(catalog.clone());
            let (got, _) = stratum.run(&layered).map_err(|e| format!("stratum: {e}"))?;
            if got != reference {
                return Err("stratum relation differs from the interpreter".into());
            }
            let (got, _, _) = stratum
                .run_sql_optimized(sql)
                .map_err(|e| format!("stratum optimized: {e}"))?;
            if canon(&got) != canonical {
                return Err("optimized stratum diverges from reference".into());
            }
        }
    }

    // Adaptive re-optimization at maximum re-planning pressure.
    for (allow_fast, mode) in [
        (false, ExecMode::Row),
        (true, ExecMode::Parallel { threads: 4 }),
    ] {
        let config = PlannerConfig {
            allow_fast,
            mode,
            strategy: SearchStrategy::Memo,
            adaptive: Some(adaptive_pressure()),
        };
        let (got, _) = execute_adaptive(&plan, env, None, config)
            .map_err(|e| format!("adaptive(allow_fast={allow_fast}): {e}"))?;
        if canon(&got) != canonical {
            return Err(format!(
                "adaptive(allow_fast={allow_fast}, {mode:?}) diverges from reference"
            ));
        }
    }

    Ok((canonical, actual_types))
}

/// Splice blessed blocks back into the file, last record first so earlier
/// spans stay valid.
fn rewrite(
    path: &Path,
    lines: &[String],
    records: &[Record],
    updates: &[(usize, Option<String>, Vec<String>)],
) -> std::io::Result<()> {
    let mut lines: Vec<String> = lines.to_vec();
    for (ri, new_directive, block) in updates.iter().rev() {
        let record = &records[*ri];
        let mut replacement = vec!["----".to_owned()];
        replacement.extend(block.iter().cloned());
        match record.expected_span {
            Some((start, end)) => {
                lines.splice(start..end, replacement);
            }
            None => {
                lines.splice(record.insert_at..record.insert_at, replacement);
            }
        }
        if let Some(d) = new_directive {
            lines[record.directive_index] = d.clone();
        }
    }
    let mut text = lines.join("\n");
    text.push('\n');
    std::fs::write(path, text)
}
