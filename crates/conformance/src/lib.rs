//! # tqo-conformance — SQL conformance corpus and planner snapshots
//!
//! A sqllogictest-style harness holding the whole stack — parser, binder,
//! optimizer, and every execution engine — to one committed corpus of
//! queries with pinned results.
//!
//! Two halves:
//!
//! * **`.slt` corpus** ([`slt`] + [`runner`]): text files of
//!   `statement ok` / `query <types> [rowsort]` / `query error`
//!   directives over deterministic fixtures ([`fixtures`]). Each `query`
//!   runs through the full mode matrix — reference interpreter, row,
//!   batch, and morsel-parallel engines (1 and 4 threads) in both
//!   faithful and fast planner modes, memo and exhaustive optimizer
//!   strategies, the layered stratum engine, and adaptive
//!   re-optimization at maximum re-planning pressure — and every leg
//!   must render **byte-identical** canonical results.
//! * **planner snapshots** ([`snapshot`]): EXPLAIN-style renderings of
//!   logical and physical plans (with estimated rows) pinned as committed
//!   files, so a plan-shape change is a reviewable diff rather than a
//!   silent regression.
//!
//! Both sides have a bless flow: `UPDATE_SLT=1` rewrites expected result
//! blocks from the reference interpreter, `UPDATE_SNAPSHOTS=1` rewrites
//! plan snapshots. See `docs/sql.md` for the authoring guide.

pub mod fixtures;
pub mod render;
pub mod runner;
pub mod slt;
pub mod snapshot;

pub use runner::{run_slt_file, FileOutcome};
pub use snapshot::check_snapshots;
