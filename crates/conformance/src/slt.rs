//! Parser for the `.slt` corpus format (a sqllogictest dialect).
//!
//! File shape:
//!
//! ```text
//! # comments start with `#`
//! fixtures paper                      # or: generated seed=7 scale=2
//! modes all                           # or: engines (skip planner legs)
//!
//! statement ok
//! SELECT EmpName FROM EMPLOYEE
//!
//! query TI rowsort
//! SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept
//! ----
//! Advertising 2
//! Sales 3
//!
//! query error unknown relation
//! SELECT * FROM NOWHERE
//! ```
//!
//! * `statement ok` — the SQL must compile and evaluate without error.
//! * `query <types> [rowsort]` — the SQL runs through the full engine
//!   matrix; `<types>` is one `T`/`I`/`R`/`B` per output column, and the
//!   block after `----` pins the canonical rendering (or a single
//!   `<n> values hashing to <hex>` line for large results).
//! * `query error [substring]` — compilation or evaluation must fail,
//!   and the error's display must contain the substring (when given).
//!
//! SQL may span lines; a record ends at a blank line. Line spans of the
//! directive and expected block are retained so `UPDATE_SLT=1` can bless
//! new expected blocks in place without disturbing comments.

use crate::fixtures::Fixture;
use crate::render::SortMode;

/// Which legs of the mode matrix a file runs (its `modes` header).
/// The multi-query `scheduler` leg runs under both sets, so the whole
/// corpus doubles as the shared-pool concurrency oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSet {
    /// Everything: engines, scheduler, optimizer strategies, stratum,
    /// adaptive.
    All,
    /// Engine + scheduler legs only (row/batch/parallel ×
    /// faithful/fast, shared-pool stage graphs) — for large generated
    /// fixtures where the planner legs would dominate runtime.
    Engines,
}

/// One directive record.
#[derive(Debug, Clone)]
pub struct Record {
    pub kind: RecordKind,
    /// The SQL text (lines joined by a single space).
    pub sql: String,
    /// 1-based line number of the directive (for diagnostics).
    pub line: usize,
    /// 0-based index of the directive line (for `UPDATE_SLT` rewrites).
    pub directive_index: usize,
    /// Lines `[start, end)` of the `----` marker plus expected block, when
    /// present.
    pub expected_span: Option<(usize, usize)>,
    /// Where an expected block would be inserted if absent (the line
    /// after the SQL text).
    pub insert_at: usize,
}

#[derive(Debug, Clone)]
pub enum RecordKind {
    StatementOk,
    Query {
        types: String,
        sort: SortMode,
        expected: Expected,
    },
    QueryError {
        pattern: String,
    },
}

/// The pinned result of a `query` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expected {
    /// No `----` block yet (only legal under `UPDATE_SLT=1`).
    Missing,
    /// Row lines, exactly as rendered.
    Rows(Vec<String>),
    /// `<values> values hashing to <hex>`.
    Hash { values: usize, hash: u64 },
}

/// A parsed corpus file.
#[derive(Debug)]
pub struct SltFile {
    pub fixture: Fixture,
    pub modes: ModeSet,
    pub records: Vec<Record>,
    /// The raw lines, retained for in-place rewrites.
    pub lines: Vec<String>,
}

fn is_blank(line: &str) -> bool {
    line.trim().is_empty()
}

fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with('#')
}

/// Parse `<n> values hashing to <hex>`.
fn parse_hash_line(line: &str) -> Option<Expected> {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words.as_slice() {
        [n, "values", "hashing", "to", hex] => Some(Expected::Hash {
            values: n.parse().ok()?,
            hash: u64::from_str_radix(hex, 16).ok()?,
        }),
        _ => None,
    }
}

/// Parse a corpus file. Errors carry `line:` prefixes for diagnostics.
pub fn parse(text: &str) -> Result<SltFile, String> {
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let mut fixture = Fixture::Paper;
    let mut modes = ModeSet::All;
    let mut records = Vec::new();
    let mut i = 0usize;

    // Collect SQL lines starting at `*i` until a blank line, `----`, or
    // EOF; leaves `*i` on the terminator.
    fn take_sql(lines: &[String], i: &mut usize) -> String {
        let mut sql = Vec::new();
        while *i < lines.len() && !is_blank(&lines[*i]) && lines[*i].trim() != "----" {
            sql.push(lines[*i].trim().to_owned());
            *i += 1;
        }
        sql.join(" ")
    }

    while i < lines.len() {
        let line = lines[i].trim();
        if line.is_empty() || is_comment(&lines[i]) {
            i += 1;
            continue;
        }
        let lineno = i + 1;
        if let Some(body) = line.strip_prefix("fixtures ") {
            fixture = Fixture::parse(body).map_err(|e| format!("{lineno}: {e}"))?;
            i += 1;
        } else if let Some(body) = line.strip_prefix("modes ") {
            modes = match body.trim() {
                "all" => ModeSet::All,
                "engines" => ModeSet::Engines,
                other => return Err(format!("{lineno}: unknown modes `{other}`")),
            };
            i += 1;
        } else if line == "statement ok" {
            let directive_index = i;
            i += 1;
            let sql = take_sql(&lines, &mut i);
            if sql.is_empty() {
                return Err(format!("{lineno}: statement with no SQL"));
            }
            records.push(Record {
                kind: RecordKind::StatementOk,
                sql,
                line: lineno,
                directive_index,
                expected_span: None,
                insert_at: i,
            });
        } else if let Some(rest) = line.strip_prefix("query ") {
            let directive_index = i;
            let rest = rest.trim();
            if let Some(pattern) = rest.strip_prefix("error") {
                i += 1;
                let sql = take_sql(&lines, &mut i);
                if sql.is_empty() {
                    return Err(format!("{lineno}: query error with no SQL"));
                }
                records.push(Record {
                    kind: RecordKind::QueryError {
                        pattern: pattern.trim().to_owned(),
                    },
                    sql,
                    line: lineno,
                    directive_index,
                    expected_span: None,
                    insert_at: i,
                });
            } else {
                let mut words = rest.split_whitespace();
                let types = words
                    .next()
                    .ok_or_else(|| format!("{lineno}: query without a type string"))?
                    .to_owned();
                let sort = match words.next() {
                    None => SortMode::NoSort,
                    Some("rowsort") => SortMode::RowSort,
                    Some(other) => {
                        return Err(format!("{lineno}: unknown sort mode `{other}`"));
                    }
                };
                if !types
                    .chars()
                    .all(|c| matches!(c, 'T' | 'I' | 'R' | 'B' | '?'))
                {
                    return Err(format!("{lineno}: bad type string `{types}`"));
                }
                i += 1;
                let sql = take_sql(&lines, &mut i);
                if sql.is_empty() {
                    return Err(format!("{lineno}: query with no SQL"));
                }
                let insert_at = i;
                let expected;
                let expected_span;
                if i < lines.len() && lines[i].trim() == "----" {
                    let start = i;
                    i += 1;
                    let mut rows = Vec::new();
                    while i < lines.len() && !is_blank(&lines[i]) {
                        rows.push(lines[i].clone());
                        i += 1;
                    }
                    expected_span = Some((start, i));
                    expected = match rows.as_slice() {
                        [one] if parse_hash_line(one).is_some() => {
                            parse_hash_line(one).expect("checked")
                        }
                        _ => Expected::Rows(rows),
                    };
                } else {
                    expected_span = None;
                    expected = Expected::Missing;
                }
                records.push(Record {
                    kind: RecordKind::Query {
                        types,
                        sort,
                        expected,
                    },
                    sql,
                    line: lineno,
                    directive_index,
                    expected_span,
                    insert_at,
                });
            }
        } else {
            return Err(format!("{lineno}: unrecognized directive `{line}`"));
        }
    }

    Ok(SltFile {
        fixture,
        modes,
        records,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
fixtures generated seed=3 scale=1
modes engines

statement ok
SELECT EmpName FROM EMPLOYEE

query TI rowsort
SELECT Dept, COUNT(*) AS n
FROM EMPLOYEE GROUP BY Dept
----
Advertising 2
Sales 3

query I
SELECT T1 FROM EMPLOYEE ORDER BY T1
----
42 values hashing to cbf29ce484222325

query error unknown relation
SELECT * FROM NOWHERE
";

    #[test]
    fn parses_the_full_directive_set() {
        let file = parse(SAMPLE).unwrap();
        assert_eq!(file.fixture, Fixture::Generated { seed: 3, scale: 1 });
        assert_eq!(file.modes, ModeSet::Engines);
        assert_eq!(file.records.len(), 4);
        assert!(matches!(file.records[0].kind, RecordKind::StatementOk));
        match &file.records[1].kind {
            RecordKind::Query {
                types,
                sort,
                expected,
            } => {
                assert_eq!(types, "TI");
                assert_eq!(*sort, SortMode::RowSort);
                assert_eq!(
                    *expected,
                    Expected::Rows(vec!["Advertising 2".into(), "Sales 3".into()])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            file.records[1].sql,
            "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept"
        );
        match &file.records[2].kind {
            RecordKind::Query { expected, .. } => assert_eq!(
                *expected,
                Expected::Hash {
                    values: 42,
                    hash: 0xcbf2_9ce4_8422_2325
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
        match &file.records[3].kind {
            RecordKind::QueryError { pattern } => assert_eq!(pattern, "unknown relation"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_directives() {
        assert!(parse("querry T\nSELECT 1\n").is_err());
        assert!(parse("query X\nSELECT 1\n").is_err());
        assert!(parse("modes turbo\n").is_err());
    }
}
