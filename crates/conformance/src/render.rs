//! Canonical result rendering: the byte representation every engine leg
//! is compared on, and the FNV-1a digest used for large pinned results.

use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::value::{DataType, Value};

/// How a `query` directive orders its result before comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// Compare in engine order (only sound for `ORDER BY` queries).
    NoSort,
    /// Sort rendered rows lexicographically before comparison.
    RowSort,
}

/// Render one value. Strings are rendered raw (fixture values contain no
/// whitespace), floats always carry a decimal point, and `NULL` is the
/// literal word — the same canonical forms the corpus files pin.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Time(t) => t.to_string(),
        Value::Bool(b) => if *b { "true" } else { "false" }.into(),
        Value::Str(s) => s.to_string(),
        Value::Float(f) => {
            let text = format!("{f}");
            if text.contains('.') || text.contains("inf") || text.contains("NaN") {
                text
            } else {
                format!("{text}.0")
            }
        }
    }
}

/// Render a relation as canonical row lines (one row per line, values
/// space-separated), applying `sort`.
pub fn render_rows(rel: &Relation, sort: SortMode) -> Vec<String> {
    let mut rows: Vec<String> = rel
        .tuples()
        .iter()
        .map(|t| {
            t.values()
                .iter()
                .map(render_value)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    if sort == SortMode::RowSort {
        rows.sort();
    }
    rows
}

/// The single-character type code of a column, as used in `query <types>`
/// directives: `I` integer (and time instants), `R` real, `T` text, `B`
/// boolean.
pub fn type_code(dtype: DataType) -> char {
    match dtype {
        DataType::Int | DataType::Time => 'I',
        DataType::Float => 'R',
        DataType::Str => 'T',
        DataType::Bool => 'B',
    }
}

/// The full type string of a schema.
pub fn type_string(schema: &Schema) -> String {
    schema.attrs().iter().map(|a| type_code(a.dtype)).collect()
}

/// FNV-1a 64-bit digest (the corpus pins large results as
/// `<n> values hashing to <hex>` instead of row-by-row).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a rendered row block: every row line followed by `\n`.
pub fn digest_rows(rows: &[String]) -> u64 {
    let mut text = String::new();
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    fnv1a(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_rendering_is_canonical() {
        assert_eq!(render_value(&Value::Null), "NULL");
        assert_eq!(render_value(&Value::Int(-3)), "-3");
        assert_eq!(render_value(&Value::Time(7)), "7");
        assert_eq!(render_value(&Value::Float(2.5)), "2.5");
        assert_eq!(render_value(&Value::Float(4.0)), "4.0");
        assert_eq!(render_value(&Value::Bool(true)), "true");
        assert_eq!(render_value(&Value::Str("John".into())), "John");
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
