//! Deterministic fixture catalogs for the `.slt` corpus.
//!
//! Every fixture is a pure function of the directive text — the paper's
//! running example or a seeded [`tqo_storage::WorkloadGenerator`]
//! workload — so a corpus file pins exactly one reproducible database.

use tqo_core::error::Result;
use tqo_storage::{paper, Catalog, WorkloadGenerator};

/// Which database a corpus file runs against (its `fixtures` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fixture {
    /// The paper's EMPLOYEE/PROJECT running example (Figure 1).
    Paper,
    /// `WorkloadGenerator::new(seed).figure1_workload(scale)` — the same
    /// schema at generated scale, deterministic in the seed.
    Generated { seed: u64, scale: usize },
}

impl Fixture {
    /// Materialize the catalog.
    pub fn catalog(self) -> Result<Catalog> {
        match self {
            Fixture::Paper => Ok(paper::catalog()),
            Fixture::Generated { seed, scale } => {
                WorkloadGenerator::new(seed).figure1_workload(scale)
            }
        }
    }

    /// Parse a `fixtures` header line body, e.g. `paper` or
    /// `generated seed=7 scale=2`.
    pub fn parse(body: &str) -> std::result::Result<Fixture, String> {
        let mut words = body.split_whitespace();
        match words.next() {
            Some("paper") => Ok(Fixture::Paper),
            Some("generated") => {
                let (mut seed, mut scale) = (0u64, 1usize);
                for w in words {
                    if let Some(v) = w.strip_prefix("seed=") {
                        seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                    } else if let Some(v) = w.strip_prefix("scale=") {
                        scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
                    } else {
                        return Err(format!("unknown fixtures option `{w}`"));
                    }
                }
                Ok(Fixture::Generated { seed, scale })
            }
            other => Err(format!("unknown fixtures kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers() {
        assert_eq!(Fixture::parse("paper"), Ok(Fixture::Paper));
        assert_eq!(
            Fixture::parse("generated seed=7 scale=2"),
            Ok(Fixture::Generated { seed: 7, scale: 2 })
        );
        assert!(Fixture::parse("oracle").is_err());
    }

    #[test]
    fn generated_fixture_is_deterministic() {
        let a = Fixture::Generated { seed: 7, scale: 2 }.catalog().unwrap();
        let b = Fixture::Generated { seed: 7, scale: 2 }.catalog().unwrap();
        let ea = a.env();
        let eb = b.env();
        assert_eq!(ea.get("EMPLOYEE").unwrap(), eb.get("EMPLOYEE").unwrap());
        assert_eq!(ea.get("PROJECT").unwrap(), eb.get("PROJECT").unwrap());
    }
}
