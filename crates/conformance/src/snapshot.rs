//! Planner snapshots: pinned EXPLAIN renderings of logical and physical
//! plans, so any change to plan shapes, site assignments, cost estimates,
//! or chosen algorithms surfaces as a reviewable file diff.
//!
//! The snapshot directory holds a `MANIFEST` of `name: sql` lines plus
//! one `<name>.snap` per entry containing the query, the cost-annotated
//! logical plan, and the faithful and fast physical plans with estimated
//! rows. `UPDATE_SNAPSHOTS=1` (re)writes every snapshot; a `.snap` with
//! no manifest entry is stale and fails the check.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use tqo_core::cost::CostModel;
use tqo_core::plan::display::explain_with_cost;
use tqo_exec::{lower, PhysicalNode, PhysicalPlan, PlannerConfig};
use tqo_storage::Catalog;

/// Render a physical tree with per-node estimated rows (estimates are
/// recorded in post-order; the tree prints in pre-order).
pub fn render_physical(plan: &PhysicalPlan) -> String {
    fn walk(
        node: &PhysicalNode,
        estimates: &[Option<u64>],
        start: usize,
        indent: usize,
        out: &mut String,
    ) {
        let own = start + node.size() - 1;
        let rows = match estimates.get(own).copied().flatten() {
            Some(n) => format!("  rows≈{n}"),
            None => String::new(),
        };
        let _ = writeln!(out, "{}{}{rows}", "  ".repeat(indent), node.label());
        let mut child_start = start;
        for c in node.children() {
            walk(c, estimates, child_start, indent + 1, out);
            child_start += c.size();
        }
    }
    let mut out = String::new();
    walk(&plan.root, &plan.estimates, 0, 0, &mut out);
    out
}

/// Render the full snapshot body for one query.
pub fn render_snapshot(sql: &str, catalog: &Catalog) -> Result<String, String> {
    let plan = tqo_sql::compile(sql, catalog).map_err(|e| format!("compile: {e}"))?;
    let logical =
        explain_with_cost(&plan, &CostModel::default()).map_err(|e| format!("explain: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "query: {sql}");
    let _ = writeln!(out, "\n-- logical plan (site, est rows, est cost) --");
    out.push_str(&logical);
    for (label, allow_fast) in [("faithful", false), ("fast", true)] {
        let physical = lower(
            &plan,
            PlannerConfig {
                allow_fast,
                ..Default::default()
            },
        )
        .map_err(|e| format!("lower({label}): {e}"))?;
        let _ = writeln!(out, "\n-- physical plan ({label}) --");
        out.push_str(&render_physical(&physical));
    }
    Ok(out)
}

/// Parse the `MANIFEST` (`name: sql`, `#` comments). Order-preserving.
fn parse_manifest(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, sql) = line
            .split_once(':')
            .ok_or_else(|| format!("MANIFEST:{}: expected `name: sql`", i + 1))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("MANIFEST:{}: bad snapshot name `{name}`", i + 1));
        }
        entries.push((name.to_owned(), sql.trim().to_owned()));
    }
    Ok(entries)
}

/// Check (or with `bless`, rewrite) every snapshot under `dir` against the
/// paper catalog. Returns the list of failures.
pub fn check_snapshots(dir: &Path, bless: bool) -> Result<Vec<String>, String> {
    let manifest_text = std::fs::read_to_string(dir.join("MANIFEST"))
        .map_err(|e| format!("cannot read MANIFEST in {}: {e}", dir.display()))?;
    let entries = parse_manifest(&manifest_text)?;
    let catalog = tqo_storage::paper::catalog();
    let mut failures = Vec::new();

    let mut known: BTreeMap<String, ()> = BTreeMap::new();
    for (name, sql) in &entries {
        known.insert(format!("{name}.snap"), ());
        let path = dir.join(format!("{name}.snap"));
        match render_snapshot(sql, &catalog) {
            Err(e) => failures.push(format!("{name}: {e}")),
            Ok(body) => {
                if bless {
                    if let Err(e) = std::fs::write(&path, &body) {
                        failures.push(format!("{name}: write failed: {e}"));
                    }
                } else {
                    match std::fs::read_to_string(&path) {
                        Err(_) => failures.push(format!(
                            "{name}: snapshot missing (run with UPDATE_SNAPSHOTS=1)"
                        )),
                        Ok(committed) if committed != body => failures.push(format!(
                            "{name}: snapshot is stale (plan changed; review and re-bless \
                             with UPDATE_SNAPSHOTS=1)\n--- committed ---\n{committed}\
                             --- current ---\n{body}"
                        )),
                        Ok(_) => {}
                    }
                }
            }
        }
    }

    // Stale-file check: every .snap must be named by the MANIFEST.
    let listing = std::fs::read_dir(dir).map_err(|e| format!("read_dir: {e}"))?;
    for entry in listing.flatten() {
        let fname = entry.file_name().to_string_lossy().into_owned();
        if fname.ends_with(".snap") && !known.contains_key(&fname) {
            failures.push(format!("{fname}: stale snapshot (no MANIFEST entry)"));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_rendering_pairs_estimates_with_nodes() {
        let catalog = tqo_storage::paper::catalog();
        let plan = tqo_sql::compile(
            "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName",
            &catalog,
        )
        .unwrap();
        let physical = lower(&plan, PlannerConfig::default()).unwrap();
        let text = render_physical(&physical);
        assert!(text.contains("scan"), "{text}");
        // Every line carries an estimate when the planner attached them.
        if !physical.estimates.is_empty() {
            assert_eq!(physical.estimates.len(), physical.root.size());
            for line in text.lines() {
                assert!(line.contains("rows≈"), "missing estimate on `{line}`");
            }
        }
    }

    #[test]
    fn manifest_rejects_bad_names() {
        assert!(parse_manifest("ok_1: SELECT 1\n# c\n").is_ok());
        assert!(parse_manifest("bad name: SELECT 1\n").is_err());
        assert!(parse_manifest("no-colon\n").is_err());
    }
}
