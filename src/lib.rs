//! # tqo — temporal query optimization
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *Slivinskas, Jensen, Snodgrass: "Query Plans for Conventional and
//! Temporal Queries Involving Duplicates and Ordering"* (ICDE 2000).
//!
//! * [`core`] — the list-based conventional + temporal algebra, equivalence
//!   types, transformation rules, plan enumeration, and cost-based
//!   optimizer.
//! * [`storage`] — catalog, in-memory tables, statistics, and synthetic
//!   workload generators.
//! * [`exec`] — the physical execution engine with multiple algorithms per
//!   logical operation.
//! * [`sql`] — a temporal SQL front end implementing Definition 5.1's
//!   mapping from DISTINCT/ORDER BY to result types.
//! * [`stratum`] — the layered architecture: a simulated conventional DBMS
//!   plus the stratum executor and plan splitter.

pub use tqo_core as core;
pub use tqo_exec as exec;
pub use tqo_sql as sql;
pub use tqo_storage as storage;
pub use tqo_stratum as stratum;
