//! From estimates to evidence: a temporal join under `EXPLAIN ANALYZE`.
//!
//! The optimizer picks plans from *estimated* cardinalities and costs
//! (the `\costs` view); `EXPLAIN ANALYZE` executes the chosen plan and
//! annotates every operator with what actually happened — actual rows,
//! the q-error against the estimate, exclusive wall time, cpu time and
//! worker count, and throughput. This example walks the paper's temporal
//! join ("which employees worked while a project ran, and when?") through
//! both views, then shows the same analyze columns on all three engines.
//!
//! ```sh
//! cargo run --example explain_analyze
//! ```

use tqo_core::cost::CostModel;
use tqo_core::optimizer::{optimize, OptimizerConfig};
use tqo_core::plan::display::explain_with_cost;
use tqo_core::rules::RuleSet;
use tqo_exec::{explain_analyze, ExecMode, PlannerConfig};
use tqo_storage::paper;
use tqo_stratum::make_layered;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p \
               WHERE e.EmpName = p.EmpName";
    println!("query: {sql}\n");

    // ── Before execution: the `\costs` view. The cost model is calibrated
    // to the engine that will run the plan; the optimizer's choice rests
    // entirely on estimated rows and costs.
    let plan = tqo_sql::compile(sql, &catalog)?;
    let layered = make_layered(&plan)?;
    let model = CostModel::calibrated(tqo_core::cost::Engine::Batch).with_fast_algorithms(false);
    let optimized = optimize(
        &layered,
        &RuleSet::standard(),
        &OptimizerConfig {
            cost_model: model.clone(),
            ..Default::default()
        },
    )?;
    println!("=== Estimated (the optimizer's view) ===\n");
    print!("{}", explain_with_cost(&optimized.best, &model)?);
    println!("total estimated cost: {:.0}\n", optimized.cost.0);

    // ── After execution: the analyze report. Estimated vs actual rows
    // meet in the q-err column; a q-error of 1.00 means the estimator was
    // exactly right, larger values show where it drifted. The result is
    // byte-identical to an unanalyzed run — analysis never perturbs the
    // query.
    println!("=== Actual (EXPLAIN ANALYZE, batch engine) ===\n");
    let analyzed = explain_analyze(
        &plan,
        &env,
        PlannerConfig {
            mode: ExecMode::Batch,
            ..Default::default()
        },
    )?;
    print!("{}", analyzed.report);
    println!(
        "\nresult ({} rows):\n{}",
        analyzed.result.len(),
        analyzed.result
    );

    // ── The same columns render uniformly on every engine, so one plan
    // can be compared across engines line by line. The `thr` column shows
    // where the morsel-parallel engine actually fanned out.
    for mode in [ExecMode::Row, ExecMode::Parallel { threads: 4 }] {
        println!("=== EXPLAIN ANALYZE ({mode:?} engine) ===\n");
        let a = explain_analyze(
            &plan,
            &env,
            PlannerConfig {
                mode,
                ..Default::default()
            },
        )?;
        print!("{}", a.report);
        assert_eq!(a.result, analyzed.result, "engines agree byte-for-byte");
        println!();
    }
    Ok(())
}
