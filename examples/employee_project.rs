//! The paper's running example, end to end (Figures 1, 2, 3, and 6).
//!
//! "Which employees worked in a department, but not on any project, and
//! when?" — result sorted, coalesced, and without duplicates in its
//! snapshots.
//!
//! ```sh
//! cargo run --example employee_project
//! ```

use tqo_core::interp::eval_plan;
use tqo_core::ops;
use tqo_core::optimizer::{optimize, OptimizerConfig};
use tqo_core::plan::display::annotated_to_string;
use tqo_core::plan::PlanBuilder;
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::paper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = paper::catalog();
    println!("=== Figure 1: the example relations ===\n");
    println!("EMPLOYEE:\n{}", paper::employee());
    println!("PROJECT:\n{}", paper::project());

    // ── Figure 3: regular vs temporal duplicate elimination.
    println!("=== Figure 3: rdup vs rdupT on π_EmpName,T1,T2(EMPLOYEE) ===\n");
    let r1 = ops::project(
        &paper::employee(),
        &[
            tqo_core::expr::ProjItem::col("EmpName"),
            tqo_core::expr::ProjItem::col("T1"),
            tqo_core::expr::ProjItem::col("T2"),
        ],
    )?;
    println!("R1 = π(EMPLOYEE):\n{r1}");
    println!(
        "R2 = rdup(R1) — time attributes demoted:\n{}",
        ops::rdup(&r1)?
    );
    println!(
        "R3 = rdupT(R1) — John's second period trimmed to [8,11):\n{}",
        ops::rdup_t(&r1)?
    );

    // ── Figure 2(a): the initial plan, with transfers.
    let initial = {
        let emp = PlanBuilder::scan("EMPLOYEE", catalog.base_props("EMPLOYEE")?)
            .project_cols(&["EmpName", "T1", "T2"])
            .transfer_s()
            .rdup_t();
        let prj = PlanBuilder::scan("PROJECT", catalog.base_props("PROJECT")?)
            .project_cols(&["EmpName", "T1", "T2"])
            .transfer_s();
        emp.difference_t(prj)
            .rdup_t()
            .coalesce()
            .sort(Order::asc(&["EmpName"]))
            .build_list(Order::asc(&["EmpName"]))
    };

    println!("=== Figure 2(a): the initial plan, with Figure 6's property vectors ===\n");
    println!("{}", annotated_to_string(&initial)?);

    // ── §6: enumerate + cost-select (the optimizer composition the paper
    //        defers to future work).
    let out = optimize(&initial, &RuleSet::standard(), &OptimizerConfig::default())?;
    println!(
        "=== Optimization: {} plans enumerated, best cost {:.0} (initial {:.0}) ===\n",
        out.enumeration.plans.len(),
        out.cost.0,
        OptimizerConfig::default().cost_model.cost(&initial)?.0,
    );
    println!("derivation of the chosen plan:");
    for step in &out.derivation {
        println!(
            "  {} ({}) at {:?}",
            step.rule, step.equivalence, step.location
        );
    }
    println!("\n=== The chosen plan (compare Figure 2(b)/6(b)) ===\n");
    println!("{}", annotated_to_string(&out.best)?);

    // ── Execute both and compare with Figure 1's Result.
    let env = catalog.env();
    let result_initial = eval_plan(&initial, &env)?;
    let result_best = eval_plan(&out.best, &env)?;
    println!("=== Result (Figure 1) ===\n{result_initial}");
    assert_eq!(result_initial, paper::figure1_result());
    assert!(initial.result_type.admits(&result_initial, &result_best)?);
    println!("optimized plan agrees under ≡L,⟨EmpName ASC⟩ ✓");
    Ok(())
}
