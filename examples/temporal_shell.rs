//! An interactive temporal-SQL shell over the layered engine.
//!
//! ```sh
//! cargo run --example temporal_shell            # interactive
//! echo 'SELECT EmpName FROM EMPLOYEE' | cargo run --example temporal_shell
//! ```
//!
//! Commands (documented with sample sessions in `docs/shell.md`):
//! * plain temporal SQL — compiled, layered, optimized, executed;
//! * `\tables` — list catalog tables with their measured invariants and
//!   statistics;
//! * `\explain <sql>` — annotated logical plan (Figure 6 property vectors);
//! * `\costs <sql>` — EXPLAIN the *optimized* plan with per-node site,
//!   estimated rows, and estimated cost (the statistics-driven view);
//! * `\analyze <sql>` — EXPLAIN ANALYZE: execute the optimized plan and
//!   render it annotated per operator with estimated vs actual rows,
//!   q-error, exclusive wall time, cpu time/threads, and throughput
//!   (re-opt events inlined under `\adaptive`);
//! * `\profile <sql> [file]` — execute the query with tracing enabled and
//!   write the profile as Chrome trace-event JSON (default `trace.json`;
//!   open in `chrome://tracing` or Perfetto);
//! * `\counters` — dump the process-wide observability counters (memo
//!   exprs, rules fired, stats-cache traffic, morsels, re-opts, wire
//!   volume);
//! * `\fragments <sql>` — the SQL shipped to the DBMS per `Tˢ` fragment;
//! * `\plans <sql>` — size of the Figure 5 plan space for the query;
//! * `\threads N` — execute stratum operators on the morsel-parallel
//!   engine with `N` workers (`\threads 0` returns to the serial batch
//!   pipeline);
//! * `\adaptive on|off` — adaptive mid-query re-optimization: DBMS
//!   fragments are bound with measured wire statistics and the stratum
//!   remainder re-plans at pipeline breakers on large q-errors
//!   (`docs/adaptive.md`);
//! * `\timing` — toggle the per-operator report after each query,
//!   including the per-thread breakdown under `\threads` and re-opt
//!   events under `\adaptive`;
//! * `\timeout <ms>` — per-query deadline: queries exceeding it fail with
//!   a typed `deadline exceeded` error at the next governance checkpoint
//!   (`\timeout off` clears; `docs/robustness.md`);
//! * `\memlimit <bytes[k|m|g]>` — per-query memory budget over the
//!   engine's accounted allocations (hash tables, sort buffers,
//!   materialized intermediates, wire decode); exceeding it fails the
//!   query with a typed budget error, gracefully (`\memlimit off`);
//! * `\faults <seed>|down|off` — deterministic fault injection on the
//!   stratum↔DBMS link (seeded transient errors and truncated payloads,
//!   absorbed by bounded retry; `down` declares an outage so every
//!   fragment degrades to local execution);
//! * `\quit` — exit.
//!
//! The catalog starts pre-loaded with the paper's EMPLOYEE and PROJECT.

use std::io::{self, BufRead, Write};
use std::time::Duration;

use tqo_core::context::{self, QueryContext};
use tqo_core::enumerate::{enumerate, EnumerationConfig};
use tqo_core::rules::RuleSet;
use tqo_exec::ExecMode;
use tqo_storage::paper;
use tqo_stratum::{fragments, make_layered, FaultConfig, Stratum};

/// Fault injection as set by `\faults`.
#[derive(Clone, Copy, PartialEq)]
enum Faults {
    Off,
    Seeded(u64),
    Down,
}

/// Mutable shell state: the layered engine plus display toggles.
struct Shell {
    catalog: tqo_storage::Catalog,
    stratum: Stratum,
    timing: bool,
    mode: ExecMode,
    adaptive: bool,
    timeout_ms: Option<u64>,
    memlimit: Option<usize>,
    faults: Faults,
}

impl Shell {
    /// Rebuild the stratum from the current mode/adaptive/faults toggles.
    fn rebuild(&mut self) {
        let mut stratum = Stratum::new(self.catalog.clone()).with_exec_mode(self.mode);
        if self.adaptive {
            stratum = stratum.with_adaptive(tqo_exec::AdaptiveConfig::default());
        }
        match self.faults {
            Faults::Off => {}
            Faults::Seeded(seed) => stratum = stratum.with_faults(FaultConfig::with_seed(seed)),
            Faults::Down => stratum = stratum.with_faults(FaultConfig::down()),
        }
        self.stratum = stratum;
    }

    /// The governance context of the next query, if `\timeout` or
    /// `\memlimit` configured one.
    fn query_context(&self) -> Option<QueryContext> {
        if self.timeout_ms.is_none() && self.memlimit.is_none() {
            return None;
        }
        let mut ctx = QueryContext::new();
        if let Some(ms) = self.timeout_ms {
            ctx = ctx.with_timeout(Duration::from_millis(ms));
        }
        if let Some(bytes) = self.memlimit {
            ctx = ctx.with_memory_limit(bytes);
        }
        Some(ctx)
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix.
fn parse_bytes(arg: &str) -> Result<usize, Box<dyn std::error::Error>> {
    let lower = arg.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => match lower.as_bytes()[lower.len() - 1] {
            b'k' => (d, 1usize << 10),
            b'm' => (d, 1usize << 20),
            _ => (d, 1usize << 30),
        },
        None => (lower.as_str(), 1usize),
    };
    let n: usize = digits.trim().parse()?;
    n.checked_mul(mult)
        .ok_or_else(|| "byte count overflows".into())
}

fn main() -> io::Result<()> {
    let catalog = paper::catalog();
    let mut shell = Shell {
        stratum: Stratum::new(catalog.clone()),
        catalog,
        timing: false,
        mode: ExecMode::Batch,
        adaptive: false,
        timeout_ms: None,
        memlimit: None,
        faults: Faults::Off,
    };
    let stdin = io::stdin();
    let mut out = io::stdout();

    writeln!(out, "tqo temporal shell — EMPLOYEE and PROJECT are loaded.")?;
    writeln!(
        out,
        "try: VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName"
    )?;
    write!(out, "tqo> ")?;
    out.flush()?;

    for line in stdin.lock().lines() {
        let line = line?;
        let input = line.trim();
        if input.is_empty() {
            write!(out, "tqo> ")?;
            out.flush()?;
            continue;
        }
        if input == "\\quit" || input == "\\q" {
            break;
        }
        let result = dispatch(input, &mut shell);
        match result {
            Ok(text) => writeln!(out, "{text}")?,
            Err(e) => writeln!(out, "error: {e}")?,
        }
        write!(out, "tqo> ")?;
        out.flush()?;
    }
    writeln!(out)?;
    Ok(())
}

fn dispatch(input: &str, shell: &mut Shell) -> Result<String, Box<dyn std::error::Error>> {
    let catalog = &shell.catalog;
    if input == "\\tables" {
        let mut text = String::new();
        for name in catalog.names() {
            let table = catalog.get(&name)?;
            let p = table.props();
            let s = table.stats();
            text.push_str(&format!(
                "{name}: {} rows ({} distinct) [{}] dup_free={} snapshot_dup_free={} \
                 coalesced={} overlap_degree={}\n",
                table.len(),
                s.distinct_rows,
                p.schema,
                p.dup_free,
                p.snapshot_dup_free,
                p.coalesced,
                s.max_class_overlap,
            ));
        }
        return Ok(text);
    }
    if let Some(arg) = input.strip_prefix("\\threads") {
        let arg = arg.trim();
        let threads: usize = if arg.is_empty() { 0 } else { arg.parse()? };
        shell.mode = if threads == 0 {
            ExecMode::Batch
        } else {
            ExecMode::Parallel { threads }
        };
        shell.rebuild();
        return Ok(match shell.mode {
            ExecMode::Parallel { threads } => {
                format!("stratum operators now run morsel-parallel on {threads} worker(s)")
            }
            _ => "stratum operators back on the serial batch pipeline".into(),
        });
    }
    if let Some(arg) = input.strip_prefix("\\adaptive") {
        shell.adaptive = match arg.trim() {
            "on" => true,
            "off" => false,
            "" => !shell.adaptive,
            other => return Err(format!("\\adaptive on|off (got `{other}`)").into()),
        };
        shell.rebuild();
        return Ok(if shell.adaptive {
            let cfg = tqo_exec::AdaptiveConfig::default();
            format!(
                "adaptive re-optimization on (q-threshold {}, max {} re-plans; \
                 \\timing shows re-opt events)",
                cfg.q_threshold, cfg.max_reopt
            )
        } else {
            "adaptive re-optimization off — static plans only".into()
        });
    }
    if input == "\\timing" {
        shell.timing = !shell.timing;
        return Ok(format!(
            "per-operator timing {}",
            if shell.timing { "on" } else { "off" }
        ));
    }
    if let Some(arg) = input.strip_prefix("\\timeout") {
        let arg = arg.trim();
        shell.timeout_ms = match arg {
            "" | "off" | "0" => None,
            ms => Some(ms.parse()?),
        };
        return Ok(match shell.timeout_ms {
            Some(ms) => format!(
                "queries now fail with a typed error after {ms} ms \
                 (checked at every governance checkpoint)"
            ),
            None => "per-query deadline off".into(),
        });
    }
    if let Some(arg) = input.strip_prefix("\\memlimit") {
        let arg = arg.trim();
        shell.memlimit = match arg {
            "" | "off" | "0" => None,
            bytes => Some(parse_bytes(bytes)?),
        };
        return Ok(match shell.memlimit {
            Some(bytes) => format!(
                "queries are now budgeted to {bytes} accounted byte(s); \
                 exceeding it is a typed error, not an abort"
            ),
            None => "per-query memory budget off".into(),
        });
    }
    if let Some(arg) = input.strip_prefix("\\faults") {
        shell.faults = match arg.trim() {
            "" | "off" => Faults::Off,
            "down" => Faults::Down,
            seed => Faults::Seeded(seed.parse()?),
        };
        shell.rebuild();
        return Ok(match shell.faults {
            Faults::Off => "stratum↔DBMS link healthy — fault injection off".into(),
            Faults::Seeded(seed) => format!(
                "injecting deterministic link faults (seed {seed}): transient errors \
                 and truncated payloads, absorbed by bounded retry"
            ),
            Faults::Down => "DBMS declared down — every fragment degrades to local \
                             execution (recorded in dbms_fallbacks)"
                .into(),
        });
    }
    if let Some(sql) = input.strip_prefix("\\explain ") {
        return Ok(tqo_sql::explain(sql, catalog)?);
    }
    if let Some(sql) = input.strip_prefix("\\costs ") {
        // Compile, layer, optimize, then render the chosen plan with the
        // statistics-driven estimates: per node, the execution site, the
        // estimated output rows, and the estimated cost contribution.
        let plan = tqo_sql::compile(sql, catalog)?;
        let layered = make_layered(&plan)?;
        // Match the stratum's own optimizer: calibrated to the engine the
        // stratum executes with, faithful algorithms (the stratum never
        // runs the fast variants).
        let model = tqo_core::cost::CostModel::calibrated(shell.stratum.exec_mode().engine())
            .with_fast_algorithms(false);
        let optimized = tqo_core::optimizer::optimize(
            &layered,
            &RuleSet::standard(),
            &tqo_core::optimizer::OptimizerConfig {
                cost_model: model.clone(),
                ..Default::default()
            },
        )?;
        let rendered = tqo_core::plan::display::explain_with_cost(&optimized.best, &model)?;
        return Ok(format!(
            "{rendered}total estimated cost: {:.0}\n",
            optimized.cost.0
        ));
    }
    if let Some(sql) = input.strip_prefix("\\analyze ") {
        let ctx = shell.query_context();
        let (result, _metrics, report) = {
            let _guard = ctx.as_ref().map(context::install);
            shell.stratum.run_sql_analyzed(sql)?
        };
        return Ok(format!("{report}({} rows)", result.len()));
    }
    if let Some(rest) = input.strip_prefix("\\profile ") {
        // `\profile <sql> [file]`: a trailing bare word with no spaces and
        // a `.json` suffix names the output file; everything else is SQL.
        let (sql, path) = match rest.rsplit_once(' ') {
            Some((sql, last)) if last.ends_with(".json") => (sql.trim(), last),
            _ => (rest.trim(), "trace.json"),
        };
        let collector = tqo_core::trace::Collector::new();
        let result_len = {
            let _guard = tqo_core::trace::install(&collector);
            let (result, _, _) = shell.stratum.run_sql_optimized(sql)?;
            result.len()
        };
        let profile = collector.finish();
        let events = profile.events.len();
        let dropped = profile.dropped;
        std::fs::write(path, profile.to_chrome_json())?;
        let mut text = format!(
            "{result_len} rows; {events} trace event(s) written to {path} \
             (chrome://tracing or ui.perfetto.dev)"
        );
        if dropped > 0 {
            text.push_str(&format!(
                "\n({dropped} event(s) dropped by the ring buffer)"
            ));
        }
        return Ok(text);
    }
    if input == "\\counters" {
        let mut text = String::new();
        for c in tqo_core::trace::counters::all() {
            text.push_str(&format!("{:<28} {:>12}  {}\n", c.name(), c.get(), c.help()));
        }
        return Ok(text);
    }
    if let Some(sql) = input.strip_prefix("\\fragments ") {
        let plan = tqo_sql::compile(sql, catalog)?;
        let layered = make_layered(&plan)?;
        let mut text = String::new();
        for f in fragments(&layered)? {
            text.push_str(&format!(
                "at {:?}:\n  {}\n",
                f.transfer_path,
                f.sql.as_deref().unwrap_or("<stratum-only fragment>")
            ));
        }
        return Ok(text);
    }
    if let Some(sql) = input.strip_prefix("\\plans ") {
        let plan = tqo_sql::compile(sql, catalog)?;
        let layered = make_layered(&plan)?;
        let e = enumerate(
            &layered,
            &RuleSet::standard(),
            EnumerationConfig { max_plans: 20_000 },
        )?;
        return Ok(format!(
            "{} equivalent plans ({} rule applications{})",
            e.plans.len(),
            e.applications,
            if e.truncated { ", truncated" } else { "" }
        ));
    }

    // Plain SQL: compile → layer → optimize → run, governed by the
    // `\timeout`/`\memlimit` context when one is configured.
    let ctx = shell.query_context();
    let (result, metrics, _) = {
        let _guard = ctx.as_ref().map(context::install);
        shell.stratum.run_sql_optimized(input)?
    };
    let mut text = format!(
        "{result}({} rows; {} fragments, {} rows / {} bytes transferred; dbms {:?}, stratum {:?})",
        result.len(),
        metrics.fragments,
        metrics.transferred_rows,
        metrics.transfer_bytes,
        metrics.dbms_time,
        metrics.stratum_time
    );
    if !metrics.reopts.is_empty() {
        let switched = metrics.reopts.iter().filter(|e| e.plan_changed).count();
        let replanned = metrics.reopts.iter().filter(|e| e.replanned).count();
        text.push_str(&format!(
            "\n({} checkpoint(s): {replanned} re-planned, {switched} plan(s) switched)",
            metrics.reopts.len()
        ));
    }
    if shell.timing && !metrics.operators.is_empty() {
        let report = tqo_exec::ExecMetrics {
            operators: metrics.operators.clone(),
            reopts: metrics.reopts.clone(),
        }
        .report();
        text.push_str("\nstratum operators:\n");
        text.push_str(&report);
    }
    Ok(text)
}
