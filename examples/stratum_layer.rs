//! The layered (stratum) architecture in action: fragment SQL shipped to
//! the simulated DBMS, wire volume, and the effect of pushing work into
//! the DBMS.
//!
//! ```sh
//! cargo run --example stratum_layer
//! ```

use tqo_core::plan::PlanBuilder;
use tqo_core::sortspec::Order;
use tqo_storage::WorkloadGenerator;
use tqo_stratum::{fragments, make_layered, Stratum};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A generated EMPLOYEE/PROJECT workload, 40 employees.
    let catalog = WorkloadGenerator::new(42).figure1_workload(4)?;
    println!(
        "workload: EMPLOYEE {} rows, PROJECT {} rows\n",
        catalog.get("EMPLOYEE")?.len(),
        catalog.get("PROJECT")?.len()
    );

    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let plan = tqo_sql::compile(sql, &catalog)?;
    let layered = make_layered(&plan)?;

    println!("=== DBMS-bound fragments and their SQL ===\n");
    for f in fragments(&layered)? {
        println!(
            "fragment at {:?}:\n  {}\n",
            f.transfer_path,
            f.sql.as_deref().unwrap_or("<no SQL rendering>")
        );
    }

    let stratum = Stratum::new(catalog.clone());
    let (result, metrics) = stratum.run(&layered)?;
    println!("=== Unoptimized layered execution ===");
    println!(
        "rows={} fragments={} transferred_rows={} wire_bytes={}",
        result.len(),
        metrics.fragments,
        metrics.transferred_rows,
        metrics.transfer_bytes
    );
    println!(
        "dbms={:?} stratum={:?}\n",
        metrics.dbms_time, metrics.stratum_time
    );

    // With the optimizer: the sort should move into the DBMS, redundant
    // operations disappear.
    let (result_opt, metrics_opt, chosen) = stratum.run_sql_optimized(sql)?;
    println!("=== Optimized layered execution ===");
    println!(
        "rows={} fragments={} transferred_rows={} wire_bytes={}",
        result_opt.len(),
        metrics_opt.fragments,
        metrics_opt.transferred_rows,
        metrics_opt.transfer_bytes
    );
    println!(
        "dbms={:?} stratum={:?}\n",
        metrics_opt.dbms_time, metrics_opt.stratum_time
    );
    println!(
        "chosen plan:\n{}",
        tqo_core::plan::display::plan_to_string(&chosen.root)
    );

    // Demonstrate the sort-site asymmetry directly (the paper's §2.1:
    // "the DBMS sorts faster than the stratum").
    println!("=== Sort placement microbenchmark (one execution each) ===");
    let base = catalog.base_props("EMPLOYEE")?;
    let sort_in_stratum = PlanBuilder::scan("EMPLOYEE", base.clone())
        .transfer_s()
        .sort(Order::asc(&["EmpName"]))
        .build_list(Order::asc(&["EmpName"]));
    let sort_in_dbms = PlanBuilder::scan("EMPLOYEE", base)
        .sort(Order::asc(&["EmpName"]))
        .transfer_s()
        .build_list(Order::asc(&["EmpName"]));
    let (_, m1) = stratum.run(&sort_in_stratum)?;
    let (_, m2) = stratum.run(&sort_in_dbms)?;
    println!(
        "stratum sort: dbms={:?} stratum={:?}",
        m1.dbms_time, m1.stratum_time
    );
    println!(
        "dbms sort:    dbms={:?} stratum={:?}",
        m2.dbms_time, m2.stratum_time
    );
    Ok(())
}
