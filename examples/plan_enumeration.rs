//! Figure 5's enumeration algorithm, observable: how the query's result
//! type (Definition 5.1) changes the space of admissible plans.
//!
//! ```sh
//! cargo run --example plan_enumeration
//! ```

use tqo_core::enumerate::{enumerate, EnumerationConfig};
use tqo_core::equivalence::ResultType;
use tqo_core::plan::{LogicalPlan, PlanBuilder};
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::paper;

fn running_example(rt: ResultType) -> LogicalPlan {
    let catalog = paper::catalog();
    let emp = PlanBuilder::scan("EMPLOYEE", catalog.base_props("EMPLOYEE").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s()
        .rdup_t();
    let prj = PlanBuilder::scan("PROJECT", catalog.base_props("PROJECT").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s();
    let root = emp
        .difference_t(prj)
        .rdup_t()
        .coalesce()
        .sort(Order::asc(&["EmpName"]))
        .node();
    LogicalPlan::new(root, rt)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = RuleSet::standard();
    println!("rule catalogue: {} rules\n", rules.len());

    for (label, rt) in [
        (
            "ORDER BY EmpName (list result)",
            ResultType::List(Order::asc(&["EmpName"])),
        ),
        (
            "no ORDER BY / DISTINCT (multiset result)",
            ResultType::Multiset,
        ),
        ("DISTINCT only (set result)", ResultType::Set),
    ] {
        let plan = running_example(rt);
        let e = enumerate(&plan, &rules, EnumerationConfig { max_plans: 50_000 })?;
        println!("result type: {label}");
        println!(
            "  {} equivalent plans ({} rule applications attempted{})",
            e.plans.len(),
            e.applications,
            if e.truncated { ", truncated" } else { "" }
        );
        // Show a couple of derivations.
        {
            let idx = e.plans.len().saturating_sub(1);
            let chain = e.derivation_chain(idx);
            if !chain.is_empty() {
                let steps: Vec<String> = chain
                    .iter()
                    .map(|a| format!("{}({})", a.rule, a.equivalence))
                    .collect();
                println!("  deepest derivation: {}", steps.join(" → "));
            }
        }
        println!();
    }

    // The Figure 4-only rule set, for comparison.
    let fig4 = RuleSet::figure4();
    let plan = running_example(ResultType::List(Order::asc(&["EmpName"])));
    let e = enumerate(&plan, &fig4, EnumerationConfig::default())?;
    println!(
        "with only Figure 4's rules (D1–D6, C1–C10, S1–S3): {} plans",
        e.plans.len()
    );

    // The same space through the memo optimizer: instead of materializing
    // every equivalent plan, equivalent subplans share a *group* and the
    // cross product of per-region variants is never built. Both strategies
    // must pick equally cheap plans — the memo just gets there without the
    // plan wall.
    use tqo_core::optimizer::{optimize, OptimizerConfig, SearchStrategy};
    println!("\n=== exhaustive vs memo search ===");
    let plan = running_example(ResultType::List(Order::asc(&["EmpName"])));
    let exhaustive = optimize(&plan, &rules, &OptimizerConfig::default())?;
    let memo = optimize(
        &plan,
        &rules,
        &OptimizerConfig {
            strategy: SearchStrategy::Memo,
            ..Default::default()
        },
    )?;
    let stats = memo.memo.expect("memo strategy reports stats");
    println!(
        "exhaustive: best cost {:.0} out of {} materialized plans",
        exhaustive.cost.0,
        exhaustive.enumeration.plans.len()
    );
    println!(
        "memo:       best cost {:.0} out of {} expressions in {} groups \
         ({} rule applications)",
        memo.cost.0, stats.exprs, stats.groups, stats.applications
    );
    let memo_rules: Vec<String> = memo
        .derivation
        .iter()
        .map(|a| format!("{}({})", a.rule, a.equivalence))
        .collect();
    println!("memo derivation of the winner: {}", memo_rules.join(" → "));
    Ok(())
}
