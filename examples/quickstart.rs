//! Quickstart: define temporal tables, run temporal SQL, inspect the plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tqo_core::plan::display::annotated_to_string;
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::tuple;
use tqo_core::value::DataType;
use tqo_storage::Catalog;
use tqo_stratum::Stratum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A temporal table: rooms and who occupies them, with closed-open
    //    validity periods [T1, T2).
    let schema = Schema::temporal(&[("Room", DataType::Str), ("Guest", DataType::Str)]);
    let bookings = Relation::new(
        schema,
        vec![
            tuple!["101", "ada", 1i64, 5i64],
            tuple!["101", "ada", 5i64, 9i64], // adjacent: coalescible
            tuple!["102", "grace", 2i64, 6i64],
            tuple!["101", "alan", 9i64, 12i64],
            tuple!["102", "grace", 8i64, 11i64],
        ],
    )?;

    let catalog = Catalog::new();
    catalog.register("BOOKINGS", bookings)?;

    // 2. Temporal SQL: "when was each room occupied?" — coalesced, sorted.
    let sql = "VALIDTIME SELECT Room FROM BOOKINGS COALESCE ORDER BY Room";
    let plan = tqo_sql::compile(sql, &catalog)?;

    println!("query: {sql}\n");
    println!("logical plan with Table 2 property vectors");
    println!("[OrderRequired DuplicatesRelevant PeriodPreserving]:\n");
    println!("{}", annotated_to_string(&plan)?);

    // 3. Execute through the layered engine (DBMS fragments + stratum).
    let stratum = Stratum::new(catalog);
    let (result, metrics) = stratum.run_sql(sql)?;
    println!("result:\n{result}");
    println!(
        "fragments={} transferred_rows={} wire_bytes={} dbms={:?} stratum={:?}",
        metrics.fragments,
        metrics.transferred_rows,
        metrics.transfer_bytes,
        metrics.dbms_time,
        metrics.stratum_time,
    );

    // Room 101 is occupied [1,9) (ada, coalesced) and [9,12) (alan) — but
    // those belong to different guests only in the raw data; the projection
    // on Room merges all of [1,12).
    assert_eq!(result.len(), 3);
    Ok(())
}
