//! Temporal aggregation `ξᵀ`: the department-headcount timeline, evaluated
//! "conceptually at each point of time" (§2.2's first class of temporal
//! statements), plus the coalescing rule C7 in action.
//!
//! ```sh
//! cargo run --example temporal_aggregation
//! ```

use tqo_core::expr::{AggFunc, AggItem};
use tqo_core::ops;
use tqo_storage::paper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let employee = paper::employee();
    println!("EMPLOYEE:\n{employee}");

    // Headcount per department over time.
    let headcount = ops::aggregate_t(
        &employee,
        &["Dept".to_string()],
        &[AggItem::count_star("headcount")],
    )?;
    println!("ξᵀ_Dept; COUNT(*) (headcount timeline):\n{headcount}");

    // Verify a snapshot by hand: at month 6, Sales has John [1,8) and
    // Anna [6,12) → 2; Advertising has John [6,11) → 1.
    let snap = headcount.snapshot(6)?;
    println!("snapshot at t=6:\n{snap}");

    // Earliest hire per department, as a timeline.
    let earliest = ops::aggregate_t(
        &employee,
        &["Dept".to_string()],
        &[
            AggItem::new(AggFunc::Min, Some("T1"), "first_start"),
            AggItem::count_star("n"),
        ],
    )?;
    println!("ξᵀ_Dept; MIN(T1), COUNT(*):\n{earliest}");

    // Grand-total headcount across the company.
    let total = ops::aggregate_t(&employee, &[], &[AggItem::count_star("n")])?;
    println!("company-wide headcount timeline:\n{total}");

    // Aggregation fragments at every group endpoint; coalescing merges the
    // adjacent fragments whose values agree — this is why plans put coalᵀ
    // above ξᵀ, and why rule C7 can drop a coalescing *below* it.
    let coalesced = ops::coalesce(&ops::rdup_t(&total)?)?;
    println!("coalesced:\n{coalesced}");

    assert!(coalesced.len() <= total.len());
    Ok(())
}
