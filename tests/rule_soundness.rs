//! Rule soundness: every transformation rule in the catalogue, applied at
//! any matching location of a pool of plan shapes over *random* relations,
//! must produce a subexpression whose evaluation is equivalent to the
//! original's at the rule's claimed equivalence type.
//!
//! This is the executable counterpart of the paper's §4 claim that "all
//! transformation rules can be verified formally" — here they are verified
//! empirically against the operational semantics, which is exactly what the
//! claimed tags must be sound for.

mod common;

use common::{arb_snapshot, arb_temporal};
use proptest::prelude::*;

use tqo_core::equivalence::ResultType;
use tqo_core::expr::{AggFunc, AggItem, Expr, ProjItem};
use tqo_core::interp::{eval, Env};
use tqo_core::plan::props::annotate;
use tqo_core::plan::{LogicalPlan, PlanBuilder, PlanNode};
use tqo_core::relation::Relation;
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::table::derive_props;

/// An honest scan: base properties measured from the actual data, so rule
/// preconditions reflect reality.
fn scan_of(name: &str, relation: &Relation) -> PlanBuilder {
    PlanBuilder::scan(name, derive_props(relation).unwrap())
}

/// The pool of plan shapes exercising every rule's match pattern.
fn shapes(
    t1: &Relation, // temporal
    t2: &Relation, // temporal
    s1: &Relation, // snapshot
    s2: &Relation, // snapshot
) -> Vec<PlanNode> {
    let t = |n: &str| scan_of(n, if n == "T1R" { t1 } else { t2 });
    let s = |n: &str| scan_of(n, if n == "S1R" { s1 } else { s2 });
    let time_free_pred = Expr::eq(Expr::col("E"), Expr::lit("v0"));
    let timed_pred = Expr::lt(Expr::col("T1"), Expr::lit(9i64));
    let snap_pred = Expr::bin(tqo_core::expr::BinOp::Gt, Expr::col("A"), Expr::lit(2i64));

    vec![
        // Duplicate-elimination shapes.
        s("S1R").rdup().node(),
        s("S1R").rdup().rdup().node(),
        t("T1R").rdup_t().node(),
        t("T1R").rdup_t().rdup_t().node(),
        s("S1R").union_max(s("S2R")).rdup().node(),
        s("S1R").rdup().union_max(s("S2R").rdup()).node(),
        t("T1R").union_t(t("T2R")).rdup_t().node(),
        t("T1R").rdup().node(), // rdup on temporal input (demotes)
        // Coalescing shapes.
        t("T1R").coalesce().node(),
        t("T1R").coalesce().coalesce().node(),
        t("T1R").select(time_free_pred.clone()).coalesce().node(),
        t("T1R").select(timed_pred.clone()).coalesce().node(),
        t("T1R").coalesce().select(time_free_pred.clone()).node(),
        t("T1R").coalesce().project_cols(&["E"]).node(),
        t("T1R").coalesce().project_cols(&["E", "T1", "T2"]).node(),
        t("T1R")
            .coalesce()
            .union_all(t("T2R").coalesce())
            .coalesce()
            .node(),
        t("T1R")
            .coalesce()
            .union_t(t("T2R").coalesce())
            .coalesce()
            .node(),
        t("T1R")
            .coalesce()
            .aggregate_t(vec!["E".into()], vec![AggItem::count_star("n")])
            .coalesce()
            .node(),
        t("T1R")
            .coalesce()
            .project_cols(&["E", "T1", "T2"])
            .coalesce()
            .node(),
        t("T1R")
            .product_t(t("T2R"))
            .project_cols(&["1.E", "2.E", "T1", "T2"])
            .coalesce()
            .node(),
        t("T1R").rdup_t().difference_t(t("T2R")).coalesce().node(),
        t("T1R").difference_t(t("T2R")).coalesce().node(),
        // Sorting shapes.
        t("T1R").sort(Order::asc(&["E"])).node(),
        t("T1R")
            .sort(Order::asc(&["E", "T1"]))
            .sort(Order::asc(&["E"]))
            .node(),
        t("T1R")
            .sort(Order::asc(&["E"]))
            .sort(Order::asc(&["E", "T1"]))
            .node(),
        t("T1R")
            .select(time_free_pred.clone())
            .sort(Order::asc(&["E"]))
            .node(),
        t("T1R")
            .project_cols(&["E", "T1", "T2"])
            .sort(Order::asc(&["E"]))
            .node(),
        t("T1R").rdup_t().coalesce().sort(Order::asc(&["E"])).node(),
        t("T1R").rdup_t().sort(Order::asc(&["E"])).node(),
        t("T1R")
            .difference_t(t("T2R"))
            .sort(Order::asc(&["E"]))
            .node(),
        s("S1R").product(s("S2R")).sort(Order::asc(&["1.A"])).node(),
        // Conventional shapes.
        s("S1R")
            .select(snap_pred.clone())
            .select(Expr::eq(Expr::col("B"), Expr::lit("s1")))
            .node(),
        s("S1R")
            .project_cols(&["A", "B"])
            .select(snap_pred.clone())
            .node(),
        s("S1R")
            .product(s("S2R"))
            .select(Expr::bin(
                tqo_core::expr::BinOp::Gt,
                Expr::col("1.A"),
                Expr::lit(2i64),
            ))
            .node(),
        s("S1R")
            .product(s("S2R"))
            .select(Expr::eq(Expr::col("2.B"), Expr::lit("s0")))
            .node(),
        s("S1R")
            .union_all(s("S2R"))
            .select(snap_pred.clone())
            .node(),
        s("S1R")
            .union_max(s("S2R"))
            .select(snap_pred.clone())
            .node(),
        t("T1R")
            .union_t(t("T2R"))
            .select(time_free_pred.clone())
            .node(),
        s("S1R")
            .difference(s("S2R"))
            .select(snap_pred.clone())
            .node(),
        t("T1R")
            .difference_t(t("T2R"))
            .select(time_free_pred.clone())
            .node(),
        s("S1R").rdup().select(snap_pred.clone()).node(),
        t("T1R").rdup_t().select(time_free_pred.clone()).node(),
        s("S1R")
            .aggregate(
                vec!["B".into()],
                vec![AggItem::new(AggFunc::Sum, Some("A"), "s")],
            )
            .select(Expr::eq(Expr::col("B"), Expr::lit("s1")))
            .node(),
        t("T1R")
            .aggregate_t(vec!["E".into()], vec![AggItem::count_star("n")])
            .select(Expr::eq(Expr::col("E"), Expr::lit("v0")))
            .node(),
        s("S1R")
            .project(vec![
                ProjItem::new(
                    Expr::bin(tqo_core::expr::BinOp::Add, Expr::col("A"), Expr::lit(1i64)),
                    "A1",
                ),
                ProjItem::col("B"),
            ])
            .project(vec![ProjItem::new(Expr::col("A1"), "X")])
            .node(),
        s("S1R").product(s("S2R")).rdup().node(),
        s("S1R").union_all(s("S2R")).node(),
        s("S1R").union_all(s("S2R")).union_all(s("S1R")).node(),
        s("S1R").union_max(s("S2R")).node(),
        t("T1R").union_t(t("T2R")).node(),
        s("S1R").product(s("S2R")).node(),
        t("T1R").product_t(t("T2R")).node(),
        // Transfer shapes.
        t("T1R").transfer_d().transfer_s().node(),
        t("T1R").transfer_s().transfer_d().node(),
        t("T1R").transfer_s().select(time_free_pred).node(),
        t("T1R").transfer_s().sort(Order::asc(&["E"])).node(),
        t("T1R")
            .transfer_s()
            .union_all(t("T2R").transfer_s())
            .node(),
        PlanNode::TransferS {
            input: std::sync::Arc::new(t("T1R").select(timed_pred).node()),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_rule_preserves_its_claimed_equivalence(
        t1 in arb_temporal(3, 10),
        t2 in arb_temporal(3, 8),
        s1 in arb_snapshot(10),
        s2 in arb_snapshot(8),
    ) {
        let env = Env::new()
            .with("T1R", t1.clone())
            .with("T2R", t2.clone())
            .with("S1R", s1.clone())
            .with("S2R", s2.clone());
        let rules = RuleSet::standard();
        let mut fired = 0usize;

        for shape in shapes(&t1, &t2, &s1, &s2) {
            let plan = LogicalPlan::new(shape, ResultType::Multiset);
            let ann = match annotate(&plan) {
                Ok(a) => a,
                Err(e) => panic!("shape failed to annotate: {e}\n{}",
                    tqo_core::plan::display::plan_to_string(&plan.root)),
            };
            for path in plan.root.paths() {
                let node = plan.root.get(&path).unwrap();
                for rule in rules.rules() {
                    for m in rule.try_apply(node, &path, &ann) {
                        fired += 1;
                        let before = eval(node, &env).unwrap();
                        let after = match eval(&m.replacement, &env) {
                            Ok(r) => r,
                            Err(e) => panic!(
                                "rule {} produced an invalid subtree: {e}",
                                rule.name()
                            ),
                        };
                        let eq = rule.equivalence();
                        prop_assert!(
                            eq.holds(&before, &after).unwrap(),
                            "rule {} claims {} but it does not hold\nbefore:\n{}\nafter:\n{}\nat shape:\n{}",
                            rule.name(),
                            eq,
                            before,
                            after,
                            tqo_core::plan::display::plan_to_string(&plan.root)
                        );
                    }
                }
            }
        }
        // The pool must actually exercise a healthy number of matches.
        prop_assert!(fired >= 40, "only {} rule matches fired", fired);
    }
}

/// Every rule in the catalogue fires on at least one shape (coverage of the
/// pool itself, with deterministic mid-sized inputs).
#[test]
fn every_rule_fires_somewhere() {
    use rand::SeedableRng;
    use tqo_storage::{GenConfig, WorkloadGenerator};
    let _ = rand::rngs::StdRng::seed_from_u64(0);
    let mut g = WorkloadGenerator::new(99);
    let t1 = g
        .temporal(&GenConfig {
            classes: 3,
            fragments_per_class: 4,
            adjacency_prob: 0.4,
            overlap_prob: 0.3,
            duplicate_prob: 0.2,
            ..GenConfig::default()
        })
        .unwrap();
    let t2 = g
        .temporal(&GenConfig {
            classes: 3,
            fragments_per_class: 3,
            ..GenConfig::default()
        })
        .unwrap();
    let s1 = g.conventional(12, 4).unwrap();
    let s2 = g.conventional(8, 4).unwrap();

    let rules = RuleSet::standard();
    let mut unfired: std::collections::BTreeSet<&str> =
        rules.rules().iter().map(|r| r.name()).collect();

    for shape in shapes(&t1, &t2, &s1, &s2) {
        let plan = LogicalPlan::new(shape, ResultType::Multiset);
        let ann = annotate(&plan).unwrap();
        for path in plan.root.paths() {
            let node = plan.root.get(&path).unwrap();
            for rule in rules.rules() {
                if !rule.try_apply(node, &path, &ann).is_empty() {
                    unfired.remove(rule.name());
                }
            }
        }
    }
    // D1 and C1 need duplicate-free / coalesced inputs; give them those.
    let clean = tqo_core::ops::rdup(&s1).unwrap();
    let coalesced = tqo_core::ops::coalesce(&tqo_core::ops::rdup_t(&t1).unwrap()).unwrap();
    for shape in [
        scan_of("CLEAN", &clean).rdup().node(),
        scan_of("COAL", &coalesced).coalesce().node(),
        scan_of("COAL", &coalesced)
            .sort(Order::asc(&["E"]))
            .coalesce()
            .node(),
    ] {
        let plan = LogicalPlan::new(shape, ResultType::Multiset);
        let ann = annotate(&plan).unwrap();
        for path in plan.root.paths() {
            let node = plan.root.get(&path).unwrap();
            for rule in rules.rules() {
                if !rule.try_apply(node, &path, &ann).is_empty() {
                    unfired.remove(rule.name());
                }
            }
        }
    }

    // S1 needs a sorted input below a sort.
    assert!(
        unfired.is_empty(),
        "rules never fired on the coverage pool: {unfired:?}"
    );
}
