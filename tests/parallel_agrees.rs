//! Engine agreement under parallelism: for any one physical plan the
//! morsel-parallel engine must produce a relation **equal (`==`)** to the
//! row and batch engines' output — same rows, same order, same periods —
//! at every tested thread count (1, 2, 4, 8), across the paper catalog,
//! the generated-workload pool, the 20-fixture optimizer plan pool, and
//! the proptest pool. Ordered (coalᵀ/sorted) outputs in particular must be
//! byte-identical regardless of thread count: parallelism must never be
//! observable in a result.

mod common;

use common::{arb_snapshot, arb_temporal};
use proptest::prelude::*;

use tqo_core::relation::Relation;
use tqo_exec::{execute_mode, lower, ExecMode, PlannerConfig};
use tqo_storage::{paper, Catalog};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config(allow_fast: bool) -> PlannerConfig {
    PlannerConfig {
        allow_fast,
        ..Default::default()
    }
}

/// Row ≡ batch ≡ parallel (exactly) for both planner modes, at every
/// thread count. Returns the fast-mode result for result-type checks.
fn assert_all_engines_exact(
    plan: &tqo_core::plan::LogicalPlan,
    env: &tqo_core::interp::Env,
    context: &str,
) -> Relation {
    let mut fast = None;
    for allow_fast in [false, true] {
        let physical = lower(plan, config(allow_fast)).unwrap();
        let (row, _) = execute_mode(&physical, env, ExecMode::Row).unwrap();
        let (batch, _) = execute_mode(&physical, env, ExecMode::Batch).unwrap();
        assert_eq!(
            row, batch,
            "row and batch diverge (allow_fast={allow_fast}) on {context}"
        );
        for threads in THREADS {
            let (par, metrics) =
                execute_mode(&physical, env, ExecMode::Parallel { threads }).unwrap();
            assert_eq!(
                par, row,
                "parallel({threads}) diverges (allow_fast={allow_fast}) on {context}"
            );
            // Same post-order operator sequence as the serial engines.
            assert_eq!(
                metrics.operators.len(),
                physical.root.size(),
                "metrics shape on {context}"
            );
        }
        if allow_fast {
            fast = Some(batch);
        }
    }
    fast.expect("fast mode executed")
}

const QUERIES: &[&str] = &[
    "SELECT EmpName FROM EMPLOYEE",
    "SELECT DISTINCT EmpName FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept DESC",
    "SELECT Dept, COUNT(*) AS n, MIN(T1) AS lo, AVG(T2) AS m FROM EMPLOYEE GROUP BY Dept",
    "SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE T1 >= 2 AND Dept = 'Sales'",
    "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION ALL \
     VALIDTIME SELECT EmpName FROM PROJECT",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
     VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
    "SELECT EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT",
    // HAVING, subqueries, outer joins, LIMIT/OFFSET.
    "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept HAVING n > 2",
    "VALIDTIME SELECT Dept FROM EMPLOYEE GROUP BY Dept HAVING COUNT(*) >= 2",
    "SELECT EmpName, Dept FROM EMPLOYEE \
     WHERE EmpName IN (SELECT EmpName FROM PROJECT WHERE Prj = 'P1')",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     WHERE EmpName NOT IN (VALIDTIME SELECT EmpName FROM PROJECT) \
     COALESCE ORDER BY EmpName",
    "SELECT EmpName, Dept FROM EMPLOYEE e \
     WHERE EXISTS (SELECT Prj FROM PROJECT p WHERE p.EmpName = e.EmpName)",
    "VALIDTIME SELECT e.EmpName AS EmpName, p.Prj AS Prj FROM EMPLOYEE e \
     LEFT JOIN PROJECT p ON e.EmpName = p.EmpName",
    "SELECT Dept, p.Prj AS Prj FROM EMPLOYEE e \
     RIGHT JOIN PROJECT p ON e.EmpName = p.EmpName",
    "SELECT EmpName FROM EMPLOYEE ORDER BY EmpName LIMIT 3 OFFSET 1",
];

fn agree_on_catalog(catalog: &Catalog) {
    let env = catalog.env();
    for sql in QUERIES {
        let plan = tqo_sql::compile(sql, catalog).unwrap();
        assert_all_engines_exact(&plan, &env, sql);
    }
}

#[test]
fn parallel_agrees_on_the_paper_catalog() {
    agree_on_catalog(&paper::catalog());
}

#[test]
fn parallel_agrees_on_generated_workloads() {
    for seed in [1u64, 23] {
        let catalog = tqo_storage::WorkloadGenerator::new(seed)
            .figure1_workload(2)
            .unwrap();
        agree_on_catalog(&catalog);
    }
}

/// Ordered outputs (sorted lists, coalesced periods) must be byte-identical
/// at any thread count — the strictest reading of the invariant, checked
/// on a workload large enough that every operator actually splits into
/// many morsels and classes.
#[test]
fn ordered_outputs_are_identical_at_scale() {
    use tqo_core::schema::Schema;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::{DataType, Value};
    let rows: Vec<Tuple> = (0..40_000i64)
        .map(|i| {
            Tuple::new(vec![
                Value::from(format!("v{}", i % 211)),
                Value::Time(i % 89),
                Value::Time(i % 89 + 1 + (i % 7)),
            ])
        })
        .collect();
    let r = Relation::new(Schema::temporal(&[("E", DataType::Str)]), rows).unwrap();
    let catalog = Catalog::new();
    catalog.register("R", r).unwrap();
    let env = catalog.env();
    for sql in [
        "VALIDTIME SELECT E FROM R COALESCE ORDER BY E",
        "VALIDTIME SELECT DISTINCT E FROM R ORDER BY E DESC",
        "SELECT E, COUNT(*) AS n FROM R GROUP BY E ORDER BY E",
    ] {
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        let physical = lower(&plan, config(true)).unwrap();
        let (batch, _) = execute_mode(&physical, &env, ExecMode::Batch).unwrap();
        for threads in THREADS {
            let (par, _) = execute_mode(&physical, &env, ExecMode::Parallel { threads }).unwrap();
            assert_eq!(
                par.tuples(),
                batch.tuples(),
                "ordered output differs at {threads} threads on {sql}"
            );
        }
    }
}

/// The optimizer fixture pool (every plan shape in the rule space) over
/// generator-driven dirty relations.
#[test]
fn parallel_agrees_on_fixture_plans_over_generated_relations() {
    use tqo_storage::{GenConfig, WorkloadGenerator};
    for seed in [3u64, 42] {
        let mut generator = WorkloadGenerator::new(seed);
        let mut env = tqo_core::interp::Env::new();
        for name in ["EMP", "PRJ", "A", "B"] {
            let r = generator
                .temporal(&GenConfig {
                    classes: 6,
                    fragments_per_class: 5,
                    mean_duration: 6,
                    mean_gap: 3,
                    adjacency_prob: 0.35,
                    overlap_prob: 0.35,
                    duplicate_prob: 0.2,
                    ..GenConfig::default()
                })
                .unwrap();
            env.insert(name, r);
        }
        env.insert("R", generator.temporal(&GenConfig::clean(8, 4)).unwrap());
        env.insert("S1", generator.conventional(40, 6).unwrap());
        env.insert("S2", generator.conventional(30, 6).unwrap());

        for (i, plan) in common::optimizer_fixtures(30).into_iter().enumerate() {
            let context = format!("fixture #{i} (seed {seed})");
            assert_all_engines_exact(&plan, &env, &context);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random relations through a random choice of the query pool.
    #[test]
    fn parallel_agrees_on_random_relations(
        emp in arb_temporal(4, 12),
        prj in arb_temporal(4, 10),
        s in arb_snapshot(10),
        query_idx in 0usize..4,
    ) {
        use tqo_core::schema::Schema;
        use tqo_core::tuple::Tuple;
        use tqo_core::value::{DataType, Value};
        let emp_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)]);
        let emp_rel = Relation::new(
            emp_schema,
            emp.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("D".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let prj_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Prj", DataType::Str)]);
        let prj_rel = Relation::new(
            prj_schema,
            prj.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("P".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let _ = s;
        let catalog = Catalog::new();
        catalog.register("EMPLOYEE", emp_rel).unwrap();
        catalog.register("PROJECT", prj_rel).unwrap();

        let queries = [
            "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
             EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
             COALESCE ORDER BY EmpName",
            "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
             VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
            "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
            "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName",
        ];
        let sql = queries[query_idx];
        let env = catalog.env();
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        assert_all_engines_exact(&plan, &env, sql);
    }
}
