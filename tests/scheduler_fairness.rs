//! Scheduler fairness and admission suite.
//!
//! Drives the multi-query scheduler in its deterministic mode
//! (`workers: 0` + [`Scheduler::step`], which runs exactly one stage
//! task per call and reports which query it served) so every scheduling
//! decision is observable and reproducible: the service metric is
//! rows-based, not wall-clock, so pick order is a pure function of the
//! submitted plans.
//!
//! Covered contracts from the serving ISSUE:
//! - admission control rejects the (max+1)-th query with the *typed*
//!   [`Error::AdmissionRejected`] carrying the live census, and the slot
//!   comes back once a resident query is waited out;
//! - a long-running query cannot starve a short one: the short query's
//!   wait is bounded by its own stage count plus one tie-breaking pick
//!   per resident query, not by the long query's remaining work;
//! - weighted shares: a higher-weight query overtakes an identical
//!   lower-weight one submitted earlier;
//! - per-query cancellation kills only its own tasks — siblings finish
//!   byte-identical to serial and the pool stays usable.

mod common;

use tqo_core::context::QueryContext;
use tqo_core::error::Error;
use tqo_core::relation::Relation;
use tqo_exec::{
    execute_mode, lower, ExecMode, PlannerConfig, Scheduler, SchedulerConfig, StageGraph,
    SubmitOptions,
};
use tqo_storage::{paper, Catalog};

/// A multi-breaker query (dedup, difference, coalesce, sort) — the
/// "long scan" role: it lowers to several stage tasks.
const HEAVY: &str = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName";

/// A small query with one breaker — the "short query" role.
const SHORT: &str = "SELECT DISTINCT EmpName FROM EMPLOYEE";

fn plan(catalog: &Catalog, sql: &str) -> tqo_exec::PhysicalPlan {
    let logical = tqo_sql::compile(sql, catalog).unwrap_or_else(|e| panic!("{sql}: {e}"));
    lower(&logical, PlannerConfig::default()).unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn serial(catalog: &Catalog, sql: &str) -> Relation {
    let physical = plan(catalog, sql);
    execute_mode(&physical, &catalog.env(), ExecMode::Batch)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .0
}

fn stepper() -> Scheduler {
    Scheduler::new(SchedulerConfig {
        workers: 0,
        max_queries: 64,
    })
}

#[test]
fn admission_rejection_is_typed_and_slot_recovers() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let physical = plan(&catalog, SHORT);
    let scheduler = Scheduler::new(SchedulerConfig {
        workers: 0,
        max_queries: 2,
    });

    let a = scheduler
        .submit(&physical, &env, SubmitOptions::default())
        .expect("first admit");
    let b = scheduler
        .submit(&physical, &env, SubmitOptions::default())
        .expect("second admit");
    // The third submission must fail with the typed census, not a
    // generic error and not a block.
    match scheduler.submit(&physical, &env, SubmitOptions::default()) {
        Err(Error::AdmissionRejected { active, limit }) => {
            assert_eq!((active, limit), (2, 2));
        }
        other => panic!("expected typed admission rejection, got {other:?}"),
    }

    // Drain one query; its slot must come back.
    while !a.is_finished() {
        scheduler.step();
    }
    let expected = serial(&catalog, SHORT);
    assert_eq!(a.wait().expect("query a").0, expected);
    let c = scheduler
        .submit(&physical, &env, SubmitOptions::default())
        .expect("slot reclaimed after wait");
    while !b.is_finished() || !c.is_finished() {
        scheduler.step();
    }
    assert_eq!(b.wait().expect("query b").0, expected);
    assert_eq!(c.wait().expect("query c").0, expected);
}

#[test]
fn short_query_wait_is_bounded_under_long_load() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let heavy = plan(&catalog, HEAVY);
    let short = plan(&catalog, SHORT);
    let heavy_stages = StageGraph::lower(&heavy, "__probe_")
        .expect("lower heavy")
        .stages
        .len();
    let short_stages = StageGraph::lower(&short, "__probe_")
        .expect("lower short")
        .stages
        .len();
    assert!(
        heavy_stages >= 3,
        "HEAVY must be multi-stage, got {heavy_stages}"
    );

    let scheduler = stepper();
    const LONG_QUERIES: usize = 3;
    let longs: Vec<_> = (0..LONG_QUERIES)
        .map(|_| {
            scheduler
                .submit(&heavy, &env, SubmitOptions::default())
                .expect("admit long query")
        })
        .collect();
    // Let the long queries accrue some service before the short one
    // arrives — the starvation-prone regime for a FIFO queue.
    for _ in 0..LONG_QUERIES {
        scheduler.step().expect("long work available");
    }

    let handle = scheduler
        .submit(&short, &env, SubmitOptions::default())
        .expect("admit short query");
    let remaining_long = LONG_QUERIES * heavy_stages - LONG_QUERIES;
    // Fair-share bound: the short query needs `short_stages` tasks of
    // its own and can lose at most one tie-break pick to each resident
    // query (they all sit at the entry vtime floor); FIFO would instead
    // make it wait out all remaining long work.
    let bound = short_stages + LONG_QUERIES + 1;
    assert!(
        remaining_long > bound,
        "test not meaningful: {remaining_long} long tasks vs bound {bound}"
    );
    let mut steps = 0;
    while !handle.is_finished() {
        scheduler.step().expect("work available");
        steps += 1;
        assert!(
            steps <= bound,
            "short query starved: {steps} picks and counting \
             (bound {bound}, {remaining_long} long tasks outstanding)"
        );
    }
    assert_eq!(
        handle.wait().expect("short query").0,
        serial(&catalog, SHORT)
    );

    // The long queries still finish, byte-identical to serial.
    while scheduler.step().is_some() {}
    let expected = serial(&catalog, HEAVY);
    for h in longs {
        assert_eq!(h.wait().expect("long query").0, expected);
    }
}

#[test]
fn higher_weight_query_overtakes_equal_plan() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let heavy = plan(&catalog, HEAVY);
    let scheduler = stepper();

    // Submit the light query FIRST so id-order tie-breaking favours it;
    // only its 4x weight can let the second query finish first.
    let light = scheduler
        .submit(
            &heavy,
            &env,
            SubmitOptions {
                weight: 1.0,
                ..SubmitOptions::default()
            },
        )
        .expect("admit light");
    let favoured = scheduler
        .submit(
            &heavy,
            &env,
            SubmitOptions {
                weight: 4.0,
                ..SubmitOptions::default()
            },
        )
        .expect("admit favoured");

    let mut winner = None;
    while scheduler.step().is_some() {
        if winner.is_none() {
            if favoured.is_finished() {
                winner = Some("favoured");
            } else if light.is_finished() {
                winner = Some("light");
            }
        }
    }
    assert_eq!(
        winner,
        Some("favoured"),
        "weight-4 query should overtake the earlier weight-1 twin"
    );
    let expected = serial(&catalog, HEAVY);
    assert_eq!(favoured.wait().expect("favoured").0, expected);
    assert_eq!(light.wait().expect("light").0, expected);
}

#[test]
fn cancellation_kills_only_its_own_tasks() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let heavy = plan(&catalog, HEAVY);
    let scheduler = stepper();

    let victim = scheduler
        .submit(
            &heavy,
            &env,
            SubmitOptions {
                ctx: QueryContext::new(),
                ..SubmitOptions::default()
            },
        )
        .expect("admit victim");
    let bystander = scheduler
        .submit(&heavy, &env, SubmitOptions::default())
        .expect("admit bystander");

    scheduler.step().expect("first task");
    victim.cancel();
    while scheduler.step().is_some() {}

    // The victim dies with the typed cancellation error; the bystander —
    // same plan, same pool, in flight at the same time — is untouched.
    match victim.wait() {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled for the victim, got {other:?}"),
    }
    assert_eq!(
        bystander.wait().expect("bystander").0,
        serial(&catalog, HEAVY),
        "cancellation bled into a sibling query"
    );

    // The pool is reusable after the cancellation.
    let again = scheduler
        .submit(&heavy, &env, SubmitOptions::default())
        .expect("admit after cancellation");
    while !again.is_finished() {
        scheduler.step();
    }
    assert_eq!(
        again.wait().expect("post-cancel query").0,
        serial(&catalog, HEAVY)
    );
}
