//! Theorem 6.1: the enumeration algorithm generates *correct* plans —
//! every plan it produces evaluates, under the query's result type
//! (Definition 5.1's `≡SQL`), equivalent to the initial plan.
//!
//! Property-tested over random relations for the three result types, on
//! the paper's running-example plan shape and on smaller shapes; plus
//! determinism and budget behaviour.

mod common;

use common::{arb_snapshot, arb_temporal};
use proptest::prelude::*;

use tqo_core::enumerate::{enumerate, EnumerationConfig};
use tqo_core::equivalence::ResultType;
use tqo_core::interp::{eval_plan, Env};
use tqo_core::plan::{LogicalPlan, PlanBuilder};
use tqo_core::relation::Relation;
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::table::derive_props;

fn scan_of(name: &str, relation: &Relation) -> PlanBuilder {
    PlanBuilder::scan(name, derive_props(relation).unwrap())
}

/// The running-example shape over arbitrary data.
fn running_example(t1: &Relation, t2: &Relation, rt: ResultType) -> LogicalPlan {
    let root = scan_of("T1R", t1)
        .transfer_s()
        .rdup_t()
        .difference_t(scan_of("T2R", t2).transfer_s())
        .rdup_t()
        .coalesce()
        .sort(Order::asc(&["E"]))
        .node();
    LogicalPlan::new(root, rt)
}

fn check_all_plans(
    initial: &LogicalPlan,
    env: &Env,
    max_plans: usize,
) -> std::result::Result<usize, TestCaseError> {
    let reference = eval_plan(initial, env).unwrap();
    let enumeration = enumerate(
        initial,
        &RuleSet::standard(),
        EnumerationConfig { max_plans },
    )
    .unwrap();
    for (i, p) in enumeration.plans.iter().enumerate() {
        let result = eval_plan(&p.plan, env).unwrap();
        let ok = initial.result_type.admits(&reference, &result).unwrap();
        prop_assert!(
            ok,
            "plan {i} violates ≡SQL ({:?})\nderivation: {:?}\nplan:\n{}",
            initial.result_type,
            enumeration.derivation_chain(i),
            tqo_core::plan::display::plan_to_string(&p.plan.root)
        );
    }
    Ok(enumeration.plans.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn theorem_6_1_list_queries(
        t1 in arb_temporal(3, 8),
        t2 in arb_temporal(3, 6),
    ) {
        let env = Env::new().with("T1R", t1.clone()).with("T2R", t2.clone());
        let plan = running_example(&t1, &t2, ResultType::List(Order::asc(&["E"])));
        check_all_plans(&plan, &env, 2000)?;
    }

    #[test]
    fn theorem_6_1_multiset_queries(
        t1 in arb_temporal(3, 8),
        t2 in arb_temporal(3, 6),
    ) {
        let env = Env::new().with("T1R", t1.clone()).with("T2R", t2.clone());
        let plan = running_example(&t1, &t2, ResultType::Multiset);
        check_all_plans(&plan, &env, 2000)?;
    }

    #[test]
    fn theorem_6_1_set_queries(
        t1 in arb_temporal(3, 8),
        t2 in arb_temporal(3, 6),
    ) {
        let env = Env::new().with("T1R", t1.clone()).with("T2R", t2.clone());
        let plan = running_example(&t1, &t2, ResultType::Set);
        check_all_plans(&plan, &env, 2000)?;
    }

    #[test]
    fn theorem_6_1_conventional_queries(
        s1 in arb_snapshot(10),
        s2 in arb_snapshot(8),
    ) {
        use tqo_core::expr::Expr;
        let env = Env::new().with("S1R", s1.clone()).with("S2R", s2.clone());
        let root = scan_of("S1R", &s1)
            .product(scan_of("S2R", &s2))
            .select(Expr::eq(Expr::col("1.B"), Expr::col("2.B")))
            .rdup()
            .sort(Order::asc(&["1.A"]))
            .node();
        for rt in [
            ResultType::List(Order::asc(&["1.A"])),
            ResultType::Multiset,
            ResultType::Set,
        ] {
            let plan = LogicalPlan::new(root.clone(), rt);
            check_all_plans(&plan, &env, 1500)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adversarial shapes for the period-preservation propagation:
    /// conventional operations over temporal inputs, and the retained
    /// timestamps of `×ᵀ`, inside snapshot-insensitive regions. Every
    /// enumerated plan must still satisfy ≡SQL (these shapes caught a real
    /// propagation bug during development).
    #[test]
    fn theorem_6_1_period_sensitive_shapes(
        t1 in arb_temporal(3, 8),
        t2 in arb_temporal(3, 6),
    ) {
        use tqo_core::expr::ProjItem;
        let env = Env::new().with("T1R", t1.clone()).with("T2R", t2.clone());

        // coalᵀ over ×ᵀ with a coalesced argument (retained timestamps are
        // data; C2 must not fire on the inner coalesce).
        let shape1 = scan_of("T1R", &t1)
            .coalesce()
            .product_t(scan_of("T2R", &t2))
            .rdup_t()
            .coalesce()
            .node();
        // C9-style projection hides the retained timestamps.
        let shape2 = scan_of("T1R", &t1)
            .coalesce()
            .product_t(scan_of("T2R", &t2).coalesce())
            .project(vec![
                ProjItem::col("1.E"),
                ProjItem::col("2.E"),
                ProjItem::col("T1"),
                ProjItem::col("T2"),
            ])
            .rdup_t()
            .coalesce()
            .node();
        // Conventional rdup over a temporal input below a coalesce region.
        let shape3 = scan_of("T1R", &t1)
            .coalesce()
            .rdup()
            .node();
        // Fragmentation-counting projection (drops the period) over a
        // coalesced input.
        let shape4 = scan_of("T1R", &t1)
            .coalesce()
            .project_cols(&["E"])
            .rdup()
            .node();

        for shape in [shape1, shape2, shape3, shape4] {
            for rt in [ResultType::Multiset, ResultType::Set] {
                let plan = LogicalPlan::new(shape.clone(), rt);
                check_all_plans(&plan, &env, 1000)?;
            }
        }
    }
}

#[test]
fn enumeration_is_deterministic_and_terminates() {
    let mut g = tqo_storage::WorkloadGenerator::new(7);
    let t1 = g
        .temporal(&tqo_storage::GenConfig {
            classes: 4,
            fragments_per_class: 3,
            overlap_prob: 0.3,
            ..Default::default()
        })
        .unwrap();
    let t2 = g.temporal(&tqo_storage::GenConfig::clean(3, 3)).unwrap();
    let plan = running_example(&t1, &t2, ResultType::List(Order::asc(&["E"])));
    let e1 = enumerate(&plan, &RuleSet::standard(), EnumerationConfig::default()).unwrap();
    let e2 = enumerate(&plan, &RuleSet::standard(), EnumerationConfig::default()).unwrap();
    assert!(
        !e1.truncated,
        "closure should be finite under the standard rules"
    );
    assert_eq!(e1.plans.len(), e2.plans.len());
    for (a, b) in e1.plans.iter().zip(&e2.plans) {
        assert_eq!(a.plan.root, b.plan.root);
        assert_eq!(a.derivation, b.derivation);
    }
    // The search is genuinely combinatorial (many plans, not a couple) —
    // and relaxing the result type to multiset admits even more.
    assert!(
        e1.plans.len() >= 15,
        "expected a rich plan space, got {}",
        e1.plans.len()
    );
    let multiset = running_example(&t1, &t2, ResultType::Multiset);
    let em = enumerate(
        &multiset,
        &RuleSet::standard(),
        EnumerationConfig::default(),
    )
    .unwrap();
    assert!(
        em.plans.len() > e1.plans.len(),
        "multiset query should admit more plans ({} vs {})",
        em.plans.len(),
        e1.plans.len()
    );
}

#[test]
fn result_type_monotonicity() {
    // Weaker result types admit at least as many plans: every plan found
    // for a list query is also found for the multiset query, etc.
    let mut g = tqo_storage::WorkloadGenerator::new(3);
    let t1 = g.temporal(&tqo_storage::GenConfig::clean(3, 3)).unwrap();
    let t2 = g.temporal(&tqo_storage::GenConfig::clean(3, 2)).unwrap();
    let count = |rt: ResultType| {
        let plan = running_example(&t1, &t2, rt);
        enumerate(&plan, &RuleSet::standard(), EnumerationConfig::default())
            .unwrap()
            .plans
            .len()
    };
    let list = count(ResultType::List(Order::asc(&["E"])));
    let multiset = count(ResultType::Multiset);
    let set = count(ResultType::Set);
    assert!(multiset >= list, "multiset {multiset} < list {list}");
    assert!(set >= multiset, "set {set} < multiset {multiset}");
}
