//! Q-error regression guard.
//!
//! Loads the committed `BENCH_exec.json` `estimation` block (the
//! per-operator median q-errors `exec_quick` measured when the snapshot
//! was taken), recomputes the same medians over the same generated
//! workloads at the committed scale, and fails if any operator's median
//! q-error regressed by more than 2× — so costing changes cannot silently
//! rot the estimator. The workload is generator-seeded and q-errors are
//! pure functions of data and estimates, so the recomputation is exactly
//! reproducible.

use std::collections::BTreeMap;

use tqo_exec::{execute_logical, PlannerConfig};

/// Extract `"key": <number>` from a JSON fragment (the writer in
//  `exec_quick` emits one field per line, so line-oriented scanning is
/// exact; no JSON dependency needed).
fn field_f64(fragment: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = fragment.find(&needle)?;
    let rest = &fragment[at + needle.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(fragment: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let at = fragment.find(&needle)?;
    let rest = &fragment[at + needle.len()..];
    Some(&rest[..rest.find('"')?])
}

/// The committed estimation block: workload scale plus per-operator
/// medians (operators with `null` medians are skipped).
fn committed_estimation(json: &str) -> (usize, BTreeMap<String, f64>) {
    let block_start = json
        .find("\"estimation\"")
        .expect("BENCH_exec.json carries an estimation block");
    let block = &json[block_start..];
    let scale = field_f64(block, "workload_scale").expect("workload_scale recorded") as usize;
    let mut medians = BTreeMap::new();
    let mut rest = block;
    while let Some(at) = rest.find("\"label\"") {
        rest = &rest[at..];
        let label = field_str(rest, "label").expect("label string").to_owned();
        if let Some(q) = field_f64(rest, "median_q") {
            medians.insert(label, q);
        }
        rest = &rest[1..];
    }
    (scale, medians)
}

#[test]
fn committed_estimation_medians_do_not_regress() {
    let json = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec.json"))
        .expect("committed BENCH_exec.json");
    let (scale, committed) = committed_estimation(&json);
    assert!(
        !committed.is_empty(),
        "estimation block lists per-operator medians"
    );

    // Recompute with the exact workload exec_quick used (same seed, the
    // committed scale).
    let (cat, cases) = tqo_bench::estimation_workload(scale, 23);
    let env = cat.env();
    let mut per_label: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for case in &cases {
        let (_, metrics) = execute_logical(&case.plan, &env, PlannerConfig::default())
            .expect("estimation plan executes");
        for op in &metrics.operators {
            if let Some(q) = op.q_error() {
                // Same grouping as exec_quick: the operator name without
                // the algorithm/table tag.
                let label = op.label.split(['[', '(']).next().unwrap_or("?").to_owned();
                per_label.entry(label).or_default().push(q);
            }
        }
    }

    let mut failures = Vec::new();
    for (label, &committed_q) in &committed {
        let Some(qs) = per_label.get_mut(label) else {
            failures.push(format!(
                "operator `{label}` vanished from the estimation workload \
                 (regenerate BENCH_exec.json if intentional)"
            ));
            continue;
        };
        let current = tqo_exec::metrics::median(qs).expect("samples exist");
        if current > committed_q * 2.0 + 1e-9 {
            failures.push(format!(
                "`{label}` median q-error regressed >2×: committed {committed_q:.3}, \
                 current {current:.3}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "estimation quality regressed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn guard_parses_the_committed_block_shape() {
    let json = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec.json"))
        .expect("committed BENCH_exec.json");
    let (scale, medians) = committed_estimation(&json);
    assert!(scale >= 1);
    // The workload exercises at least scans, selections, and dedup.
    for label in ["scan", "select", "rdup"] {
        assert!(medians.contains_key(label), "missing `{label}` median");
    }
    assert!(medians.values().all(|&q| q >= 1.0), "q-errors are ≥ 1");
}
