//! Serving stress suite: the concurrent oracle for ARCHITECTURE
//! invariant 16 — **concurrency never changes results, only latency**.
//!
//! Eight client threads replay the engines-agree SQL pool through the
//! multi-query scheduler and the TCP front-end while mutations churn a
//! scratch table, and every single response is held to byte-identity
//! with its serial single-query run. A second leg seeds wire faults and
//! deterministic cancellations mid-load and asserts the pool stays
//! typed-error-clean and fully reusable afterwards.
//!
//! CI runs this suite with `--test-threads=1`: each test owns its
//! server, port, and scheduler, and the assertions are about *internal*
//! concurrency, not test-runner concurrency.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use tqo_core::error::Error;
use tqo_core::relation::Relation;
use tqo_core::time::Period;
use tqo_core::value::Value;
use tqo_exec::{execute_logical, ExecMode, PlannerConfig, SchedulerConfig};
use tqo_serve::{serve, Client, QueryOpts, Server, ServerConfig};
use tqo_storage::{paper, Catalog};
use tqo_stratum::FaultConfig;

/// Client thread count for every concurrent leg (the ISSUE's oracle
/// width).
const CLIENTS: usize = 8;

/// Engines the client threads cycle through; each response is compared
/// against the serial oracle computed with the *same* engine.
const MODES: &[ExecMode] = &[
    ExecMode::Batch,
    ExecMode::Row,
    ExecMode::Parallel { threads: 2 },
];

/// The read query the mutation leg replays against the churning scratch
/// table. Its predicate excludes every scratch row (those use
/// department `Stress`), so the answer must stay byte-identical to the
/// pristine serial run *while* inserts and deletes land around it.
const AUDIT_READ: &str = "VALIDTIME SELECT EmpName FROM AUDIT WHERE Dept = 'Sales'";

/// Full-table scan used for the quiesced end-state check.
const AUDIT_ALL: &str = "VALIDTIME SELECT EmpName, Dept FROM AUDIT ORDER BY EmpName, Dept";

/// The paper catalog plus a scratch `AUDIT` copy of EMPLOYEE that the
/// mutation threads are allowed to churn.
fn serving_catalog() -> Catalog {
    let catalog = paper::catalog();
    catalog
        .register("AUDIT", paper::employee())
        .expect("register AUDIT scratch table");
    catalog
}

/// Serial single-query runs of `queries` on `catalog` under `mode` —
/// the oracle every concurrent response is compared against, computed
/// through the exact pipeline the server uses (compile, lower with the
/// same `PlannerConfig`, execute).
fn serial_oracle(catalog: &Catalog, queries: &[&str], mode: ExecMode) -> Vec<Relation> {
    let env = catalog.env();
    queries
        .iter()
        .map(|sql| {
            let plan = tqo_sql::compile(sql, catalog).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let config = PlannerConfig {
                mode,
                ..PlannerConfig::default()
            };
            execute_logical(&plan, &env, config)
                .unwrap_or_else(|e| panic!("{sql}: {e}"))
                .0
        })
        .collect()
}

/// Issue `sql` treating admission rejection as back-pressure: retry
/// until the scheduler admits it (the protocol's documented contract).
fn query_admitted(client: &mut Client, sql: &str, opts: QueryOpts) -> Result<Relation, Error> {
    loop {
        match client.query_with(sql, opts.clone()) {
            Err(Error::AdmissionRejected { .. }) => continue,
            other => return other,
        }
    }
}

fn start(config: ServerConfig) -> Server {
    serve(serving_catalog(), config).expect("start serving front-end")
}

/// Tentpole oracle: 8 clients replay the whole SQL pool across all
/// three engines, with sequenced mutations churning `AUDIT` in the
/// background, and **every** response must be byte-identical to its
/// serial single-query run. After the load drains, the scratch table
/// must be byte-identically back to its initial state (every insert was
/// paired with a delete).
#[test]
fn concurrent_pool_is_byte_identical_to_serial() {
    let pristine = serving_catalog();
    let oracles: Vec<Vec<Relation>> = MODES
        .iter()
        .map(|&mode| serial_oracle(&pristine, common::SQL_POOL, mode))
        .collect();
    let audit_oracle = serial_oracle(&pristine, &[AUDIT_READ, AUDIT_ALL], ExecMode::Batch);

    let server = start(ServerConfig {
        scheduler: SchedulerConfig {
            workers: 2,
            max_queries: 64,
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let oracles = Arc::new(oracles);
    let audit_reads = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let oracles = Arc::clone(&oracles);
            let audit_oracle = audit_oracle[0].clone();
            let audit_reads = Arc::clone(&audit_reads);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let who = format!("stress{t}");
                for round in 0..2 {
                    let mode_idx = (t + round) % MODES.len();
                    let opts = QueryOpts {
                        mode: MODES[mode_idx],
                        ..QueryOpts::default()
                    };
                    for (i, sql) in common::SQL_POOL.iter().enumerate() {
                        // Sprinkle sequenced mutation pairs between the
                        // reads: thread-unique rows, inserted and then
                        // deleted, with an oracle read of the churning
                        // table in between.
                        if i % 6 == t % 6 {
                            client
                                .insert(
                                    "AUDIT",
                                    vec![Value::from(who.as_str()), Value::from("Stress")],
                                    Period::of(1, 9),
                                )
                                .expect("insert scratch row");
                            let rel = query_admitted(&mut client, AUDIT_READ, opts.clone())
                                .expect("audit read under churn");
                            assert_eq!(
                                rel, audit_oracle,
                                "thread {t}: audit read drifted under concurrent mutation"
                            );
                            audit_reads.fetch_add(1, Ordering::Relaxed);
                            client
                                .delete(
                                    "AUDIT",
                                    "EmpName",
                                    Value::from(who.as_str()),
                                    Period::of(1, 9),
                                )
                                .expect("delete scratch row");
                        }
                        let rel = query_admitted(&mut client, sql, opts.clone())
                            .unwrap_or_else(|e| panic!("thread {t}: {sql}: {e}"));
                        assert_eq!(
                            rel, oracles[mode_idx][i],
                            "thread {t} mode {:?}: {sql} diverged from serial run",
                            MODES[mode_idx]
                        );
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().expect("client thread");
    }
    assert!(
        audit_reads.load(Ordering::Relaxed) > 0,
        "mutation leg never exercised the churning table"
    );

    // Quiesced: every insert was paired with a delete, so the scratch
    // table must read back byte-identically to its pristine state.
    let mut client = Client::connect(addr).expect("connect for quiesce check");
    let rel = client.query(AUDIT_ALL).expect("quiesced audit scan");
    assert_eq!(
        rel, audit_oracle[1],
        "AUDIT did not return to initial state"
    );
    drop(server);
}

/// No cross-query bleed: each client hammers a *different* query with a
/// thread-specific predicate, all in flight simultaneously through one
/// shared scheduler. Any leakage of another query's stage results (the
/// per-query binding namespace failing) shows up as a wrong answer.
#[test]
fn concurrent_distinct_queries_do_not_bleed() {
    let queries: Vec<String> = (0..CLIENTS)
        .map(|t| match t % 4 {
            0 => "SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Sales'".into(),
            1 => "SELECT EmpName FROM PROJECT WHERE Prj = 'P1'".into(),
            2 => "VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Advertising'".into(),
            _ => "VALIDTIME SELECT DISTINCT EmpName FROM PROJECT WHERE Prj = 'P2'".into(),
        })
        .collect();
    let pristine = serving_catalog();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let oracle = serial_oracle(&pristine, &refs, ExecMode::Batch);

    let server = start(ServerConfig {
        scheduler: SchedulerConfig {
            workers: 2,
            max_queries: 64,
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let queries = Arc::new(queries);
    let oracle = Arc::new(oracle);

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let queries = Arc::clone(&queries);
            let oracle = Arc::clone(&oracle);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..40 {
                    let rel = query_admitted(&mut client, &queries[t], QueryOpts::default())
                        .expect("bleed-leg query");
                    assert_eq!(
                        rel, oracle[t],
                        "thread {t}: answer bled across concurrent queries"
                    );
                }
            })
        })
        .collect();
    for h in threads {
        h.join().expect("client thread");
    }
}

/// Chaos leg: seeded wire faults (injected errors + payload truncation)
/// plus deterministic mid-query cancellations, all under 8-client load.
/// Every outcome must be either a byte-identical result or a *typed*
/// error — never a wrong answer, never a desynchronized connection —
/// and afterwards the same pool must be fully reusable.
#[test]
fn pool_survives_faults_and_cancellations_mid_load() {
    let pristine = serving_catalog();
    let oracle = Arc::new(serial_oracle(&pristine, common::SQL_POOL, ExecMode::Batch));

    let server = start(ServerConfig {
        scheduler: SchedulerConfig {
            workers: 2,
            max_queries: 64,
        },
        faults: Some(FaultConfig::with_seed(0xC0FFEE)),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let cancelled = Arc::new(AtomicU64::new(0));
    let faulted = Arc::new(AtomicU64::new(0));
    let clean = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let oracle = Arc::clone(&oracle);
            let cancelled = Arc::clone(&cancelled);
            let faulted = Arc::clone(&faulted);
            let clean = Arc::clone(&clean);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..2 {
                    for (i, sql) in common::SQL_POOL.iter().enumerate() {
                        // Every third request asks the governance layer
                        // to cancel deterministically at the first
                        // checkpoint; the rest run clean (modulo the
                        // server's seeded faults).
                        let opts = QueryOpts {
                            cancel_polls: u64::from((i + round + t) % 3 == 0),
                            ..QueryOpts::default()
                        };
                        match client.query_with(sql, opts) {
                            Ok(rel) => {
                                // A fault can truncate but never corrupt:
                                // any response that decodes is the exact
                                // serial answer.
                                assert_eq!(
                                    rel, oracle[i],
                                    "thread {t}: {sql} diverged under fault load"
                                );
                                clean.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(Error::Cancelled) => {
                                cancelled.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(Error::AdmissionRejected { .. }) => {}
                            Err(Error::Storage { reason }) => {
                                // Injected serve fault or truncated
                                // payload — both decode to typed storage
                                // errors without desynchronizing the
                                // session (the next request still works).
                                assert!(
                                    reason.contains("injected")
                                        || reason.contains("truncated")
                                        || reason.contains("wire"),
                                    "thread {t}: unexpected storage error: {reason}"
                                );
                                faulted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("thread {t}: {sql}: untyped failure {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().expect("client thread");
    }
    assert!(
        cancelled.load(Ordering::Relaxed) > 0,
        "chaos leg never observed a cancellation"
    );
    assert!(
        faulted.load(Ordering::Relaxed) > 0,
        "chaos leg never observed an injected fault"
    );
    assert!(
        clean.load(Ordering::Relaxed) > 0,
        "chaos leg never observed a clean response"
    );

    // Reusable: after the chaos drains, every pool query must still
    // come back byte-identical on a fresh connection (retrying through
    // the still-active fault injector).
    let mut client = Client::connect(addr).expect("reconnect after chaos");
    for (i, sql) in common::SQL_POOL.iter().enumerate() {
        let mut attempts = 0;
        let rel = loop {
            attempts += 1;
            assert!(attempts <= 200, "{sql}: no clean response in 200 attempts");
            match client.query(sql) {
                Ok(rel) => break rel,
                Err(Error::Storage { .. }) | Err(Error::AdmissionRejected { .. }) => continue,
                Err(e) => panic!("{sql}: unexpected post-chaos error {e}"),
            }
        };
        assert_eq!(rel, oracle[i], "{sql}: pool not reusable after chaos");
    }
}
