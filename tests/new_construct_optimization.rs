//! Optimizer/planner interaction tests for the constructs opened by the
//! conformance PR: HAVING, [NOT] IN / [NOT] EXISTS subqueries, outer
//! temporal joins, and LIMIT/OFFSET. Each test pins how the construct's
//! lowering interacts with the rule system or the statistics-driven
//! physical algorithm choice — not just that it runs.

use tqo_core::interp::eval_plan;
use tqo_core::optimizer::{optimize, OptimizerConfig, SearchStrategy};
use tqo_core::plan::display::plan_to_string;
use tqo_core::plan::PlanNode;
use tqo_core::relation::Relation;
use tqo_core::rules::RuleSet;
use tqo_core::schema::Schema;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};
use tqo_exec::{execute_mode, lower, ExecMode, PlannerConfig};
use tqo_storage::{paper, Catalog};

fn config(allow_fast: bool) -> PlannerConfig {
    PlannerConfig {
        allow_fast,
        ..Default::default()
    }
}

fn memo() -> OptimizerConfig {
    OptimizerConfig {
        strategy: SearchStrategy::Memo,
        ..OptimizerConfig::default()
    }
}

/// A temporal relation `(EmpName: Str, T1, T2)` of `n` distinct names —
/// snapshot-duplicate-free by construction, so the sdf-gated fast
/// algorithms are licensed on it.
fn names(n: usize) -> Relation {
    let schema = Schema::temporal(&[("EmpName", DataType::Str)]);
    let rows = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Str(format!("e{i}").into()),
                Value::Time(0),
                Value::Time(10),
            ])
        })
        .collect();
    Relation::new(schema, rows).unwrap()
}

fn catalog_with(emp: usize, prj: usize) -> Catalog {
    let catalog = Catalog::new();
    catalog.register("EMPLOYEE", names(emp)).unwrap();
    catalog.register("PROJECT", names(prj)).unwrap();
    catalog
}

fn sorted_rows(rel: &Relation) -> Vec<Tuple> {
    let mut rows = rel.tuples().to_vec();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// Sequenced NOT IN lowers to `\T`, and the physical algorithm for `\T`
/// is statistics-driven: a small right side licenses per-tuple
/// subtract-union, a large right side forces the timeline sweep — and
/// both produce the same relation.
#[test]
fn not_in_difference_algo_flips_on_stats() {
    // The trailing COALESCE matters: without it the multiset result is
    // period-preserving and the ≡SM-licensed algorithm is off the table.
    let sql = "VALIDTIME SELECT EmpName FROM EMPLOYEE \
               WHERE EmpName NOT IN (VALIDTIME SELECT EmpName FROM PROJECT) COALESCE";

    // Right side much smaller than the left: subtract-union wins.
    let small_right = catalog_with(200, 3);
    let plan = tqo_sql::compile(sql, &small_right).unwrap();
    let fast = lower(&plan, config(true)).unwrap();
    assert!(
        fast.explain().contains("SubtractUnion"),
        "expected SubtractUnion with a tiny right side:\n{fast}"
    );
    // Faithful mode never takes the ≡SM-licensed algorithm.
    let faithful = lower(&plan, config(false)).unwrap();
    assert!(
        faithful.explain().contains("TimelineSweep"),
        "faithful lowering must sweep:\n{faithful}"
    );
    let env = small_right.env();
    let (a, _) = execute_mode(&fast, &env, ExecMode::Batch).unwrap();
    let (b, _) = execute_mode(&faithful, &env, ExecMode::Batch).unwrap();
    assert_eq!(sorted_rows(&a), sorted_rows(&b));

    // Right side larger than the left: the estimate revokes the license.
    let large_right = catalog_with(5, 200);
    let plan = tqo_sql::compile(sql, &large_right).unwrap();
    let fast = lower(&plan, config(true)).unwrap();
    assert!(
        fast.explain().contains("TimelineSweep"),
        "expected TimelineSweep with a large right side:\n{fast}"
    );
}

/// HAVING binds as a selection *above* the aggregate; the rule system
/// must keep it there (a selection over aggregate output cannot be
/// pushed below the aggregation) while still optimizing the rest.
#[test]
fn having_selection_stays_above_the_aggregate() {
    let catalog = paper::catalog();
    let sql = "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept HAVING n > 2";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    let reference = eval_plan(&plan, &catalog.env()).unwrap();

    let optimized = optimize(&plan, &RuleSet::standard(), &memo()).unwrap();
    let text = plan_to_string(&optimized.best.root);
    let select_at = text
        .find('σ')
        .expect("optimized plan keeps the HAVING selection");
    let agg_at = text.find('ξ').expect("optimized plan keeps the aggregate");
    // Pre-order rendering: parents print before children.
    assert!(
        select_at < agg_at,
        "HAVING selection was pushed below the aggregate:\n{text}"
    );
    let got = eval_plan(&optimized.best, &catalog.env()).unwrap();
    assert_eq!(sorted_rows(&got), sorted_rows(&reference));
}

/// NOT EXISTS decorrelates into the same sequenced anti-join as NOT IN:
/// two different front-end paths, one algebra — both reproduce the
/// paper's Figure 1 difference, and both survive memo optimization.
#[test]
fn not_exists_and_not_in_converge_on_figure1() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let via_not_in = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
                      WHERE EmpName NOT IN (VALIDTIME SELECT EmpName FROM PROJECT) \
                      COALESCE ORDER BY EmpName";
    let via_not_exists = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE e \
                          WHERE NOT EXISTS (VALIDTIME SELECT Prj FROM PROJECT p \
                                            WHERE p.EmpName = e.EmpName) \
                          COALESCE ORDER BY EmpName";
    let mut results = Vec::new();
    for sql in [via_not_in, via_not_exists] {
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        let reference = eval_plan(&plan, &env).unwrap();
        let optimized = optimize(&plan, &RuleSet::standard(), &memo()).unwrap();
        let got = eval_plan(&optimized.best, &env).unwrap();
        assert_eq!(got, reference, "memo changed the result of {sql}");
        results.push(reference);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], paper::figure1_result());
}

/// The sequenced outer join's anti part is a `\T` too — but its padded
/// fragments' periods ARE the output, so the binder marks it
/// period-preserving and the ≡SM-licensed subtract-union stays off the
/// table even under a top-level COALESCE and favorable statistics. The
/// property system, not the cost model, pins the algorithm here.
#[test]
fn outer_join_anti_part_is_period_preserving() {
    let sql = "VALIDTIME SELECT e.EmpName AS en, p.EmpName AS pn FROM EMPLOYEE e \
               LEFT JOIN PROJECT p ON e.EmpName = p.EmpName COALESCE";

    // Same statistics that flip NOT IN to SubtractUnion above.
    let small_right = catalog_with(200, 3);
    let plan = tqo_sql::compile(sql, &small_right).unwrap();
    let fast = lower(&plan, config(true)).unwrap();
    let explain = fast.explain();
    // Padding shape: matched ⊔ NULL-padded anti difference.
    assert!(explain.contains("union-all"), "{explain}");
    assert!(
        explain.contains("difference-t[TimelineSweep]") && !explain.contains("SubtractUnion"),
        "outer-join padding must keep exact periods:\n{explain}"
    );
    let faithful = lower(&plan, config(false)).unwrap();
    let env = small_right.env();
    let (a, _) = execute_mode(&fast, &env, ExecMode::Batch).unwrap();
    let (b, _) = execute_mode(&faithful, &env, ExecMode::Batch).unwrap();
    assert_eq!(sorted_rows(&a), sorted_rows(&b));
    // 197 of 200 left names have no partner: their full periods are padded.
    let padded = a
        .tuples()
        .iter()
        .filter(|t| t.values().iter().any(|v| matches!(v, Value::Null)))
        .count();
    assert_eq!(padded, 197);
}

/// LIMIT binds at the very root and must stay there through memo search:
/// truncation is order-sensitive, so no rule may float it below the sort
/// (or drop the sort under it).
#[test]
fn limit_stays_above_the_sort_through_memo() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept LIMIT 3 OFFSET 1";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    assert!(matches!(*plan.root, PlanNode::Limit { .. }));
    let reference = eval_plan(&plan, &env).unwrap();
    assert_eq!(reference.len(), 3);

    let optimized = optimize(&plan, &RuleSet::standard(), &memo()).unwrap();
    assert!(
        matches!(*optimized.best.root, PlanNode::Limit { .. }),
        "memo moved LIMIT off the root:\n{}",
        plan_to_string(&optimized.best.root)
    );
    let text = plan_to_string(&optimized.best.root);
    assert!(
        text.contains("sort"),
        "the order-producing sort was dropped under LIMIT:\n{text}"
    );
    // Lists are compared exactly: optimization must not change the page.
    let got = eval_plan(&optimized.best, &env).unwrap();
    assert_eq!(got, reference);

    // The physical plan keeps the same shape in both planner modes.
    for allow_fast in [false, true] {
        let physical = lower(&plan, config(allow_fast)).unwrap();
        let explain = physical.explain();
        let limit_at = explain.find("limit").expect("physical limit");
        let sort_at = explain.find("sort").expect("physical sort");
        assert!(limit_at < sort_at, "{explain}");
        let (got, _) = execute_mode(&physical, &env, ExecMode::Row).unwrap();
        assert_eq!(got, reference);
    }
}
