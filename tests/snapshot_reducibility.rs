//! The defining invariant of the temporal operations (§2.2): for every
//! instant `t`, `snapshot(opᵀ(r), t) = op(snapshot(r, t))` as multisets.
//! Property-tested over random temporal relations for every temporal
//! operation of Table 1, plus the snapshot-behaviour of coalescing.

mod common;

use common::{arb_temporal, probes};
use proptest::prelude::*;

use tqo_core::expr::{AggFunc, AggItem};
use tqo_core::ops;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rdup_t_is_snapshot_reducible_to_rdup(r in arb_temporal(4, 14)) {
        let result = ops::rdup_t(&r).unwrap();
        for t in probes(&[&r]) {
            let lhs = result.snapshot(t).unwrap();
            let rhs = ops::rdup(&r.snapshot(t).unwrap()).unwrap();
            prop_assert_eq!(lhs.counts(), rhs.counts(), "at instant {}", t);
        }
    }

    #[test]
    fn difference_t_is_snapshot_reducible_to_difference(
        r1 in arb_temporal(4, 12),
        r2 in arb_temporal(4, 12),
    ) {
        let result = ops::difference_t(&r1, &r2).unwrap();
        for t in probes(&[&r1, &r2]) {
            let lhs = result.snapshot(t).unwrap();
            let rhs = ops::difference(&r1.snapshot(t).unwrap(), &r2.snapshot(t).unwrap())
                .unwrap();
            prop_assert_eq!(lhs.counts(), rhs.counts(), "at instant {}", t);
        }
    }

    #[test]
    fn union_t_is_snapshot_reducible_to_union(
        r1 in arb_temporal(4, 12),
        r2 in arb_temporal(4, 12),
    ) {
        let result = ops::union_t(&r1, &r2).unwrap();
        for t in probes(&[&r1, &r2]) {
            let lhs = result.snapshot(t).unwrap();
            let rhs = ops::union_max(&r1.snapshot(t).unwrap(), &r2.snapshot(t).unwrap())
                .unwrap();
            prop_assert_eq!(lhs.counts(), rhs.counts(), "at instant {}", t);
        }
    }

    #[test]
    fn aggregate_t_is_snapshot_reducible_to_aggregate(r in arb_temporal(4, 12)) {
        let aggs = [
            AggItem::count_star("n"),
            AggItem::new(AggFunc::Min, Some("T1"), "lo"),
        ];
        // Group by the explicit attribute; aggregate over the class sizes.
        let result = ops::aggregate_t(&r, &["E".into()], &[aggs[0].clone()]).unwrap();
        for t in probes(&[&r]) {
            let lhs = result.snapshot(t).unwrap();
            let rhs = ops::aggregate(
                &r.snapshot(t).unwrap(),
                &["E".into()],
                &[aggs[0].clone()],
            )
            .unwrap();
            prop_assert_eq!(lhs.counts(), rhs.counts(), "at instant {}", t);
        }
    }

    #[test]
    fn product_t_is_snapshot_reducible_on_explicit_attrs(
        r1 in arb_temporal(3, 8),
        r2 in arb_temporal(3, 8),
    ) {
        let result = ops::product_t(&r1, &r2).unwrap();
        for t in probes(&[&r1, &r2]) {
            // Compare the explicit pair multiset: (1.E, 2.E).
            let snap = result.snapshot(t).unwrap();
            let i1 = snap.schema().resolve("1.E").unwrap();
            let i2 = snap.schema().resolve("2.E").unwrap();
            let mut lhs: Vec<(String, String)> = snap
                .tuples()
                .iter()
                .map(|tp| {
                    (tp.value(i1).to_string(), tp.value(i2).to_string())
                })
                .collect();
            lhs.sort();
            let s1 = r1.snapshot(t).unwrap();
            let s2 = r2.snapshot(t).unwrap();
            let mut rhs = Vec::new();
            for a in s1.tuples() {
                for b in s2.tuples() {
                    rhs.push((a.value(0).to_string(), b.value(0).to_string()));
                }
            }
            rhs.sort();
            prop_assert_eq!(lhs, rhs, "at instant {}", t);
        }
    }

    #[test]
    fn coalesce_preserves_snapshots_exactly(r in arb_temporal(4, 14)) {
        // Rule C2's semantic content: coalᵀ(r) ≡SM r.
        let result = ops::coalesce(&r).unwrap();
        for t in probes(&[&r]) {
            let lhs = result.snapshot(t).unwrap();
            let rhs = r.snapshot(t).unwrap();
            prop_assert_eq!(lhs.counts(), rhs.counts(), "at instant {}", t);
        }
    }

    #[test]
    fn rdup_t_output_is_snapshot_duplicate_free(r in arb_temporal(4, 14)) {
        let result = ops::rdup_t(&r).unwrap();
        prop_assert!(!result.has_snapshot_duplicates().unwrap());
    }

    #[test]
    fn coalesce_output_is_coalesced(r in arb_temporal(4, 14)) {
        let result = ops::coalesce(&r).unwrap();
        prop_assert!(result.is_coalesced().unwrap());
    }

    #[test]
    fn fast_operators_agree_with_faithful_up_to_snapshots(
        r in arb_temporal(4, 14),
        r2 in arb_temporal(4, 10),
    ) {
        use tqo_core::equivalence::{equiv_multiset, equiv_snapshot_multiset};
        // Fast rdupᵀ ≡SM faithful rdupᵀ.
        let fast = tqo_exec::operators::rdup_t_sweep(&r).unwrap();
        let faithful = ops::rdup_t(&r).unwrap();
        prop_assert!(equiv_snapshot_multiset(&fast, &faithful).unwrap());
        // Fast coalᵀ ≡M faithful coalᵀ on sdf inputs.
        let clean = ops::rdup_t(&r).unwrap();
        let fast_c = tqo_exec::operators::coalesce_sort_merge(&clean).unwrap();
        let faithful_c = ops::coalesce(&clean).unwrap();
        prop_assert!(equiv_multiset(&fast_c, &faithful_c).unwrap());
        // Plane-sweep ×ᵀ ≡M nested loop.
        let fast_j = tqo_exec::operators::product_t_plane_sweep(&r, &r2).unwrap();
        let faithful_j = ops::product_t(&r, &r2).unwrap();
        prop_assert!(equiv_multiset(&fast_j, &faithful_j).unwrap());
        // Subtract-union \ᵀ ≡SM timeline sweep (sdf left).
        let fast_d = tqo_exec::operators::difference_t_subtract_union(&clean, &r2).unwrap();
        let faithful_d = ops::difference_t(&clean, &r2).unwrap();
        if faithful_d.is_empty() && fast_d.is_empty() {
            // both empty — fine (≡SM on empty temporal relations holds)
        } else {
            prop_assert!(equiv_snapshot_multiset(&fast_d, &faithful_d).unwrap());
        }
    }
}
