//! Estimation accuracy and statistics-driven plan choice.
//!
//! Three claims, end to end over the generated-workload pool:
//!
//! 1. **Accuracy** — for selections, joins, and duplicate elimination over
//!    tables the estimator has statistics for, the median q-error
//!    (`max(est/act, act/est)` of the root operator) stays ≤ 4.
//! 2. **Admissibility** — statistics never talk the optimizer into an
//!    inadmissible plan: on scans carrying measured summaries, both search
//!    strategies still agree on cost and every extracted plan annotates
//!    and prices as valid (the checks of `tests/memo_optimizer.rs`).
//! 3. **Plan sensitivity** — swapping a table's statistics (same
//!    cardinality, different value distribution) demonstrably flips the
//!    chosen plan — site placement of a join, and the `\ᵀ` algorithm at
//!    lowering — while both plans produce equivalent relations.

mod common;

use tqo_core::cost::CostModel;
use tqo_core::equivalence::ResultType;
use tqo_core::expr::Expr;
use tqo_core::optimizer::{optimize, OptimizerConfig, SearchStrategy};
use tqo_core::plan::props::annotate;
use tqo_core::plan::{LogicalPlan, PlanBuilder, PlanNode};
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};
use tqo_exec::{execute_logical, lower, PlannerConfig};
use tqo_storage::{Catalog, GenConfig, WorkloadGenerator};

/// Scan a cataloged table with its measured statistics attached.
fn cscan(cat: &Catalog, name: &str) -> PlanBuilder {
    PlanBuilder::scan(name, cat.base_props(name).unwrap())
}

/// Root-operator q-error of one plan executed against the catalog.
fn root_q_error(cat: &Catalog, plan: &LogicalPlan) -> f64 {
    let (_, metrics) = execute_logical(plan, &cat.env(), PlannerConfig::default()).unwrap();
    let root = metrics.operators.last().expect("plan has operators");
    root.q_error().expect("root carries an estimate")
}

#[test]
fn median_q_error_at_most_four_on_generated_workloads() {
    let mut qs: Vec<f64> = Vec::new();
    for seed in [3u64, 17, 40] {
        let mut gen = WorkloadGenerator::new(seed);
        let cat = gen.figure1_workload(4).unwrap();
        cat.register("NUMS", gen.conventional(2000, 50).unwrap())
            .unwrap();
        cat.register("NUMS2", gen.conventional(1200, 40).unwrap())
            .unwrap();

        // Selections: equality (1/NDV) and range (histogram mass).
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "EMPLOYEE")
                .select(Expr::eq(Expr::col("EmpName"), Expr::lit("emp3")))
                .build_multiset(),
        ));
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "NUMS")
                .select(Expr::eq(Expr::col("A"), Expr::lit(7i64)))
                .build_multiset(),
        ));
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "EMPLOYEE")
                .select(Expr::lt(Expr::col("T1"), Expr::lit(40i64)))
                .build_multiset(),
        ));

        // Joins: conventional equi-join (σ over ×) and temporal ×ᵀ.
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "NUMS")
                .product(cscan(&cat, "NUMS2"))
                .select(Expr::eq(Expr::col("1.A"), Expr::col("2.A")))
                .build_multiset(),
        ));
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "EMPLOYEE")
                .product_t(cscan(&cat, "PROJECT"))
                .build_multiset(),
        ));

        // Duplicate elimination: exact distinct-tuple counts at the leaf.
        qs.push(root_q_error(&cat, &cscan(&cat, "NUMS").rdup().build_set()));
        qs.push(root_q_error(
            &cat,
            &cscan(&cat, "EMPLOYEE").rdup().build_set(),
        ));
    }
    let median = tqo_exec::metrics::median(&mut qs).expect("cases executed");
    assert!(
        median <= 4.0,
        "median q-error {median} over {} cases; all: {qs:?}",
        qs.len()
    );
}

/// The admissibility checks of `tests/memo_optimizer.rs`, over plans whose
/// scans carry measured statistics.
fn check_admissible(plan: &LogicalPlan) {
    let exhaustive = optimize(
        plan,
        &tqo_core::rules::RuleSet::standard(),
        &OptimizerConfig {
            strategy: SearchStrategy::Exhaustive,
            ..OptimizerConfig::default()
        },
    )
    .unwrap();
    let memo = optimize(
        plan,
        &tqo_core::rules::RuleSet::standard(),
        &OptimizerConfig {
            strategy: SearchStrategy::Memo,
            ..OptimizerConfig::default()
        },
    )
    .unwrap();
    // Extracted plans annotate cleanly and price as valid.
    annotate(&memo.best).expect("memo plan annotates");
    annotate(&exhaustive.best).expect("exhaustive plan annotates");
    let repriced = CostModel::default().cost(&memo.best).unwrap();
    assert!(
        repriced.is_valid() || !exhaustive.cost.is_valid(),
        "stats-driven memo chose an inadmissible plan"
    );
    if repriced.is_valid() {
        assert!(
            (repriced.0 - memo.cost.0).abs() <= 1e-9 * repriced.0.max(1.0),
            "extractor accounting disagrees with CostModel: {} vs {}",
            repriced.0,
            memo.cost.0
        );
    }
    // Both strategies agree on cost when the oracle finished.
    if !exhaustive.truncated && !memo.truncated {
        let close = (exhaustive.cost.0 - memo.cost.0).abs()
            <= 1e-9 * exhaustive.cost.0.abs().max(memo.cost.0.abs()).max(1.0);
        assert!(
            close || (!exhaustive.cost.is_valid() && !memo.cost.is_valid()),
            "strategies disagree under statistics: exhaustive={} memo={}",
            exhaustive.cost.0,
            memo.cost.0
        );
    }
}

#[test]
fn stats_driven_plan_choice_never_selects_inadmissible_plans() {
    let mut gen = WorkloadGenerator::new(11);
    let cat = gen.figure1_workload(2).unwrap();
    let by_name = || tqo_core::sortspec::Order::asc(&["EmpName"]);
    let plans = vec![
        cscan(&cat, "EMPLOYEE")
            .project_cols(&["EmpName", "T1", "T2"])
            .transfer_s()
            .rdup_t()
            .difference_t(
                cscan(&cat, "PROJECT")
                    .project_cols(&["EmpName", "T1", "T2"])
                    .transfer_s(),
            )
            .rdup_t()
            .coalesce()
            .sort(by_name())
            .build_list(by_name()),
        cscan(&cat, "EMPLOYEE")
            .transfer_s()
            .rdup_t()
            .coalesce()
            .build_multiset(),
        cscan(&cat, "EMPLOYEE")
            .transfer_s()
            .select(Expr::eq(Expr::col("Dept"), Expr::lit("d0")))
            .rdup_t()
            .build_set(),
        cscan(&cat, "EMPLOYEE")
            .transfer_s()
            .sort(by_name())
            .build_list(by_name()),
    ];
    for plan in &plans {
        check_admissible(plan);
    }
}

/// Two relations with identical shape and cardinality but opposite value
/// distributions on the join column `A`.
fn join_table(rows: usize, distinct_a: usize) -> Relation {
    let schema = Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]);
    let tuples: Vec<Tuple> = (0..rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int((i % distinct_a.max(1)) as i64),
                Value::Str(format!("s{}", i % 7).into()),
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

/// The acceptance flip: the same layered join query places the join in
/// the DBMS when the join column is near-unique (tiny estimated output →
/// cheap transfer) and keeps it in the stratum when the column is
/// constant (the joined result would be too wide to ship). Only the
/// *statistics* differ between the catalogs — cardinalities are equal —
/// and both chosen plans produce equivalent relations.
#[test]
fn join_site_placement_flips_with_table_statistics() {
    let n = 400usize;
    let selective = Catalog::new();
    selective.register("S1", join_table(n, n)).unwrap();
    selective.register("S2", join_table(n, n)).unwrap();
    let constant = Catalog::new();
    constant.register("S1", join_table(n, 1)).unwrap();
    constant.register("S2", join_table(n, 1)).unwrap();

    let join_plan = |cat: &Catalog| {
        cscan(cat, "S1")
            .transfer_s()
            .product(cscan(cat, "S2").transfer_s())
            .select(Expr::eq(Expr::col("1.A"), Expr::col("2.A")))
            .build_multiset()
    };

    let config = OptimizerConfig::default();
    let rules = tqo_core::rules::RuleSet::standard();
    let chosen_selective = optimize(&join_plan(&selective), &rules, &config).unwrap();
    let chosen_constant = optimize(&join_plan(&constant), &rules, &config).unwrap();

    // Near-unique join column: everything below one transfer (join in the
    // DBMS). Constant join column: the product stays in the stratum.
    assert_eq!(
        chosen_selective.best.root.op_name(),
        "TS",
        "selective stats should push the join into the DBMS:\n{:?}",
        chosen_selective.best.root
    );
    assert_ne!(
        chosen_constant.best.root.op_name(),
        "TS",
        "constant stats should keep the join in the stratum:\n{:?}",
        chosen_constant.best.root
    );

    // The memo strategy flips the same way.
    let memo_config = OptimizerConfig {
        strategy: SearchStrategy::Memo,
        ..OptimizerConfig::default()
    };
    assert_eq!(
        optimize(&join_plan(&selective), &rules, &memo_config)
            .unwrap()
            .best
            .root
            .op_name(),
        "TS"
    );
    assert_ne!(
        optimize(&join_plan(&constant), &rules, &memo_config)
            .unwrap()
            .best
            .root
            .op_name(),
        "TS"
    );

    // Both chosen plans compute the same relation. Execute each over the
    // same data (the constant catalog's env, where the join is wide).
    let env = constant.env();
    let (r1, _) = execute_logical(&chosen_selective.best, &env, PlannerConfig::default()).unwrap();
    let (r2, _) = execute_logical(&chosen_constant.best, &env, PlannerConfig::default()).unwrap();
    assert!(
        tqo_core::equivalence::equiv_multiset(&r1, &r2).unwrap(),
        "stats-flipped plans must agree ({} vs {} rows)",
        r1.len(),
        r2.len()
    );
    // And over the selective catalog's env.
    let env = selective.env();
    let (r1, _) = execute_logical(&chosen_selective.best, &env, PlannerConfig::default()).unwrap();
    let (r2, _) = execute_logical(&chosen_constant.best, &env, PlannerConfig::default()).unwrap();
    assert!(tqo_core::equivalence::equiv_multiset(&r1, &r2).unwrap());
}

/// Temporal table generator: `rows` fragments over `classes` values.
fn temporal_table(gen: &mut WorkloadGenerator, classes: usize, fragments: usize) -> Relation {
    gen.temporal(&GenConfig::clean(classes, fragments)).unwrap()
}

/// Lowering-level flip: within the `≡SM` license, the `\ᵀ` algorithm is
/// chosen from the estimated input sizes — per-tuple subtract-union for a
/// tiny right side, the timeline sweep otherwise — and both physical
/// plans produce snapshot-equivalent results.
#[test]
fn difference_algorithm_flips_with_right_side_statistics() {
    let mut gen = WorkloadGenerator::new(9);
    let big = temporal_table(&mut gen, 100, 10); // 1000 rows
    let tiny = temporal_table(&mut gen, 10, 2); // 20 rows

    let make = |right: &Relation| {
        let cat = Catalog::new();
        cat.register("A", big.clone()).unwrap();
        cat.register("B", right.clone()).unwrap();
        let plan = cscan(&cat, "A")
            .rdup_t()
            .difference_t(cscan(&cat, "B"))
            .coalesce()
            .build_multiset();
        (cat, plan)
    };

    let (cat_tiny, plan_tiny) = make(&tiny);
    let (cat_big, plan_big) = make(&big);

    let phys_tiny = lower(&plan_tiny, PlannerConfig::default()).unwrap();
    let phys_big = lower(&plan_big, PlannerConfig::default()).unwrap();
    assert!(
        phys_tiny.explain().contains("difference-t[SubtractUnion]"),
        "tiny right side should pick subtract-union:\n{}",
        phys_tiny.explain()
    );
    assert!(
        phys_big.explain().contains("difference-t[TimelineSweep]"),
        "large right side should pick the timeline sweep:\n{}",
        phys_big.explain()
    );

    // Each stats-chosen physical plan agrees with the faithful lowering
    // of the same logical plan (snapshot-equivalent results; these plans
    // sit under a coalesce, so the faithful comparison is ≡SM).
    for (cat, plan) in [(cat_tiny, plan_tiny), (cat_big, plan_big)] {
        let env = cat.env();
        let (fast, _) = execute_logical(&plan, &env, PlannerConfig::default()).unwrap();
        let (faithful, _) = execute_logical(
            &plan,
            &env,
            PlannerConfig {
                allow_fast: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            tqo_core::equivalence::equiv_snapshot_multiset(&fast, &faithful).unwrap(),
            "stats-driven lowering diverged from the faithful baseline"
        );
    }
}

/// Blind plans (no statistics) keep the paper-era constant estimates, so
/// declared-cardinality fixtures price exactly as before the refactor.
#[test]
fn blind_plans_fall_back_to_constant_factors() {
    let schema = Schema::temporal(&[("E", DataType::Str)]);
    let plan = PlanBuilder::scan("R", tqo_core::plan::BaseProps::unordered(schema, 1000))
        .select(Expr::eq(Expr::col("E"), Expr::lit("x")))
        .build_multiset();
    let ann = annotate(&plan).unwrap();
    assert_eq!(ann[&vec![]].stat.card(), 500, "blind selection = half");
    assert_eq!(ann[&vec![0]].stat.card(), 1000);
    let _ = LogicalPlan::new(
        PlanNode::Scan {
            name: "R".into(),
            base: tqo_core::plan::BaseProps::unordered(Schema::of(&[("A", DataType::Int)]), 7),
        },
        ResultType::Multiset,
    );
}
