//! Front-end robustness: the lexer, parser, and binder must never panic —
//! arbitrary input produces either a plan or a clean `Error`.

use proptest::prelude::*;

use tqo_storage::paper;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte-ish strings through the whole pipeline.
    #[test]
    fn arbitrary_strings_never_panic(input in "\\PC{0,80}") {
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// SQL-shaped strings (keywords, idents, operators shuffled) — much
    /// denser coverage of parser states than fully random text.
    #[test]
    fn sql_shaped_strings_never_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER",
            "VALIDTIME", "COALESCE", "EXCEPT", "UNION", "ALL", "AND", "OR",
            "NOT", "AS", "IS", "NULL", "ASC", "DESC", "EMPLOYEE", "PROJECT",
            "EmpName", "Dept", "T1", "T2", "COUNT", "SUM", "(", ")", "*",
            ",", ".", "=", "<", ">", "<=", ">=", "<>", "+", "-", "/", "'x'",
            "42", "3.5",
        ]),
        0..24,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// Every successfully compiled SQL-shaped query must also evaluate
    /// without panicking (evaluation may legitimately error, e.g. division
    /// by zero).
    #[test]
    fn compiled_queries_evaluate_without_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "VALIDTIME", "COALESCE",
            "EMPLOYEE", "PROJECT", "EmpName", "Dept", "T1", "T2", "ORDER",
            "BY", "=", "'Sales'", "5", "AND",
        ]),
        2..14,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        if let Ok(plan) = tqo_sql::compile(&input, &catalog) {
            let _ = tqo_core::interp::eval_plan(&plan, &catalog.env());
        }
    }
}

/// A deterministic gauntlet of malformed inputs with the errors they must
/// produce (not panics).
#[test]
fn malformed_inputs_produce_clean_errors() {
    let catalog = paper::catalog();
    let cases = [
        "",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT * FROM NoSuchTable",
        "SELECT NoSuchColumn FROM EMPLOYEE",
        "SELECT EmpName FROM EMPLOYEE, PROJECT", // ambiguous
        "SELECT * FROM EMPLOYEE, PROJECT, EMPLOYEE", // >2 tables
        "SELECT EmpName FROM EMPLOYEE COALESCE", // COALESCE without VALIDTIME
        "SELECT COUNT(*) FROM",
        "SELECT * FROM EMPLOYEE WHERE",
        "SELECT * FROM EMPLOYEE ORDER BY",
        "SELECT * FROM EMPLOYEE WHERE EmpName = ",
        "SELECT * FROM EMPLOYEE GROUP",
        "SELECT SUM(EmpName + 1) AS s FROM EMPLOYEE GROUP BY Dept",
        "VALIDTIME SELECT e.Nope FROM EMPLOYEE e",
        "SELECT * FROM EMPLOYEE trailing garbage here",
        "((((SELECT * FROM EMPLOYEE",
        "'unterminated",
        "SELECT * FROM EMPLOYEE WHERE Dept = 'x' !",
    ];
    for sql in cases {
        let result = tqo_sql::compile(sql, &catalog);
        assert!(result.is_err(), "`{sql}` should be rejected");
        // And the error formats cleanly.
        let _ = result.unwrap_err().to_string();
    }
}
