//! Front-end robustness: the lexer, parser, and binder must never panic —
//! arbitrary input produces either a plan or a clean `Error`. The seeded
//! mutation-fuzz corpora at the bottom cover the two untrusted input
//! surfaces: SQL text and wire bytes.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqo_storage::paper;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte-ish strings through the whole pipeline.
    #[test]
    fn arbitrary_strings_never_panic(input in "\\PC{0,80}") {
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// SQL-shaped strings (keywords, idents, operators shuffled) — much
    /// denser coverage of parser states than fully random text.
    #[test]
    fn sql_shaped_strings_never_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER",
            "VALIDTIME", "COALESCE", "EXCEPT", "UNION", "ALL", "AND", "OR",
            "NOT", "AS", "IS", "NULL", "ASC", "DESC", "EMPLOYEE", "PROJECT",
            "EmpName", "Dept", "T1", "T2", "COUNT", "SUM", "(", ")", "*",
            ",", ".", "=", "<", ">", "<=", ">=", "<>", "+", "-", "/", "'x'",
            "42", "3.5",
        ]),
        0..24,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// Every successfully compiled SQL-shaped query must also evaluate
    /// without panicking (evaluation may legitimately error, e.g. division
    /// by zero).
    #[test]
    fn compiled_queries_evaluate_without_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "VALIDTIME", "COALESCE",
            "EMPLOYEE", "PROJECT", "EmpName", "Dept", "T1", "T2", "ORDER",
            "BY", "=", "'Sales'", "5", "AND",
        ]),
        2..14,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        if let Ok(plan) = tqo_sql::compile(&input, &catalog) {
            let _ = tqo_core::interp::eval_plan(&plan, &catalog.env());
        }
    }
}

/// A deterministic gauntlet of malformed inputs with the errors they must
/// produce (not panics).
#[test]
fn malformed_inputs_produce_clean_errors() {
    let catalog = paper::catalog();
    let cases = [
        "",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT * FROM NoSuchTable",
        "SELECT NoSuchColumn FROM EMPLOYEE",
        "SELECT EmpName FROM EMPLOYEE, PROJECT", // ambiguous
        "SELECT * FROM EMPLOYEE, PROJECT, EMPLOYEE", // >2 tables
        "SELECT EmpName FROM EMPLOYEE COALESCE", // COALESCE without VALIDTIME
        "SELECT COUNT(*) FROM",
        "SELECT * FROM EMPLOYEE WHERE",
        "SELECT * FROM EMPLOYEE ORDER BY",
        "SELECT * FROM EMPLOYEE WHERE EmpName = ",
        "SELECT * FROM EMPLOYEE GROUP",
        "SELECT SUM(EmpName + 1) AS s FROM EMPLOYEE GROUP BY Dept",
        "VALIDTIME SELECT e.Nope FROM EMPLOYEE e",
        "SELECT * FROM EMPLOYEE trailing garbage here",
        "((((SELECT * FROM EMPLOYEE",
        "'unterminated",
        "SELECT * FROM EMPLOYEE WHERE Dept = 'x' !",
    ];
    for sql in cases {
        let result = tqo_sql::compile(sql, &catalog);
        assert!(result.is_err(), "`{sql}` should be rejected");
        // And the error formats cleanly.
        let _ = result.unwrap_err().to_string();
    }
}

/// Numeric literals at and past every integer/float boundary must lex to
/// clean errors or values, never panic (overflow is an `Err`, not an
/// abort).
#[test]
fn extreme_numeric_literals_never_panic() {
    let catalog = paper::catalog();
    for lit in [
        "9223372036854775807",
        "9223372036854775808",
        "99999999999999999999999999999999999999",
        "-9223372036854775808",
        "1e308",
        "1e309",
        "0.000000000000000000000000000000001",
        "1.7976931348623157e308",
        "3.", // trailing dot
    ] {
        let sql = format!("SELECT * FROM EMPLOYEE WHERE T1 > {lit}");
        let _ = tqo_sql::compile(&sql, &catalog);
    }
}

/// The valid-query corpus the mutation fuzzer perturbs: every statement
/// class the front end supports.
const SQL_CORPUS: &[&str] = &[
    "SELECT * FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Shipping'",
    "SELECT Dept, COUNT(*) AS n, SUM(T2 - T1) AS dur FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "SELECT * FROM EMPLOYEE WHERE T1 + 1 * 2 > 3 OR NOT Dept = 'x' AND T2 < 50",
    "(SELECT EmpName FROM EMPLOYEE UNION SELECT EmpName FROM PROJECT) ORDER BY EmpName DESC",
    "SELECT EmpName AS who FROM EMPLOYEE WHERE EmpName IS NOT NULL ORDER BY who ASC",
    "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept HAVING n > 2",
    "SELECT EmpName FROM EMPLOYEE WHERE EmpName NOT IN \
     (VALIDTIME SELECT EmpName FROM PROJECT WHERE Prj = 'P1')",
    "SELECT EmpName FROM EMPLOYEE e WHERE EXISTS \
     (SELECT Prj FROM PROJECT p WHERE p.EmpName = e.EmpName)",
    "VALIDTIME SELECT e.EmpName AS who, p.Prj AS what FROM EMPLOYEE e \
     LEFT JOIN PROJECT p ON e.EmpName = p.EmpName",
    "SELECT EmpName FROM EMPLOYEE ORDER BY EmpName LIMIT 3 OFFSET 1",
];

/// One seeded byte-level mutation: truncate, delete a range, duplicate a
/// range, flip a byte, or splice in a fragment of another corpus entry.
fn mutate_sql(rng: &mut StdRng, base: &str) -> String {
    let mut bytes = base.as_bytes().to_vec();
    let edits = rng.gen_range(1usize..=4);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0u8..5) {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes.truncate(at);
            }
            1 => {
                let a = rng.gen_range(0..bytes.len());
                let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                bytes.drain(a..b);
            }
            2 => {
                let a = rng.gen_range(0..bytes.len());
                let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                let dup: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, dup);
            }
            3 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(0u8..=255);
            }
            _ => {
                let donor = SQL_CORPUS[rng.gen_range(0..SQL_CORPUS.len())].as_bytes();
                let a = rng.gen_range(0..donor.len());
                let b = (a + rng.gen_range(1usize..16)).min(donor.len());
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, donor[a..b].iter().copied());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Seeded mutation fuzz over the SQL corpus: thousands of deterministic
/// mutants of valid queries through compile (and, when they still
/// compile, evaluation). Panics fail the test; errors are the contract.
#[test]
fn mutated_sql_corpus_never_panics() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..2000 {
        let base = SQL_CORPUS[round % SQL_CORPUS.len()];
        let mutant = mutate_sql(&mut rng, base);
        if let Ok(plan) = tqo_sql::compile(&mutant, &catalog) {
            let _ = tqo_core::interp::eval_plan(&plan, &env);
        }
    }
}

/// Seeded mutation fuzz over wire bytes: encode real relations, then
/// truncate, corrupt, extend, and re-decode. Decode must return a clean
/// `Err` (or a valid relation, for semantically neutral mutations) —
/// never panic, and never trust the claimed row count.
#[test]
fn mutated_wire_bytes_never_panic() {
    use tqo_core::relation::Relation;
    use tqo_core::schema::Schema;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::{DataType, Value};

    let employee = paper::catalog().get("EMPLOYEE").unwrap().relation().clone();
    let mixed = Relation::new(
        Schema::of(&[
            ("S", DataType::Str),
            ("F", DataType::Float),
            ("B", DataType::Bool),
        ]),
        vec![
            Tuple::new(vec![
                Value::Str("αβγ".into()),
                Value::Float(2.5),
                Value::Bool(true),
            ]),
            Tuple::new(vec![Value::Null, Value::Null, Value::Bool(false)]),
        ],
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(0xFAB);
    for rel in [&employee, &mixed] {
        let clean = tqo_stratum::wire::encode(rel);
        for _ in 0..1500 {
            let mut bytes = clean.to_vec();
            for _ in 0..rng.gen_range(1usize..=3) {
                if bytes.is_empty() {
                    break;
                }
                match rng.gen_range(0u8..4) {
                    0 => bytes.truncate(rng.gen_range(0..bytes.len())),
                    1 => {
                        let at = rng.gen_range(0..bytes.len());
                        bytes[at] = rng.gen_range(0u8..=255);
                    }
                    2 => {
                        let at = rng.gen_range(0..bytes.len());
                        let n = rng.gen_range(1usize..8);
                        let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
                        bytes.splice(at..at, junk);
                    }
                    _ => {
                        let a = rng.gen_range(0..bytes.len());
                        let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                        bytes.drain(a..b);
                    }
                }
            }
            let _ = tqo_stratum::wire::decode(rel.schema(), bytes::Bytes::from(bytes));
        }
    }
}

/// A hostile header claiming four billion rows over a tiny payload must be
/// rejected quickly without attempting the four-billion-row allocation.
#[test]
fn hostile_row_count_header_is_clamped() {
    use tqo_core::schema::Schema;
    use tqo_core::value::DataType;

    let schema = Schema::of(&[("A", DataType::Int)]);
    // arity = 1, rows = u32::MAX, then a single encoded Int value.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u32.to_be_bytes());
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.push(2); // tag: Int
    bytes.extend_from_slice(&7i64.to_be_bytes());
    let started = std::time::Instant::now();
    let result = tqo_stratum::wire::decode(&schema, bytes::Bytes::from(bytes));
    assert!(result.is_err(), "lying header must not decode");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "hostile header took {:?} — allocation not clamped",
        started.elapsed()
    );
}

// ---------------------------------------------------------------------------
// Round-trip property: parse(unparse(ast)) == ast.
// ---------------------------------------------------------------------------

/// Seeded generator of random *parser-canonical* statements. Two shapes
/// the parser can never produce are excluded by construction: `NOT`
/// directly wrapping a subquery predicate (negation is folded into the
/// `negated` flags) and `ORDER BY`/`LIMIT` nested in the wrong order.
mod ast_gen {
    use rand::rngs::StdRng;
    use rand::Rng;
    use tqo_core::expr::AggFunc;
    use tqo_core::sortspec::SortDir;
    use tqo_sql::ast::*;

    const IDENTS: &[&str] = &["a", "b", "c", "EmpName", "Dept", "Prj", "x1", "col_2"];
    const TABLES: &[&str] = &["R", "S", "EMPLOYEE", "PROJECT", "T_0"];
    const STRINGS: &[&str] = &["", "x", "it's", "Sales"];
    const FLOATS: &[f64] = &[0.5, 1.5, 2.25, 10.75];

    fn ident(rng: &mut StdRng) -> String {
        IDENTS[rng.gen_range(0..IDENTS.len())].to_string()
    }

    fn column(rng: &mut StdRng) -> SqlExpr {
        SqlExpr::Column {
            qualifier: if rng.gen_range(0u8..4) == 0 {
                Some(TABLES[rng.gen_range(0..TABLES.len())].to_lowercase())
            } else {
                None
            },
            name: ident(rng),
        }
    }

    fn literal(rng: &mut StdRng) -> SqlExpr {
        match rng.gen_range(0u8..5) {
            0 => SqlExpr::Int(rng.gen_range(-999i64..=999)),
            1 => SqlExpr::Float(FLOATS[rng.gen_range(0..FLOATS.len())]),
            2 => SqlExpr::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()),
            3 => SqlExpr::Bool(rng.gen_range(0u8..2) == 0),
            _ => SqlExpr::Null,
        }
    }

    const BIN_OPS: &[SqlBinOp] = &[
        SqlBinOp::Eq,
        SqlBinOp::Ne,
        SqlBinOp::Lt,
        SqlBinOp::Le,
        SqlBinOp::Gt,
        SqlBinOp::Ge,
        SqlBinOp::And,
        SqlBinOp::Or,
        SqlBinOp::Add,
        SqlBinOp::Sub,
        SqlBinOp::Mul,
        SqlBinOp::Div,
    ];

    /// A scalar expression without subqueries.
    fn scalar(rng: &mut StdRng, depth: u8) -> SqlExpr {
        if depth == 0 {
            return if rng.gen_range(0u8..2) == 0 {
                column(rng)
            } else {
                literal(rng)
            };
        }
        match rng.gen_range(0u8..6) {
            0 => column(rng),
            1 => literal(rng),
            2 => SqlExpr::Binary {
                op: BIN_OPS[rng.gen_range(0..BIN_OPS.len())],
                left: Box::new(scalar(rng, depth - 1)),
                right: Box::new(scalar(rng, depth - 1)),
            },
            3 => SqlExpr::Not(Box::new(scalar(rng, depth - 1))),
            4 => SqlExpr::IsNull {
                expr: Box::new(scalar(rng, depth - 1)),
                negated: rng.gen_range(0u8..2) == 0,
            },
            _ => SqlExpr::Agg {
                func: match rng.gen_range(0u8..5) {
                    0 => AggFunc::Count,
                    1 => AggFunc::Sum,
                    2 => AggFunc::Min,
                    3 => AggFunc::Max,
                    _ => AggFunc::Avg,
                },
                arg: if rng.gen_range(0u8..3) == 0 {
                    None
                } else {
                    Some(Box::new(scalar(rng, depth - 1)))
                },
            },
        }
    }

    /// A WHERE-shaped predicate: a scalar, optionally conjoined with
    /// subquery membership tests.
    fn predicate(rng: &mut StdRng, depth: u8) -> SqlExpr {
        let mut p = scalar(rng, depth);
        if depth == 0 {
            return p;
        }
        for _ in 0..rng.gen_range(0u8..3) {
            let sub = if rng.gen_range(0u8..2) == 0 {
                SqlExpr::InSubquery {
                    expr: Box::new(scalar(rng, 1)),
                    query: Box::new(statement(rng, depth - 1)),
                    negated: rng.gen_range(0u8..2) == 0,
                }
            } else {
                SqlExpr::Exists {
                    query: Box::new(statement(rng, depth - 1)),
                    negated: rng.gen_range(0u8..2) == 0,
                }
            };
            p = SqlExpr::Binary {
                op: SqlBinOp::And,
                left: Box::new(p),
                right: Box::new(sub),
            };
        }
        p
    }

    fn table(rng: &mut StdRng) -> TableRef {
        TableRef {
            name: TABLES[rng.gen_range(0..TABLES.len())].to_string(),
            alias: if rng.gen_range(0u8..2) == 0 {
                Some(TABLES[rng.gen_range(0..TABLES.len())].to_lowercase())
            } else {
                None
            },
        }
    }

    fn select(rng: &mut StdRng, depth: u8) -> SelectQuery {
        let items = if rng.gen_range(0u8..3) == 0 {
            vec![SelectItem::Wildcard]
        } else {
            (0..rng.gen_range(1usize..=3))
                .map(|_| SelectItem::Expr {
                    expr: scalar(rng, depth.min(2)),
                    alias: if rng.gen_range(0u8..2) == 0 {
                        Some(ident(rng))
                    } else {
                        None
                    },
                })
                .collect()
        };
        let two_tables = rng.gen_range(0u8..3) == 0;
        let from = if two_tables {
            vec![table(rng), table(rng)]
        } else {
            vec![table(rng)]
        };
        // The parser only accepts JOIN after a single table reference.
        let join = if !two_tables && rng.gen_range(0u8..3) == 0 {
            Some(JoinClause {
                kind: match rng.gen_range(0u8..3) {
                    0 => JoinKind::Inner,
                    1 => JoinKind::Left,
                    _ => JoinKind::Right,
                },
                table: table(rng),
                on: scalar(rng, depth.min(2)),
            })
        } else {
            None
        };
        SelectQuery {
            valid_time: rng.gen_range(0u8..3) == 0,
            distinct: rng.gen_range(0u8..3) == 0,
            items,
            from,
            join,
            predicate: if rng.gen_range(0u8..2) == 0 {
                Some(predicate(rng, depth))
            } else {
                None
            },
            group_by: (0..rng.gen_range(0usize..=2)).map(|_| ident(rng)).collect(),
            having: if rng.gen_range(0u8..4) == 0 {
                Some(scalar(rng, depth.min(2)))
            } else {
                None
            },
            coalesce: rng.gen_range(0u8..5) == 0,
        }
    }

    /// A full statement: a set-expression core, optionally wrapped in
    /// `ORDER BY` and then `LIMIT`/`OFFSET` (the only nesting order the
    /// parser produces).
    pub fn statement(rng: &mut StdRng, depth: u8) -> Statement {
        let mut stmt = if depth > 0 && rng.gen_range(0u8..4) == 0 {
            let mk = |rng: &mut StdRng, d| Box::new(statement(rng, d));
            let (left, right) = (mk(rng, depth - 1), mk(rng, depth - 1));
            let all = rng.gen_range(0u8..2) == 0;
            if rng.gen_range(0u8..2) == 0 {
                Statement::Union { left, right, all }
            } else {
                Statement::Except { left, right, all }
            }
        } else {
            Statement::Select(Box::new(select(rng, depth)))
        };
        if rng.gen_range(0u8..4) == 0 {
            stmt = Statement::OrderBy {
                inner: Box::new(stmt),
                keys: (0..rng.gen_range(1usize..=2))
                    .map(|_| OrderItem {
                        column: ident(rng),
                        dir: if rng.gen_range(0u8..2) == 0 {
                            SortDir::Asc
                        } else {
                            SortDir::Desc
                        },
                    })
                    .collect(),
            };
        }
        if rng.gen_range(0u8..4) == 0 {
            stmt = Statement::Limit {
                inner: Box::new(stmt),
                limit: if rng.gen_range(0u8..3) == 0 {
                    None
                } else {
                    Some(rng.gen_range(0usize..100))
                },
                offset: if rng.gen_range(0u8..2) == 0 {
                    0
                } else {
                    rng.gen_range(1usize..50)
                },
            };
        }
        stmt
    }
}

/// For any statement the parser can produce, rendering it back to SQL and
/// re-parsing must reproduce the identical AST — the unparser's contract.
#[test]
fn unparse_parse_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for case in 0..1500 {
        let stmt = ast_gen::statement(&mut rng, 3);
        let text = tqo_sql::ast_unparser::unparse(&stmt);
        let reparsed = tqo_sql::parser::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: unparsed `{text}` fails to parse: {e}"));
        assert_eq!(
            stmt, reparsed,
            "case {case}: round trip diverged via `{text}`"
        );
    }
}

/// Unparsed statements must also re-unparse to the identical text — the
/// canonical form is a fixed point.
#[test]
fn unparse_is_a_fixed_point() {
    let mut rng = StdRng::seed_from_u64(0xF1C5);
    for _ in 0..500 {
        let stmt = ast_gen::statement(&mut rng, 3);
        let text = tqo_sql::ast_unparser::unparse(&stmt);
        if let Ok(reparsed) = tqo_sql::parser::parse(&text) {
            assert_eq!(text, tqo_sql::ast_unparser::unparse(&reparsed));
        }
    }
}
