//! Front-end robustness: the lexer, parser, and binder must never panic —
//! arbitrary input produces either a plan or a clean `Error`. The seeded
//! mutation-fuzz corpora at the bottom cover the two untrusted input
//! surfaces: SQL text and wire bytes.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqo_storage::paper;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte-ish strings through the whole pipeline.
    #[test]
    fn arbitrary_strings_never_panic(input in "\\PC{0,80}") {
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// SQL-shaped strings (keywords, idents, operators shuffled) — much
    /// denser coverage of parser states than fully random text.
    #[test]
    fn sql_shaped_strings_never_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER",
            "VALIDTIME", "COALESCE", "EXCEPT", "UNION", "ALL", "AND", "OR",
            "NOT", "AS", "IS", "NULL", "ASC", "DESC", "EMPLOYEE", "PROJECT",
            "EmpName", "Dept", "T1", "T2", "COUNT", "SUM", "(", ")", "*",
            ",", ".", "=", "<", ">", "<=", ">=", "<>", "+", "-", "/", "'x'",
            "42", "3.5",
        ]),
        0..24,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        let _ = tqo_sql::compile(&input, &catalog);
    }

    /// Every successfully compiled SQL-shaped query must also evaluate
    /// without panicking (evaluation may legitimately error, e.g. division
    /// by zero).
    #[test]
    fn compiled_queries_evaluate_without_panic(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "DISTINCT", "FROM", "WHERE", "VALIDTIME", "COALESCE",
            "EMPLOYEE", "PROJECT", "EmpName", "Dept", "T1", "T2", "ORDER",
            "BY", "=", "'Sales'", "5", "AND",
        ]),
        2..14,
    )) {
        let input = tokens.join(" ");
        let catalog = paper::catalog();
        if let Ok(plan) = tqo_sql::compile(&input, &catalog) {
            let _ = tqo_core::interp::eval_plan(&plan, &catalog.env());
        }
    }
}

/// A deterministic gauntlet of malformed inputs with the errors they must
/// produce (not panics).
#[test]
fn malformed_inputs_produce_clean_errors() {
    let catalog = paper::catalog();
    let cases = [
        "",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT * FROM NoSuchTable",
        "SELECT NoSuchColumn FROM EMPLOYEE",
        "SELECT EmpName FROM EMPLOYEE, PROJECT", // ambiguous
        "SELECT * FROM EMPLOYEE, PROJECT, EMPLOYEE", // >2 tables
        "SELECT EmpName FROM EMPLOYEE COALESCE", // COALESCE without VALIDTIME
        "SELECT COUNT(*) FROM",
        "SELECT * FROM EMPLOYEE WHERE",
        "SELECT * FROM EMPLOYEE ORDER BY",
        "SELECT * FROM EMPLOYEE WHERE EmpName = ",
        "SELECT * FROM EMPLOYEE GROUP",
        "SELECT SUM(EmpName + 1) AS s FROM EMPLOYEE GROUP BY Dept",
        "VALIDTIME SELECT e.Nope FROM EMPLOYEE e",
        "SELECT * FROM EMPLOYEE trailing garbage here",
        "((((SELECT * FROM EMPLOYEE",
        "'unterminated",
        "SELECT * FROM EMPLOYEE WHERE Dept = 'x' !",
    ];
    for sql in cases {
        let result = tqo_sql::compile(sql, &catalog);
        assert!(result.is_err(), "`{sql}` should be rejected");
        // And the error formats cleanly.
        let _ = result.unwrap_err().to_string();
    }
}

/// Numeric literals at and past every integer/float boundary must lex to
/// clean errors or values, never panic (overflow is an `Err`, not an
/// abort).
#[test]
fn extreme_numeric_literals_never_panic() {
    let catalog = paper::catalog();
    for lit in [
        "9223372036854775807",
        "9223372036854775808",
        "99999999999999999999999999999999999999",
        "-9223372036854775808",
        "1e308",
        "1e309",
        "0.000000000000000000000000000000001",
        "1.7976931348623157e308",
        "3.", // trailing dot
    ] {
        let sql = format!("SELECT * FROM EMPLOYEE WHERE T1 > {lit}");
        let _ = tqo_sql::compile(&sql, &catalog);
    }
}

/// The valid-query corpus the mutation fuzzer perturbs: every statement
/// class the front end supports.
const SQL_CORPUS: &[&str] = &[
    "SELECT * FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Shipping'",
    "SELECT Dept, COUNT(*) AS n, SUM(T2 - T1) AS dur FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "SELECT * FROM EMPLOYEE WHERE T1 + 1 * 2 > 3 OR NOT Dept = 'x' AND T2 < 50",
    "(SELECT EmpName FROM EMPLOYEE UNION SELECT EmpName FROM PROJECT) ORDER BY EmpName DESC",
    "SELECT EmpName AS who FROM EMPLOYEE WHERE EmpName IS NOT NULL ORDER BY who ASC",
];

/// One seeded byte-level mutation: truncate, delete a range, duplicate a
/// range, flip a byte, or splice in a fragment of another corpus entry.
fn mutate_sql(rng: &mut StdRng, base: &str) -> String {
    let mut bytes = base.as_bytes().to_vec();
    let edits = rng.gen_range(1usize..=4);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0u8..5) {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes.truncate(at);
            }
            1 => {
                let a = rng.gen_range(0..bytes.len());
                let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                bytes.drain(a..b);
            }
            2 => {
                let a = rng.gen_range(0..bytes.len());
                let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                let dup: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, dup);
            }
            3 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(0u8..=255);
            }
            _ => {
                let donor = SQL_CORPUS[rng.gen_range(0..SQL_CORPUS.len())].as_bytes();
                let a = rng.gen_range(0..donor.len());
                let b = (a + rng.gen_range(1usize..16)).min(donor.len());
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, donor[a..b].iter().copied());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Seeded mutation fuzz over the SQL corpus: thousands of deterministic
/// mutants of valid queries through compile (and, when they still
/// compile, evaluation). Panics fail the test; errors are the contract.
#[test]
fn mutated_sql_corpus_never_panics() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..2000 {
        let base = SQL_CORPUS[round % SQL_CORPUS.len()];
        let mutant = mutate_sql(&mut rng, base);
        if let Ok(plan) = tqo_sql::compile(&mutant, &catalog) {
            let _ = tqo_core::interp::eval_plan(&plan, &env);
        }
    }
}

/// Seeded mutation fuzz over wire bytes: encode real relations, then
/// truncate, corrupt, extend, and re-decode. Decode must return a clean
/// `Err` (or a valid relation, for semantically neutral mutations) —
/// never panic, and never trust the claimed row count.
#[test]
fn mutated_wire_bytes_never_panic() {
    use tqo_core::relation::Relation;
    use tqo_core::schema::Schema;
    use tqo_core::tuple::Tuple;
    use tqo_core::value::{DataType, Value};

    let employee = paper::catalog().get("EMPLOYEE").unwrap().relation().clone();
    let mixed = Relation::new(
        Schema::of(&[
            ("S", DataType::Str),
            ("F", DataType::Float),
            ("B", DataType::Bool),
        ]),
        vec![
            Tuple::new(vec![
                Value::Str("αβγ".into()),
                Value::Float(2.5),
                Value::Bool(true),
            ]),
            Tuple::new(vec![Value::Null, Value::Null, Value::Bool(false)]),
        ],
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(0xFAB);
    for rel in [&employee, &mixed] {
        let clean = tqo_stratum::wire::encode(rel);
        for _ in 0..1500 {
            let mut bytes = clean.to_vec();
            for _ in 0..rng.gen_range(1usize..=3) {
                if bytes.is_empty() {
                    break;
                }
                match rng.gen_range(0u8..4) {
                    0 => bytes.truncate(rng.gen_range(0..bytes.len())),
                    1 => {
                        let at = rng.gen_range(0..bytes.len());
                        bytes[at] = rng.gen_range(0u8..=255);
                    }
                    2 => {
                        let at = rng.gen_range(0..bytes.len());
                        let n = rng.gen_range(1usize..8);
                        let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
                        bytes.splice(at..at, junk);
                    }
                    _ => {
                        let a = rng.gen_range(0..bytes.len());
                        let b = (a + rng.gen_range(1usize..8)).min(bytes.len());
                        bytes.drain(a..b);
                    }
                }
            }
            let _ = tqo_stratum::wire::decode(rel.schema(), bytes::Bytes::from(bytes));
        }
    }
}

/// A hostile header claiming four billion rows over a tiny payload must be
/// rejected quickly without attempting the four-billion-row allocation.
#[test]
fn hostile_row_count_header_is_clamped() {
    use tqo_core::schema::Schema;
    use tqo_core::value::DataType;

    let schema = Schema::of(&[("A", DataType::Int)]);
    // arity = 1, rows = u32::MAX, then a single encoded Int value.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u32.to_be_bytes());
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.push(2); // tag: Int
    bytes.extend_from_slice(&7i64.to_be_bytes());
    let started = std::time::Instant::now();
    let result = tqo_stratum::wire::decode(&schema, bytes::Bytes::from(bytes));
    assert!(result.is_err(), "lying header must not decode");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "hostile header took {:?} — allocation not clamped",
        started.elapsed()
    );
}
