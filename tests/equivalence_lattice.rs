//! Theorem 3.1: the implication lattice of the six equivalence types,
//! property-tested on random relation pairs — whenever a stronger
//! equivalence holds between two relations, every implied equivalence holds
//! too; and the non-implications are witnessed by concrete pairs.

mod common;

use common::arb_temporal;
use proptest::prelude::*;

use tqo_core::equivalence::*;
use tqo_core::ops;
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::sortspec::Order;
use tqo_core::tuple;
use tqo_core::value::DataType;

/// Check all implications of Theorem 3.1 for a given pair.
fn assert_lattice(r1: &Relation, r2: &Relation) -> Result<(), TestCaseError> {
    let l = equiv_list(r1, r2).unwrap();
    let m = equiv_multiset(r1, r2).unwrap();
    let s = equiv_set(r1, r2).unwrap();
    let sl = equiv_snapshot_list(r1, r2).unwrap();
    let sm = equiv_snapshot_multiset(r1, r2).unwrap();
    let ss = equiv_snapshot_set(r1, r2).unwrap();
    // Horizontal implications.
    prop_assert!(!l || m, "≡L must imply ≡M");
    prop_assert!(!m || s, "≡M must imply ≡S");
    prop_assert!(!sl || sm, "≡SL must imply ≡SM");
    prop_assert!(!sm || ss, "≡SM must imply ≡SS");
    // Vertical implications (temporal relations).
    if r1.is_temporal() && r2.is_temporal() {
        prop_assert!(!l || sl, "≡L must imply ≡SL");
        prop_assert!(!m || sm, "≡M must imply ≡SM");
        prop_assert!(!s || ss, "≡S must imply ≡SS");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lattice_holds_for_random_pairs(
        r1 in arb_temporal(3, 10),
        r2 in arb_temporal(3, 10),
    ) {
        assert_lattice(&r1, &r2)?;
    }

    #[test]
    fn lattice_holds_for_derived_pairs(r in arb_temporal(3, 12)) {
        // Pairs related by operations that preserve specific levels.
        let sorted = ops::sort(&r, &Order::asc(&["T1"])).unwrap();
        assert_lattice(&r, &sorted)?;
        let deduped = ops::rdup_t(&r).unwrap();
        assert_lattice(&r, &deduped)?;
        let coalesced = ops::coalesce(&r).unwrap();
        assert_lattice(&r, &coalesced)?;
        assert_lattice(&r, &r)?;
    }

    #[test]
    fn sorting_yields_multiset_equivalence(r in arb_temporal(3, 12)) {
        let sorted = ops::sort(&r, &Order::asc(&["E", "T1"])).unwrap();
        prop_assert!(equiv_multiset(&r, &sorted).unwrap());
        prop_assert!(equiv_snapshot_multiset(&r, &sorted).unwrap());
    }

    #[test]
    fn coalescing_yields_snapshot_multiset_equivalence(r in arb_temporal(3, 12)) {
        let coalesced = ops::coalesce(&r).unwrap();
        prop_assert!(equiv_snapshot_multiset(&r, &coalesced).unwrap());
    }

    #[test]
    fn rdup_t_yields_snapshot_set_equivalence(r in arb_temporal(3, 12)) {
        // Rule D4's semantic content.
        let deduped = ops::rdup_t(&r).unwrap();
        prop_assert!(equiv_snapshot_set(&r, &deduped).unwrap());
    }

    #[test]
    fn strongest_equivalence_is_consistent(
        r1 in arb_temporal(3, 8),
        r2 in arb_temporal(3, 8),
    ) {
        // If `strongest_equivalence` names a type, that type holds; all
        // types implied by it hold as well.
        if let Some(t) = strongest_equivalence(&r1, &r2).unwrap() {
            prop_assert!(t.holds(&r1, &r2).unwrap());
            for u in tqo_core::equivalence::EquivalenceType::ALL {
                if t.implies(u) && (!u.is_snapshot() || (r1.is_temporal() && r2.is_temporal()))
                {
                    prop_assert!(u.holds(&r1, &r2).unwrap(), "{} should imply {}", t, u);
                }
            }
        }
    }
}

/// §3's worked example: each arrow of the lattice is strict (there are
/// pairs separating every adjacent pair of types).
#[test]
fn lattice_arrows_are_strict() {
    let schema = Schema::temporal(&[("E", DataType::Str)]);
    let mk = |rows: &[(&str, i64, i64)]| {
        Relation::new(
            schema.clone(),
            rows.iter().map(|(v, s, e)| tuple![*v, *s, *e]).collect(),
        )
        .unwrap()
    };

    // ≡M but not ≡L: same multiset, different order.
    let a = mk(&[("x", 1, 3), ("y", 1, 3)]);
    let b = mk(&[("y", 1, 3), ("x", 1, 3)]);
    assert!(equiv_multiset(&a, &b).unwrap() && !equiv_list(&a, &b).unwrap());

    // ≡S but not ≡M: different duplicate counts.
    let c = mk(&[("x", 1, 3), ("x", 1, 3)]);
    let d = mk(&[("x", 1, 3)]);
    assert!(equiv_set(&c, &d).unwrap() && !equiv_multiset(&c, &d).unwrap());

    // ≡SL but not ≡L (and not even ≡S): different period fragmentation,
    // same snapshots in the same per-instant order.
    let e = mk(&[("x", 1, 5)]);
    let f = mk(&[("x", 1, 3), ("x", 3, 5)]);
    assert!(equiv_snapshot_list(&e, &f).unwrap());
    assert!(!equiv_list(&e, &f).unwrap());
    assert!(!equiv_set(&e, &f).unwrap());

    // ≡SM but not ≡SL: snapshots equal as multisets, differently ordered.
    let g = mk(&[("x", 1, 3), ("y", 1, 3)]);
    let h = mk(&[("y", 1, 3), ("x", 1, 3)]);
    assert!(equiv_snapshot_multiset(&g, &h).unwrap());
    // (g/h are also ≡M; the SL distinction needs the *snapshot order*.)
    assert!(!equiv_snapshot_list(&g, &h).unwrap());

    // ≡SS but not ≡SM: snapshot duplicate counts differ.
    let i = mk(&[("x", 1, 5), ("x", 2, 4)]);
    let j = mk(&[("x", 1, 5)]);
    assert!(equiv_snapshot_set(&i, &j).unwrap());
    assert!(!equiv_snapshot_multiset(&i, &j).unwrap());
}

/// The implication relation itself is a partial order (reflexive,
/// antisymmetric on the six types, transitive).
#[test]
fn implies_is_a_partial_order() {
    use tqo_core::equivalence::EquivalenceType;
    for a in EquivalenceType::ALL {
        assert!(a.implies(a));
        for b in EquivalenceType::ALL {
            if a != b && a.implies(b) {
                assert!(!b.implies(a), "{a} and {b} must not imply each other");
            }
            for c in EquivalenceType::ALL {
                if a.implies(b) && b.implies(c) {
                    assert!(a.implies(c), "transitivity {a} ⇒ {b} ⇒ {c}");
                }
            }
        }
    }
}
