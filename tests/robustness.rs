//! Resource-governance and fault-tolerance invariants
//! (`docs/robustness.md`, ARCHITECTURE invariant 14):
//!
//! * **Governance never changes results, only whether they arrive** — a
//!   query under a cancellation token, deadline, or memory budget either
//!   returns the byte-identical clean result or a typed error
//!   (`Cancelled`, `DeadlineExceeded`, `MemoryBudget`), never a panic and
//!   never a third outcome.
//! * Cancellation at **every checkpoint class** (row-loop strides, batch
//!   `next_batch`, morsel dispatch, adaptive checkpoints, memo task pops,
//!   stratum fragment dispatch) leaves the engine, catalog, and worker
//!   pool reusable: the next query on the same objects succeeds
//!   byte-identically to a fresh run.
//! * **Fault-injected wire runs are byte-identical to clean runs** once
//!   retries succeed, across seeds; a declared DBMS outage degrades to
//!   local fragment execution with the same bytes.
//! * Memo search under a task/time budget truncates gracefully
//!   (`truncated` set, best-effort plan returned), while cancellation is
//!   a hard typed error.

mod common;

use std::time::Duration;

use tqo_core::context::{self, QueryContext};
use tqo_core::error::Error;
use tqo_exec::{execute_adaptive, execute_logical, ExecMode, PlannerConfig};
use tqo_storage::paper;
use tqo_stratum::{FaultConfig, RetryPolicy, Stratum};

const MODES: [ExecMode; 4] = [
    ExecMode::Row,
    ExecMode::Batch,
    ExecMode::Parallel { threads: 1 },
    ExecMode::Parallel { threads: 4 },
];

/// Queries covering every checkpoint class: scans, quadratic row loops
/// (the join), blocking operators (sort/distinct/aggregate), temporal
/// set operations, and multi-fragment stratum plans.
const QUERIES: &[&str] = &[
    "SELECT EmpName FROM EMPLOYEE",
    "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName",
    "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
];

fn config(mode: ExecMode) -> PlannerConfig {
    PlannerConfig {
        allow_fast: true,
        mode,
        ..Default::default()
    }
}

/// Is this error one of the typed governance outcomes?
fn is_governance_error(e: &Error) -> bool {
    matches!(
        e,
        Error::Cancelled | Error::DeadlineExceeded { .. } | Error::MemoryBudget { .. }
    )
}

/// Poll budgets for the cancellation sweeps; the `FAULTS=1` CI leg
/// densifies the sweep so consecutive checkpoints are hit, not sampled.
fn poll_sweep() -> Vec<u64> {
    if common::faults_widened() {
        (1..=64).chain([96, 128, 257, 1025, 4097]).collect()
    } else {
        vec![1, 2, 3, 5, 9, 17, 65, 257, 4097]
    }
}

/// Fault seeds for the wire byte-identity sweeps; widened under
/// `FAULTS=1`.
fn fault_seeds() -> Vec<u64> {
    if common::faults_widened() {
        (0..24).chain([42, 0xDEAD, 0xBEEF, u64::MAX]).collect()
    } else {
        vec![1, 7, 42, 0xDEAD]
    }
}

/// Cancellation swept across poll counts on every engine: each run either
/// completes byte-identically to the clean run or fails with
/// `Error::Cancelled`; small poll budgets must actually cancel, and the
/// environment stays reusable afterwards (same env, clean re-run, same
/// bytes).
#[test]
fn cancellation_sweep_is_binary_and_leaves_engines_reusable() {
    let catalog = paper::catalog();
    let env = catalog.env();
    for sql in QUERIES {
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        for mode in MODES {
            let (clean, _) = execute_logical(&plan, &env, config(mode)).unwrap();
            let mut cancelled_at_least_once = false;
            for polls in poll_sweep() {
                let ctx = QueryContext::new().with_cancel_after(polls);
                let result = {
                    let _guard = context::install(&ctx);
                    execute_logical(&plan, &env, config(mode))
                };
                match result {
                    Ok((got, _)) => assert_eq!(
                        got, clean,
                        "cancellation perturbed a completed run ({mode:?}, polls={polls}) on {sql}"
                    ),
                    Err(Error::Cancelled) => cancelled_at_least_once = true,
                    Err(other) => {
                        panic!("non-typed failure ({mode:?}, polls={polls}) on {sql}: {other:?}")
                    }
                }
            }
            assert!(
                cancelled_at_least_once,
                "no poll budget cancelled ({mode:?}) on {sql} — checkpoints missing"
            );
            // Reusability: the same env answers the same query again,
            // byte-identically, with no context installed.
            let (after, _) = execute_logical(&plan, &env, config(mode)).unwrap();
            assert_eq!(
                after, clean,
                "engine not reusable after cancel ({mode:?}) on {sql}"
            );
        }
    }
}

/// An already-expired deadline fails every engine (threads 1 and 4
/// included) with `DeadlineExceeded` carrying the configured limit — and
/// the engines answer the next query untouched.
#[test]
fn expired_deadline_fires_on_every_engine() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p \
               WHERE e.EmpName = p.EmpName";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    for mode in MODES {
        let (clean, _) = execute_logical(&plan, &env, config(mode)).unwrap();
        let ctx = QueryContext::new().with_timeout(Duration::ZERO);
        let err = {
            let _guard = context::install(&ctx);
            execute_logical(&plan, &env, config(mode)).unwrap_err()
        };
        assert_eq!(
            err,
            Error::DeadlineExceeded { limit_ms: 0 },
            "wrong deadline error ({mode:?})"
        );
        let (after, _) = execute_logical(&plan, &env, config(mode)).unwrap();
        assert_eq!(
            after, clean,
            "engine not reusable after deadline ({mode:?})"
        );
    }
}

/// Adaptive staged execution is governed at its checkpoints too: an
/// expired deadline fails it typed, cancellation sweeps stay binary, and
/// the loop stays reusable.
#[test]
fn adaptive_checkpoints_are_governed() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    let acfg = PlannerConfig {
        adaptive: Some(common::adaptive_pressure_config()),
        ..config(ExecMode::Batch)
    };
    let (clean, _) = execute_adaptive(&plan, &env, None, acfg).unwrap();

    let ctx = QueryContext::new().with_timeout(Duration::ZERO);
    let err = {
        let _guard = context::install(&ctx);
        execute_adaptive(&plan, &env, None, acfg).unwrap_err()
    };
    assert_eq!(err, Error::DeadlineExceeded { limit_ms: 0 });

    let mut cancelled = false;
    for polls in [1u64, 4, 16, 64, 512] {
        let ctx = QueryContext::new().with_cancel_after(polls);
        let result = {
            let _guard = context::install(&ctx);
            execute_adaptive(&plan, &env, None, acfg)
        };
        match result {
            Ok((got, _)) => assert_eq!(got, clean, "cancel perturbed adaptive (polls={polls})"),
            Err(Error::Cancelled) => cancelled = true,
            Err(other) => panic!("non-typed adaptive failure (polls={polls}): {other:?}"),
        }
    }
    assert!(cancelled, "adaptive loop never observed the token");
    let (after, _) = execute_adaptive(&plan, &env, None, acfg).unwrap();
    assert_eq!(after, clean, "adaptive loop not reusable");
}

/// A starved memory budget denies with the typed `MemoryBudget` error —
/// requested/used/limit populated — and leaves no partial state: the
/// catalog's tables are unchanged and the next unbudgeted query returns
/// clean bytes. A generous budget changes nothing.
#[test]
fn memory_budget_denies_gracefully_and_leaves_no_partial_state() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    let before_emp = catalog.get("EMPLOYEE").unwrap().relation().clone();
    for mode in MODES {
        let (clean, _) = execute_logical(&plan, &env, config(mode)).unwrap();

        let starved = QueryContext::new().with_memory_limit(1);
        let err = {
            let _guard = context::install(&starved);
            execute_logical(&plan, &env, config(mode)).unwrap_err()
        };
        match err {
            Error::MemoryBudget {
                requested,
                used,
                limit,
            } => {
                assert_eq!(limit, 1);
                assert!(requested > 0);
                assert!(used <= limit);
            }
            other => panic!("expected MemoryBudget ({mode:?}), got {other:?}"),
        }
        assert!(starved.budget().denials() >= 1);

        // A budget that fits the query must not perturb it.
        let roomy = QueryContext::new().with_memory_limit(64 << 20);
        let (got, _) = {
            let _guard = context::install(&roomy);
            execute_logical(&plan, &env, config(mode)).unwrap()
        };
        assert_eq!(got, clean, "budget accounting perturbed results ({mode:?})");
        assert!(roomy.budget().peak() > 0, "nothing was charged ({mode:?})");

        // No partial mutations anywhere the next query can observe.
        let (after, _) = execute_logical(&plan, &env, config(mode)).unwrap();
        assert_eq!(after, clean);
    }
    assert_eq!(
        catalog.get("EMPLOYEE").unwrap().relation(),
        &before_emp,
        "budget denial mutated the catalog"
    );
}

/// Memo search under a task or time budget stops gracefully: best-effort
/// plan, `truncated` flag set, no error. Cancellation during memo search
/// is the hard typed error instead.
#[test]
fn memo_budgets_truncate_gracefully_but_cancellation_is_hard() {
    use tqo_core::cost::CostModel;
    use tqo_core::memo::{memo_search, MemoConfig};
    use tqo_core::rules::RuleSet;

    let catalog = paper::catalog();
    let plan = tqo_sql::compile(
        "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
         EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
         COALESCE ORDER BY EmpName",
        &catalog,
    )
    .unwrap();
    let rules = RuleSet::standard();
    let model = CostModel::default();

    let full = memo_search(&plan, &rules, &model, MemoConfig::default()).unwrap();
    assert!(!full.stats.truncated, "default budgets should converge");

    // Task budget: stops after one task, still returns a plan no worse
    // than the input.
    let starved = memo_search(
        &plan,
        &rules,
        &model,
        MemoConfig {
            max_tasks: 1,
            ..MemoConfig::default()
        },
    )
    .unwrap();
    assert!(starved.stats.truncated, "task budget did not truncate");
    assert!(starved.stats.tasks <= 1);
    assert!(starved.cost <= model.cost(&plan).unwrap());

    // Time budget of zero: immediate graceful truncation.
    let timed = memo_search(
        &plan,
        &rules,
        &model,
        MemoConfig {
            time_budget_ms: Some(0),
            ..MemoConfig::default()
        },
    )
    .unwrap();
    assert!(timed.stats.truncated, "time budget did not truncate");

    // Cancellation mid-search is not best-effort: it is the typed error.
    let ctx = QueryContext::new().with_cancel_after(1);
    let err = {
        let _guard = context::install(&ctx);
        memo_search(&plan, &rules, &model, MemoConfig::default()).unwrap_err()
    };
    assert_eq!(err, Error::Cancelled);
}

/// The full SQL pool through a fault-injected wire, across seeds: with
/// enough retry budget every query eventually succeeds, and its bytes are
/// identical to the fault-free stratum's. Faults and retries are recorded
/// in the metrics.
#[test]
fn fault_injected_runs_are_byte_identical_to_clean_runs() {
    let clean = Stratum::new(paper::catalog());
    let mut total_faults = 0usize;
    for seed in fault_seeds() {
        let faulty = Stratum::new(paper::catalog())
            .with_faults(FaultConfig::with_seed(seed))
            .with_retry(RetryPolicy {
                max_retries: 40,
                base_backoff: Duration::ZERO,
                fragment_timeout: None,
                fallback_local: false,
            });
        for sql in QUERIES {
            let (want, wm) = clean.run_sql(sql).unwrap();
            let (got, gm) = faulty
                .run_sql(sql)
                .unwrap_or_else(|e| panic!("seed {seed} exhausted retries on {sql}: {e:?}"));
            assert_eq!(got, want, "faulty wire diverged (seed {seed}) on {sql}");
            assert_eq!(gm.fragments, wm.fragments);
            assert_eq!(gm.transferred_rows, wm.transferred_rows);
            assert_eq!(gm.transfer_bytes, wm.transfer_bytes);
            assert_eq!(gm.retries >= 1, gm.faults_injected >= 1);
            total_faults += gm.faults_injected;
        }
    }
    assert!(
        total_faults > 0,
        "fault rates of 30%/20% injected nothing across all seeds — injector dead"
    );
}

/// The same seed replays the same faults: run-to-run metrics (retries,
/// injected faults) and results are identical.
#[test]
fn fault_injection_is_deterministic_per_seed() {
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let run = || {
        let s = Stratum::new(paper::catalog())
            .with_faults(FaultConfig::with_seed(99))
            .with_retry(RetryPolicy {
                max_retries: 40,
                base_backoff: Duration::ZERO,
                fragment_timeout: None,
                fallback_local: false,
            });
        let (r, m) = s.run_sql(sql).unwrap();
        (r, m.retries, m.faults_injected)
    };
    let (r1, retries1, faults1) = run();
    let (r2, retries2, faults2) = run();
    assert_eq!(r1, r2);
    assert_eq!(retries1, retries2, "retry count not deterministic");
    assert_eq!(faults1, faults2, "fault count not deterministic");
}

/// A declared DBMS outage degrades gracefully: every pooled query is
/// answered by local fragment execution, byte-identical to the healthy
/// stratum, with the fallback recorded. With fallback disabled the typed
/// `DbmsUnavailable` error surfaces instead — and the same stratum
/// recovers when the DBMS comes back.
#[test]
fn dbms_outage_degrades_to_local_execution() {
    let healthy = Stratum::new(paper::catalog());
    let down = Stratum::new(paper::catalog())
        .with_faults(FaultConfig::down())
        .with_retry(RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            fragment_timeout: None,
            fallback_local: true,
        });
    for sql in QUERIES {
        let (want, wm) = healthy.run_sql(sql).unwrap();
        let (got, gm) = down.run_sql(sql).unwrap();
        assert_eq!(got, want, "local fallback diverged on {sql}");
        assert_eq!(gm.fallbacks, gm.fragments, "every fragment fell back");
        assert_eq!(gm.fragments, wm.fragments);
        assert_eq!(
            gm.transfer_bytes, wm.transfer_bytes,
            "fallback skipped the wire"
        );
    }

    // Fallback disabled: the typed error, carrying the attempt count.
    let strict = Stratum::new(paper::catalog())
        .with_faults(FaultConfig::down())
        .with_retry(RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            fragment_timeout: None,
            fallback_local: false,
        });
    match strict.run_sql(QUERIES[0]).unwrap_err() {
        Error::DbmsUnavailable { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected DbmsUnavailable, got {other:?}"),
    }
}

/// Governance through the layered engine: cancellation and deadlines on a
/// `Stratum` surface typed errors and leave the same stratum (and its
/// catalog) answering byte-identically afterwards.
#[test]
fn stratum_cancellation_leaves_catalog_and_engine_reusable() {
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    for mode in MODES {
        let stratum = Stratum::new(paper::catalog()).with_exec_mode(mode);
        let (clean, _) = stratum.run_sql(sql).unwrap();

        let ctx = QueryContext::new().with_cancel_after(1);
        let err = {
            let _guard = context::install(&ctx);
            stratum.run_sql(sql).unwrap_err()
        };
        assert_eq!(err, Error::Cancelled, "({mode:?})");

        let ctx = QueryContext::new().with_timeout(Duration::ZERO);
        let err = {
            let _guard = context::install(&ctx);
            stratum.run_sql(sql).unwrap_err()
        };
        assert_eq!(err, Error::DeadlineExceeded { limit_ms: 0 }, "({mode:?})");

        let fresh = Stratum::new(paper::catalog()).with_exec_mode(mode);
        let (again, _) = stratum.run_sql(sql).unwrap();
        let (fresh_result, _) = fresh.run_sql(sql).unwrap();
        assert_eq!(
            again, clean,
            "stratum not reusable after governance ({mode:?})"
        );
        assert_eq!(
            again, fresh_result,
            "reused stratum diverges from fresh ({mode:?})"
        );
    }
}

/// Wire decode is budget-accounted: a stratum query under a starved
/// budget denies at (or before) the wire with the typed error, and the
/// governance counters move.
#[test]
fn stratum_wire_decode_respects_memory_budget() {
    let stratum = Stratum::new(paper::catalog());
    let sql = "VALIDTIME SELECT EmpName FROM EMPLOYEE";
    let ctx = QueryContext::new().with_memory_limit(1);
    let err = {
        let _guard = context::install(&ctx);
        stratum.run_sql(sql).unwrap_err()
    };
    assert!(
        matches!(err, Error::MemoryBudget { .. }),
        "expected MemoryBudget, got {err:?}"
    );
    let (after, _) = stratum.run_sql(sql).unwrap();
    assert!(
        !after.is_empty(),
        "stratum not reusable after budget denial"
    );
}

/// Every governance outcome is typed — sweep all three governors across
/// all engines on one query and assert no other error shape ever
/// surfaces.
#[test]
fn governance_outcomes_are_always_typed() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let plan = tqo_sql::compile(QUERIES[3], &catalog).unwrap();
    let contexts: Vec<QueryContext> = vec![
        QueryContext::new().with_cancel_after(2),
        QueryContext::new().with_timeout(Duration::ZERO),
        QueryContext::new().with_memory_limit(16),
        QueryContext::new()
            .with_cancel_after(5)
            .with_timeout(Duration::from_secs(3600))
            .with_memory_limit(1 << 30),
    ];
    for mode in MODES {
        for ctx in &contexts {
            let result = {
                let _guard = context::install(ctx);
                execute_logical(&plan, &env, config(mode))
            };
            if let Err(e) = result {
                assert!(
                    is_governance_error(&e),
                    "untyped governance failure ({mode:?}): {e:?}"
                );
            }
        }
    }
}

/// Serving leg (ARCHITECTURE invariant 16): governance trips (deadline,
/// memory budget, deterministic cancellation) and seeded wire faults
/// through the TCP front-end, under 4-client concurrent load, only ever
/// produce the byte-identical clean answer or a typed error — and the
/// serving pool stays fully reusable afterwards. Swept across fault
/// seeds; `FAULTS=1` widens the sweep.
#[test]
fn serving_governance_and_faults_stay_typed_under_load() {
    use std::sync::Arc;
    use tqo_exec::SchedulerConfig;
    use tqo_serve::{serve, Client, QueryOpts, ServerConfig};

    // Serial oracle through the exact pipeline the server runs.
    let catalog = paper::catalog();
    let env = catalog.env();
    let oracle: Arc<Vec<_>> = Arc::new(
        QUERIES
            .iter()
            .map(|sql| {
                let plan = tqo_sql::compile(sql, &catalog).unwrap();
                execute_logical(&plan, &env, PlannerConfig::default())
                    .unwrap()
                    .0
            })
            .collect(),
    );

    // Per-request governance variants: clean, starved budget, instant
    // cancel, and an expired deadline.
    fn variants() -> [QueryOpts; 4] {
        [
            QueryOpts::default(),
            QueryOpts {
                memory_limit: 1,
                ..QueryOpts::default()
            },
            QueryOpts {
                cancel_polls: 1,
                ..QueryOpts::default()
            },
            QueryOpts {
                timeout_ms: 1,
                ..QueryOpts::default()
            },
        ]
    }

    for seed in fault_seeds() {
        let server = serve(
            paper::catalog(),
            ServerConfig {
                scheduler: SchedulerConfig {
                    workers: 2,
                    max_queries: 64,
                },
                faults: Some(FaultConfig::with_seed(seed)),
                ..ServerConfig::default()
            },
        )
        .expect("start serving front-end");
        let addr = server.addr();

        let threads: Vec<_> = (0..4)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (i, sql) in QUERIES.iter().enumerate() {
                        for (v, opts) in variants().into_iter().enumerate() {
                            match client.query_with(sql, opts) {
                                // Governance and faults gate *whether* the
                                // answer arrives, never *what* it is.
                                Ok(rel) => assert_eq!(
                                    rel, oracle[i],
                                    "seed {seed} thread {t} variant {v}: {sql} \
                                     diverged under serving governance"
                                ),
                                Err(e) => assert!(
                                    is_governance_error(&e)
                                        || matches!(
                                            &e,
                                            Error::Storage { .. } | Error::AdmissionRejected { .. }
                                        ),
                                    "seed {seed} thread {t} variant {v}: \
                                     untyped serving failure on {sql}: {e:?}"
                                ),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().expect("serving client thread");
        }

        // Reusable: a fresh connection retries each query through the
        // still-active injector until a clean, byte-identical answer.
        let mut client = Client::connect(addr).expect("reconnect");
        for (i, sql) in QUERIES.iter().enumerate() {
            let mut attempts = 0;
            let rel = loop {
                attempts += 1;
                assert!(
                    attempts <= 200,
                    "seed {seed}: {sql} exhausted retries after governance trips"
                );
                match client.query(sql) {
                    Ok(rel) => break rel,
                    Err(Error::Storage { .. }) | Err(Error::AdmissionRejected { .. }) => continue,
                    Err(e) => panic!("seed {seed}: unexpected post-load error {e:?}"),
                }
            };
            assert_eq!(
                rel, oracle[i],
                "seed {seed}: serving pool not reusable after governance trips"
            );
        }
    }
}
