//! Conformance suite driver: walks the committed `.slt` corpus under
//! `tests/slt/` and the planner snapshots under `tests/snapshots/`.
//!
//! Bless flows (see `docs/sql.md`):
//!
//! * `UPDATE_SLT=1 cargo test --test conformance` rewrites every
//!   expected result block (and `?` type strings) from the reference
//!   interpreter.
//! * `UPDATE_SNAPSHOTS=1 cargo test --test conformance` rewrites the
//!   planner snapshots.

use std::path::PathBuf;

use tqo_conformance::{check_snapshots, run_slt_file};

fn repo_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(sub)
}

fn flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

/// The corpus floor: the suite must keep at least this many pinned
/// queries (a shrinking corpus is a silent loss of coverage).
const CORPUS_FLOOR: usize = 150;

#[test]
fn slt_corpus() {
    let bless = flag("UPDATE_SLT");
    let mut files: Vec<PathBuf> = std::fs::read_dir(repo_dir("tests/slt"))
        .expect("tests/slt exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "slt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .slt files found");

    let mut failures = Vec::new();
    let (mut queries, mut statements, mut errors, mut skipped) = (0, 0, 0, 0);
    for path in &files {
        match run_slt_file(path, bless) {
            Err(e) => failures.push(e),
            Ok(outcome) => {
                queries += outcome.queries;
                statements += outcome.statements;
                errors += outcome.errors;
                skipped += outcome.stratum_skipped;
                failures.extend(outcome.failures);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
    println!(
        "conformance: {queries} queries + {statements} statements + {errors} error cases \
         across {} files ({skipped} stratum legs skipped)",
        files.len()
    );
    assert!(
        queries + errors >= CORPUS_FLOOR,
        "corpus has {queries} queries + {errors} error cases; the floor is {CORPUS_FLOOR}"
    );
}

#[test]
fn planner_snapshots() {
    let bless = flag("UPDATE_SNAPSHOTS");
    let failures = check_snapshots(&repo_dir("tests/snapshots"), bless).expect("snapshot dir");
    assert!(
        failures.is_empty(),
        "{} snapshot failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
