//! Observability invariants (`docs/observability.md`):
//!
//! * **Tracing never changes results** — running any query with a
//!   [`Collector`] installed produces a relation *byte-identical* to the
//!   untraced run, on the row, batch, and morsel-parallel engines (1 and
//!   4 threads) and under adaptive re-optimization, across the paper
//!   catalog SQL pool and the optimizer fixture-plan pool (the CI matrix
//!   leg `TRACE=1` widens both pools to their full size).
//! * Per-operator **exclusive times sum to at most the measured wall
//!   time** on every engine, and serial engines report
//!   `cpu_time == elapsed` per operator.
//! * `EXPLAIN ANALYZE` renders the same column set on every engine and
//!   through the stratum.
//! * The Chrome trace export is well-formed JSON even when labels carry
//!   quotes, and a saturated ring degrades by dropping oldest events —
//!   never by failing the query.
//! * Process-wide counters only ever move forward.

mod common;

use std::time::Instant;

use tqo_core::trace::{self, counters, Collector};
use tqo_exec::{execute_adaptive, execute_logical, explain_analyze, ExecMode, PlannerConfig};
use tqo_storage::{paper, GenConfig, WorkloadGenerator};
use tqo_stratum::Stratum;

const MODES: [ExecMode; 4] = [
    ExecMode::Row,
    ExecMode::Batch,
    ExecMode::Parallel { threads: 1 },
    ExecMode::Parallel { threads: 4 },
];

const QUERIES: &[&str] = &[
    "SELECT EmpName FROM EMPLOYEE",
    "SELECT DISTINCT EmpName FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept DESC",
    "SELECT Dept, COUNT(*) AS n, MIN(T1) AS lo FROM EMPLOYEE GROUP BY Dept",
    "SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE T1 >= 2 AND Dept = 'Sales'",
    "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION ALL \
     VALIDTIME SELECT EmpName FROM PROJECT",
    "SELECT EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT",
];

/// The sampled query pool, or the full pool under `TRACE=1`.
fn query_pool() -> &'static [&'static str] {
    if common::trace_widened() {
        QUERIES
    } else {
        &QUERIES[..5]
    }
}

fn config(mode: ExecMode) -> PlannerConfig {
    PlannerConfig {
        allow_fast: true,
        mode,
        ..Default::default()
    }
}

/// Traced and untraced executions of the same plan must return
/// byte-identical relations on every engine and under adaptive
/// re-planning; the trace must actually record events.
fn assert_traced_identical(
    plan: &tqo_core::plan::LogicalPlan,
    env: &tqo_core::interp::Env,
    context: &str,
) {
    for mode in MODES {
        let (untraced, _) = execute_logical(plan, env, config(mode)).unwrap();
        let collector = Collector::new();
        let (traced, _) = {
            let _guard = trace::install(&collector);
            execute_logical(plan, env, config(mode)).unwrap()
        };
        assert_eq!(
            traced, untraced,
            "tracing perturbed the result ({mode:?}) on {context}"
        );
        let profile = collector.finish();
        assert!(
            !profile.events.is_empty(),
            "no events recorded ({mode:?}) on {context}"
        );
    }

    // Adaptive leg at maximum re-planning pressure: every checkpoint
    // decision replays identically under tracing.
    let acfg = common::adaptive_pressure_config();
    let adaptive = PlannerConfig {
        adaptive: Some(acfg),
        ..config(ExecMode::Batch)
    };
    let (untraced, _) = execute_adaptive(plan, env, None, adaptive).unwrap();
    let collector = Collector::new();
    let (traced, _) = {
        let _guard = trace::install(&collector);
        execute_adaptive(plan, env, None, adaptive).unwrap()
    };
    assert_eq!(
        traced, untraced,
        "tracing perturbed the adaptive result on {context}"
    );
}

#[test]
fn tracing_never_changes_results_on_the_sql_pool() {
    let catalog = paper::catalog();
    let env = catalog.env();
    for sql in query_pool() {
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        assert_traced_identical(&plan, &env, sql);
    }
}

#[test]
fn tracing_never_changes_results_on_fixture_plans() {
    let mut generator = WorkloadGenerator::new(7);
    let mut env = tqo_core::interp::Env::new();
    for name in ["EMP", "PRJ", "A", "B"] {
        env.insert(
            name,
            generator
                .temporal(&GenConfig {
                    classes: 6,
                    fragments_per_class: 4,
                    overlap_prob: 0.3,
                    duplicate_prob: 0.2,
                    ..GenConfig::default()
                })
                .unwrap(),
        );
    }
    env.insert("R", generator.temporal(&GenConfig::clean(8, 4)).unwrap());
    env.insert("S1", generator.conventional(40, 6).unwrap());
    env.insert("S2", generator.conventional(30, 6).unwrap());

    let fixtures = common::optimizer_fixtures(30);
    let pool: Vec<_> = if common::trace_widened() {
        fixtures.into_iter().enumerate().collect()
    } else {
        fixtures.into_iter().enumerate().step_by(4).collect()
    };
    for (i, plan) in pool {
        assert_traced_identical(&plan, &env, &format!("fixture #{i}"));
    }
}

/// Exclusive operator times can never sum past the measured end-to-end
/// wall time, and serial engines report `cpu_time == elapsed` (the
/// `check_time_invariants` contract) — on every engine.
#[test]
fn operator_times_are_exclusive_and_bounded_by_wall() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    for mode in MODES {
        let started = Instant::now();
        let (_, metrics) = execute_logical(&plan, &env, config(mode)).unwrap();
        let wall = started.elapsed();
        let serial = matches!(mode, ExecMode::Row | ExecMode::Batch);
        tqo_exec::analyze::check_time_invariants(&metrics, wall, serial);
    }
    // Adaptive staged execution keeps the same accounting.
    let started = Instant::now();
    let (_, metrics) = execute_adaptive(
        &plan,
        &env,
        None,
        PlannerConfig {
            adaptive: Some(common::adaptive_pressure_config()),
            ..config(ExecMode::Batch)
        },
    )
    .unwrap();
    tqo_exec::analyze::check_time_invariants(&metrics, started.elapsed(), true);
}

/// The analyze report shows one annotated line per operator with the full
/// column set, uniformly across engines, adaptive runs, and the stratum.
#[test]
fn explain_analyze_is_uniform_across_engines_and_stratum() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let sql = "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName";
    let plan = tqo_sql::compile(sql, &catalog).unwrap();
    let columns = [
        "est rows", "act rows", "q-err", "time", "cpu", "thr", "rows/s",
    ];

    for mode in MODES {
        let a = explain_analyze(&plan, &env, config(mode)).unwrap();
        for col in columns {
            assert!(
                a.report.contains(col),
                "{mode:?} missing {col}:\n{}",
                a.report
            );
        }
        assert_eq!(
            a.report.lines().count(),
            // Header (2 lines) + one line per operator + totals.
            a.metrics.operators.len() + 3,
            "one line per operator ({mode:?}):\n{}",
            a.report
        );
    }

    // Adaptive: flat execution-order view, same columns.
    let a = explain_analyze(
        &plan,
        &env,
        PlannerConfig {
            adaptive: Some(common::adaptive_pressure_config()),
            ..config(ExecMode::Batch)
        },
    )
    .unwrap();
    for col in columns {
        assert!(
            a.report.contains(col),
            "adaptive missing {col}:\n{}",
            a.report
        );
    }
    assert!(a.plan.is_none(), "adaptive runs have no single static plan");

    // Stratum: wire header plus the same analyze table.
    let stratum = Stratum::new(paper::catalog());
    let (result, metrics, report) = stratum.run_sql_analyzed(sql).unwrap();
    assert!(!result.is_empty());
    assert!(report.starts_with("stratum: "), "{report}");
    assert!(report.contains("EXPLAIN ANALYZE"), "{report}");
    for col in columns {
        assert!(report.contains(col), "stratum missing {col}:\n{report}");
    }
    assert!(metrics.fragments >= 1);
    // The analyzed run still returns the ordinary query result.
    let (plain, _, _) = stratum.run_sql_optimized(sql).unwrap();
    assert_eq!(result, plain, "analyze perturbed the stratum result");
}

/// A minimal JSON scanner: validates string escaping and bracket balance
/// — enough to catch an unescaped quote or dangling comma in the export.
fn assert_valid_json(s: &str) {
    let bytes = s.as_bytes();
    let mut stack = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => stack.push(bytes[i]),
            b'}' => assert_eq!(stack.pop(), Some(b'{'), "unbalanced }} at byte {i}"),
            b']' => assert_eq!(stack.pop(), Some(b'['), "unbalanced ] at byte {i}"),
            b'"' => {
                // Consume the string body, honoring escapes.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                assert!(i < bytes.len(), "unterminated string");
            }
            _ => {}
        }
        i += 1;
    }
    assert!(stack.is_empty(), "unbalanced brackets: {stack:?}");
}

#[test]
fn chrome_export_is_wellformed() {
    let catalog = paper::catalog();
    let stratum = Stratum::new(catalog.clone());
    let collector = Collector::new();
    {
        let _guard = trace::install(&collector);
        // ORDER BY carries a quoted Debug rendering into the bind span's
        // args — the export must escape it.
        stratum
            .run_sql_optimized("VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName")
            .unwrap();
    }
    let profile = collector.finish();
    assert!(profile.events.len() >= 5, "expected a real trace");
    let json = profile.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert_valid_json(&json);
}

#[test]
fn ring_overflow_drops_oldest_and_keeps_the_query_alive() {
    let catalog = paper::catalog();
    let env = catalog.env();
    let plan = tqo_sql::compile(
        "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
        &catalog,
    )
    .unwrap();
    let (untraced, _) = execute_logical(&plan, &env, config(ExecMode::Batch)).unwrap();

    let collector = Collector::with_capacity(4);
    let (traced, _) = {
        let _guard = trace::install(&collector);
        execute_logical(&plan, &env, config(ExecMode::Batch)).unwrap()
    };
    assert_eq!(
        traced, untraced,
        "a saturated ring must not perturb results"
    );
    let profile = collector.finish();
    assert_eq!(profile.events.len(), 4, "ring keeps exactly its capacity");
    assert!(profile.dropped > 0, "overflow must be counted");
    assert_valid_json(&profile.to_chrome_json());
}

/// Counters are process-wide and monotonic: a stratum query can only move
/// them forward, by at least the work it demonstrably did.
#[test]
fn counters_advance_monotonically() {
    let before = counters::snapshot();
    let stratum = Stratum::new(paper::catalog());
    let (result, metrics, _) = stratum
        .run_sql_optimized("VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName")
        .unwrap();
    assert!(!result.is_empty());
    let after = counters::snapshot();

    let delta = |name: &str| {
        let b = before.iter().find(|(n, _)| *n == name).unwrap().1;
        let a = after.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(a >= b, "counter {name} moved backwards");
        a - b
    };
    // Other tests run concurrently in this process, so deltas are lower
    // bounds (≥), never exact.
    assert!(delta("queries_executed") >= 1);
    assert!(delta("fragments_executed") >= metrics.fragments as u64);
    assert!(delta("wire_rows") >= metrics.transferred_rows as u64);
    assert!(delta("wire_bytes") >= metrics.transfer_bytes as u64);
    for (name, _) in &before {
        delta(name); // every counter is monotonic
    }

    let json = counters::to_json();
    assert_valid_json(&json);
    for (name, _) in &after {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "{name} missing from dump"
        );
    }
}
