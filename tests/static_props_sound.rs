//! Soundness of the bottom-up static property inference (the Table 1
//! columns): whatever `annotate` claims about a plan's output — guaranteed
//! order, duplicate-freedom, snapshot-duplicate-freedom, coalescedness —
//! must hold for the actually evaluated result. (Cardinality is an
//! estimate and deliberately not asserted.)
//!
//! Random plans are built from schema-preserving operations over random
//! temporal relations, so arbitrarily deep compositions are exercised.

mod common;

use common::arb_temporal;
use proptest::prelude::*;

use std::sync::Arc;
use tqo_core::equivalence::ResultType;
use tqo_core::expr::Expr;
use tqo_core::interp::{eval_plan, Env};
use tqo_core::plan::props::annotate;
use tqo_core::plan::{LogicalPlan, PlanNode};
use tqo_core::relation::Relation;
use tqo_core::sortspec::Order;
use tqo_storage::table::derive_props;

/// One random schema-preserving operator layer.
#[derive(Debug, Clone)]
enum Layer {
    Select(bool), // time-free or timed predicate
    Sort(u8),
    RdupT,
    Coalesce,
    DifferenceT, // against the secondary relation
    UnionT,
    UnionAll,
}

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        any::<bool>().prop_map(Layer::Select),
        (0u8..3).prop_map(Layer::Sort),
        Just(Layer::RdupT),
        Just(Layer::Coalesce),
        Just(Layer::DifferenceT),
        Just(Layer::UnionT),
        Just(Layer::UnionAll),
    ]
}

fn apply_layer(node: PlanNode, layer: &Layer, other: &Relation) -> PlanNode {
    let input = Arc::new(node);
    match layer {
        Layer::Select(time_free) => {
            let predicate = if *time_free {
                Expr::eq(Expr::col("E"), Expr::lit("v1"))
            } else {
                Expr::lt(Expr::col("T1"), Expr::lit(12i64))
            };
            PlanNode::Select { input, predicate }
        }
        Layer::Sort(k) => {
            let order = match k {
                0 => Order::asc(&["E"]),
                1 => Order::asc(&["T1"]),
                _ => Order::asc(&["E", "T1", "T2"]),
            };
            PlanNode::Sort { input, order }
        }
        Layer::RdupT => PlanNode::RdupT { input },
        Layer::Coalesce => PlanNode::Coalesce { input },
        Layer::DifferenceT => PlanNode::DifferenceT {
            left: input,
            right: Arc::new(PlanNode::Scan {
                name: "OTHER".into(),
                base: derive_props(other).unwrap(),
            }),
        },
        Layer::UnionT => PlanNode::UnionT {
            left: input,
            right: Arc::new(PlanNode::Scan {
                name: "OTHER".into(),
                base: derive_props(other).unwrap(),
            }),
        },
        Layer::UnionAll => PlanNode::UnionAll {
            left: input,
            right: Arc::new(PlanNode::Scan {
                name: "OTHER".into(),
                base: derive_props(other).unwrap(),
            }),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn inferred_properties_hold_on_evaluation(
        base in arb_temporal(3, 10),
        other in arb_temporal(3, 8),
        layers in prop::collection::vec(arb_layer(), 1..5),
    ) {
        let mut node = PlanNode::Scan {
            name: "BASE".into(),
            base: derive_props(&base).unwrap(),
        };
        for layer in &layers {
            node = apply_layer(node, layer, &other);
        }
        let plan = LogicalPlan::new(node, ResultType::Multiset);
        let env = Env::new()
            .with("BASE", base.clone())
            .with("OTHER", other.clone());

        let ann = annotate(&plan).unwrap();
        let claimed = &ann[&vec![]].stat;
        let result = eval_plan(&plan, &env).unwrap();

        // Schema claim is exact.
        prop_assert!(claimed.schema.union_compatible(result.schema()),
            "schema claim {} vs actual {}", claimed.schema, result.schema());

        // Order claim: the result must be sorted under the claimed order.
        prop_assert!(
            claimed.order.is_sorted(result.schema(), result.tuples()).unwrap(),
            "claimed order {} violated; layers {:?}\nresult:\n{}",
            claimed.order, layers, result
        );

        // Duplicate-freedom claim.
        if claimed.dup_free {
            prop_assert!(!result.has_duplicates(),
                "claimed dup-free violated; layers {:?}", layers);
        }

        // Snapshot-duplicate-freedom and coalescedness (temporal outputs).
        if result.is_temporal() {
            if claimed.snapshot_dup_free {
                prop_assert!(!result.has_snapshot_duplicates().unwrap(),
                    "claimed snapshot-dup-free violated; layers {:?}", layers);
            }
            if claimed.coalesced {
                prop_assert!(result.is_coalesced().unwrap(),
                    "claimed coalesced violated; layers {:?}", layers);
            }
        }
    }

    #[test]
    fn inferred_properties_hold_below_transfers(
        base in arb_temporal(3, 10),
        sorted in any::<bool>(),
    ) {
        // DBMS-side results: order is claimed only under a DBMS sort.
        let scan = PlanNode::Scan { name: "BASE".into(), base: derive_props(&base).unwrap() };
        let inner = if sorted {
            PlanNode::Sort { input: Arc::new(scan), order: Order::asc(&["E"]) }
        } else {
            PlanNode::Select {
                input: Arc::new(scan),
                predicate: Expr::eq(Expr::col("E"), Expr::col("E")),
            }
        };
        let plan = LogicalPlan::new(
            PlanNode::TransferS { input: Arc::new(inner) },
            ResultType::Multiset,
        );
        let ann = annotate(&plan).unwrap();
        let claimed = &ann[&vec![]].stat;
        if sorted {
            prop_assert_eq!(claimed.order.clone(), Order::asc(&["E"]));
        } else {
            prop_assert!(claimed.order.is_unordered());
        }
        let env = Env::new().with("BASE", base);
        let result = eval_plan(&plan, &env).unwrap();
        prop_assert!(claimed.order.is_sorted(result.schema(), result.tuples()).unwrap());
    }
}
