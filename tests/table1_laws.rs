//! Table 1 as executable laws: for every operation, the claimed result
//! order, cardinality bounds, duplicate behaviour, and coalescing behaviour
//! are property-tested on random inputs.

mod common;

use common::{arb_snapshot, arb_temporal};
use proptest::prelude::*;

use tqo_core::expr::{AggItem, Expr, ProjItem};
use tqo_core::ops;
use tqo_core::sortspec::Order;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ── σ: order = Order(r), card ≤ n(r), retains duplicates & coalescing.
    #[test]
    fn selection_laws(r in arb_temporal(4, 12)) {
        let p = Expr::eq(Expr::col("E"), Expr::lit("v0"));
        let out = ops::select(&r, &p).unwrap();
        prop_assert!(out.len() <= r.len());
        // Order retained: the output is a subsequence of the input.
        let mut it = r.tuples().iter();
        for t in out.tuples() {
            prop_assert!(it.any(|x| x == t), "output must be a subsequence");
        }
        // Retains duplicate-freedom and coalescedness.
        if !r.has_duplicates() {
            prop_assert!(!out.has_duplicates());
        }
        if r.is_coalesced().unwrap() {
            prop_assert!(out.is_coalesced().unwrap());
        }
        if !r.has_snapshot_duplicates().unwrap() {
            prop_assert!(!out.has_snapshot_duplicates().unwrap());
        }
    }

    // ── π: order = Prefix(Order(r), items), card = n(r), generates dups,
    //       destroys coalescing.
    #[test]
    fn projection_laws(r in arb_temporal(4, 12)) {
        let out = ops::project(
            &r,
            &[ProjItem::col("E"), ProjItem::col("T1"), ProjItem::col("T2")],
        )
        .unwrap();
        prop_assert_eq!(out.len(), r.len());
        // Sorted input stays sorted on projected prefix.
        let sorted = ops::sort(&r, &Order::asc(&["E"])).unwrap();
        let proj = ops::project(&sorted, &[ProjItem::col("E")]).unwrap();
        prop_assert!(Order::asc(&["E"]).is_sorted(proj.schema(), proj.tuples()).unwrap());
    }

    // ── ⊔: card = n1 + n2.
    #[test]
    fn union_all_laws(r1 in arb_temporal(3, 10), r2 in arb_temporal(3, 10)) {
        let out = ops::union_all(&r1, &r2).unwrap();
        prop_assert_eq!(out.len(), r1.len() + r2.len());
    }

    // ── ×: order = Order(r1) (left-major), card = n1·n2, retains dups.
    #[test]
    fn product_laws(r1 in arb_snapshot(6), r2 in arb_snapshot(6)) {
        let out = ops::product(&r1, &r2).unwrap();
        prop_assert_eq!(out.len(), r1.len() * r2.len());
        let d1 = ops::rdup(&r1).unwrap();
        let d2 = ops::rdup(&r2).unwrap();
        let clean = ops::product(&d1, &d2).unwrap();
        prop_assert!(!clean.has_duplicates(), "product of dup-free args is dup-free");
    }

    // ── \: n1 − n2 ≤ card ≤ n1, retains duplicates.
    #[test]
    fn difference_laws(r1 in arb_snapshot(12), r2 in arb_snapshot(12)) {
        let out = ops::difference(&r1, &r2).unwrap();
        prop_assert!(out.len() <= r1.len());
        prop_assert!(out.len() >= r1.len().saturating_sub(r2.len()));
        if !r1.has_duplicates() {
            prop_assert!(!out.has_duplicates());
        }
    }

    // ── ξ: card ≤ n(r), eliminates duplicates.
    #[test]
    fn aggregation_laws(r in arb_snapshot(12)) {
        prop_assume!(!r.is_empty());
        let out = ops::aggregate(&r, &["B".into()], &[AggItem::count_star("n")]).unwrap();
        prop_assert!(out.len() <= r.len());
        prop_assert!(!out.has_duplicates());
    }

    // ── rdup: card ≤ n(r), eliminates duplicates, retains order.
    #[test]
    fn rdup_laws(r in arb_snapshot(14)) {
        let out = ops::rdup(&r).unwrap();
        prop_assert!(out.len() <= r.len());
        prop_assert!(!out.has_duplicates());
        // Idempotent.
        let twice = ops::rdup(&out).unwrap();
        prop_assert_eq!(out.tuples(), twice.tuples());
    }

    // ── ×ᵀ: card ≤ n1·n2, retains dups (on dup-free args), destroys
    //        coalescing.
    #[test]
    fn product_t_laws(r1 in arb_temporal(3, 8), r2 in arb_temporal(3, 8)) {
        let out = ops::product_t(&r1, &r2).unwrap();
        prop_assert!(out.len() <= r1.len() * r2.len());
        let d1 = ops::rdup_t(&r1).unwrap();
        let d2 = ops::rdup_t(&r2).unwrap();
        let clean = ops::product_t(&d1, &d2).unwrap();
        prop_assert!(!clean.has_duplicates());
    }

    // ── \ᵀ: with a snapshot-dup-free left argument (the case the paper's
    //        plans guarantee via rdupᵀ): card ≤ n1 + n2, output sdf.
    //        (Table 1's 2·n1 bound is specific to the recursion in the
    //        paper's operational definition; the count-timeline sweep can
    //        fragment differently — see ops::temporal::difference_t docs.)
    #[test]
    fn difference_t_laws(r1 in arb_temporal(3, 10), r2 in arb_temporal(3, 10)) {
        let clean_left = ops::rdup_t(&r1).unwrap();
        let out = ops::difference_t(&clean_left, &r2).unwrap();
        prop_assert!(!out.has_snapshot_duplicates().unwrap());
        prop_assert!(out.len() <= clean_left.len() + r2.len());
        // Subtracting from an sdf left argument never increases per-point
        // membership, so the result is also regular-duplicate-free.
        prop_assert!(!out.has_duplicates());
    }

    // ── ξᵀ: card ≤ 2n − 1, eliminates duplicates.
    #[test]
    fn aggregate_t_laws(r in arb_temporal(3, 12)) {
        prop_assume!(!r.is_empty());
        let out = ops::aggregate_t(&r, &["E".into()], &[AggItem::count_star("n")]).unwrap();
        prop_assert!(out.len() < 2 * r.len());
        prop_assert!(!out.has_duplicates());
        prop_assert!(!out.has_snapshot_duplicates().unwrap());
    }

    // ── rdupᵀ: card ≤ 2n − 1, eliminates (snapshot) duplicates, idempotent.
    #[test]
    fn rdup_t_laws(r in arb_temporal(3, 12)) {
        let out = ops::rdup_t(&r).unwrap();
        if !r.is_empty() {
            prop_assert!(out.len() < 2 * r.len());
        }
        prop_assert!(!out.has_duplicates());
        prop_assert!(!out.has_snapshot_duplicates().unwrap());
        let twice = ops::rdup_t(&out).unwrap();
        prop_assert_eq!(out.tuples(), twice.tuples());
    }

    // ── ∪: n1 ≤ card ≤ n1 + n2, retains duplicates.
    #[test]
    fn union_max_laws(r1 in arb_snapshot(10), r2 in arb_snapshot(10)) {
        let out = ops::union_max(&r1, &r2).unwrap();
        prop_assert!(out.len() >= r1.len().max(r2.len()));
        prop_assert!(out.len() <= r1.len() + r2.len());
        let d1 = ops::rdup(&r1).unwrap();
        let d2 = ops::rdup(&r2).unwrap();
        let clean = ops::union_max(&d1, &d2).unwrap();
        prop_assert!(!clean.has_duplicates(), "∪ generates no duplicates (D5's licence)");
    }

    // ── ∪ᵀ: card ≥ n1 always; the n1 + 2·n2 upper bound of Table 1 holds
    //        on snapshot-dup-free inputs (multiplicity > 1 lets the sweep
    //        fragment further; same caveat as `\ᵀ`).
    #[test]
    fn union_t_laws(r1 in arb_temporal(3, 10), r2 in arb_temporal(3, 10)) {
        let out = ops::union_t(&r1, &r2).unwrap();
        prop_assert!(out.len() >= r1.len());
        let c1 = ops::rdup_t(&r1).unwrap();
        let c2 = ops::rdup_t(&r2).unwrap();
        let clean = ops::union_t(&c1, &c2).unwrap();
        prop_assert!(clean.len() <= c1.len() + 2 * c2.len());
        prop_assert!(!clean.has_snapshot_duplicates().unwrap());
    }

    // ── sort: card = n(r), retains duplicates & coalescing, sorted output,
    //          stable.
    #[test]
    fn sort_laws(r in arb_temporal(4, 12)) {
        let order = Order::asc(&["E", "T1"]);
        let out = ops::sort(&r, &order).unwrap();
        prop_assert_eq!(out.len(), r.len());
        prop_assert!(order.is_sorted(out.schema(), out.tuples()).unwrap());
        if r.is_coalesced().unwrap() {
            prop_assert!(out.is_coalesced().unwrap());
        }
        // Sorting by a prefix of an existing order is the identity.
        let again = ops::sort(&out, &Order::asc(&["E"])).unwrap();
        prop_assert_eq!(out.tuples(), again.tuples());
    }

    // ── coalᵀ: card ≤ n(r), retains duplicates, enforces coalescing,
    //           idempotent.
    #[test]
    fn coalesce_laws(r in arb_temporal(3, 12)) {
        let out = ops::coalesce(&r).unwrap();
        prop_assert!(out.len() <= r.len());
        prop_assert!(out.is_coalesced().unwrap());
        let twice = ops::coalesce(&out).unwrap();
        prop_assert_eq!(out.tuples(), twice.tuples());
        // On snapshot-dup-free inputs coalescing "retains" duplicates: it
        // never creates new ones (with snapshot duplicates present, merging
        // two adjacent periods *can* produce an exact copy of a third
        // tuple — see plan::props::derive_one).
        if !r.has_snapshot_duplicates().unwrap() {
            let n_dups_in = r.len() - ops::rdup(&r).unwrap().len();
            let n_dups_out = out.len() - ops::rdup(&out).unwrap().len();
            prop_assert!(n_dups_out <= n_dups_in);
        }
    }
}
