//! Reproduction of every figure of the paper, as executable checks.
//!
//! * Figure 1 — the EMPLOYEE/PROJECT relations and the query result.
//! * Figure 2 — the initial plan (a), the optimized plan (b), and their
//!   agreement.
//! * Figure 3 — `rdup` vs `rdupᵀ` on the projected EMPLOYEE relation.
//! * Figure 6 — the property vectors `[OrderRequired DuplicatesRelevant
//!   PeriodPreserving]` of the derivation's plans, and the five-step rule
//!   derivation from (a) to (b).

use tqo_core::enumerate::{enumerate, EnumerationConfig};
use tqo_core::interp::eval_plan;
use tqo_core::ops;
use tqo_core::plan::props::annotate;
use tqo_core::plan::{LogicalPlan, PlanBuilder, PlanNode};
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::paper;

/// Figure 2(a): the initial algebra expression for "which employees worked
/// in a department, but not on any project, and when", with the transfers
/// of the layered architecture.
fn figure2a() -> LogicalPlan {
    let cat = paper::catalog();
    let emp = PlanBuilder::scan("EMPLOYEE", cat.base_props("EMPLOYEE").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s()
        .rdup_t();
    let prj = PlanBuilder::scan("PROJECT", cat.base_props("PROJECT").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s();
    emp.difference_t(prj)
        .rdup_t()
        .coalesce()
        .sort(Order::asc(&["EmpName"]))
        .build_list(Order::asc(&["EmpName"]))
}

/// Figure 2(b)/6(b): the optimized plan — sort pushed into the DBMS on the
/// EMPLOYEE branch, coalescing before the difference, no redundant
/// operations.
fn figure2b() -> LogicalPlan {
    let cat = paper::catalog();
    let emp = PlanBuilder::scan("EMPLOYEE", cat.base_props("EMPLOYEE").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .sort(Order::asc(&["EmpName"]))
        .transfer_s()
        .rdup_t()
        .coalesce();
    let prj = PlanBuilder::scan("PROJECT", cat.base_props("PROJECT").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s();
    emp.difference_t(prj).build_list(Order::asc(&["EmpName"]))
}

#[test]
fn figure1_relations_and_result() {
    assert_eq!(paper::employee().len(), 5);
    assert_eq!(paper::project().len(), 8);
    let env = paper::catalog().env();
    let result = eval_plan(&figure2a(), &env).unwrap();
    assert_eq!(result, paper::figure1_result());
}

#[test]
fn figure2b_computes_the_same_result() {
    let env = paper::catalog().env();
    let a = eval_plan(&figure2a(), &env).unwrap();
    let b = eval_plan(&figure2b(), &env).unwrap();
    // The user asked for ORDER BY EmpName: the two plans agree under
    // ≡L,A (Definition 5.1) — and here, in fact, exactly.
    assert_eq!(a, b);
}

#[test]
fn figure3_rdup_vs_rdup_t() {
    let r1 = ops::project(
        &paper::employee(),
        &[
            tqo_core::expr::ProjItem::col("EmpName"),
            tqo_core::expr::ProjItem::col("T1"),
            tqo_core::expr::ProjItem::col("T2"),
        ],
    )
    .unwrap();
    assert_eq!(r1, paper::figure3_r1());
    assert_eq!(ops::rdup(&r1).unwrap(), paper::figure3_r2());
    assert_eq!(ops::rdup_t(&r1).unwrap(), paper::figure3_r3());
}

#[test]
fn figure3_equivalences_of_section3() {
    use tqo_core::equivalence::*;
    let r1 = paper::figure3_r1();
    let r3 = paper::figure3_r3();
    assert!(!equiv_list(&r1, &r3).unwrap());
    assert!(!equiv_multiset(&r1, &r3).unwrap());
    assert!(!equiv_set(&r1, &r3).unwrap());
    assert!(!equiv_snapshot_list(&r1, &r3).unwrap());
    assert!(!equiv_snapshot_multiset(&r1, &r3).unwrap());
    assert!(equiv_snapshot_set(&r1, &r3).unwrap());
}

#[test]
fn figure2a_region_structure_as_described_in_section5() {
    let plan = figure2a();
    let ann = annotate(&plan).unwrap();
    // Root sort requires order; everything below does not.
    assert!(ann[&vec![]].flags.order_required);
    for (path, props) in &ann {
        if !path.is_empty() {
            assert!(!props.flags.order_required, "order required at {path:?}");
        }
    }
    // Below the top rdupT (under coalT), duplicates are irrelevant…
    let diff_path = vec![0, 0, 0];
    assert_eq!(plan.root.get(&diff_path).unwrap().op_name(), "\\T");
    assert!(!ann[&diff_path].flags.duplicates_relevant);
    // …but the lower-left rdupT makes them relevant again on the left
    // branch of the temporal difference.
    assert!(ann[&vec![0, 0, 0, 0]].flags.duplicates_relevant);
    // The right branch of the difference needs nothing at all.
    let right = &ann[&vec![0, 0, 0, 1]].flags;
    assert!(!right.order_required && !right.duplicates_relevant && !right.period_preserving);
    // Below coalescing, periods need not be preserved.
    assert!(!ann[&vec![0, 0]].flags.period_preserving);
}

#[test]
fn figure6_derivation_steps_replay() {
    // §6's worked derivation: push Tˢ down (move rdupᵀ &c. to the stratum
    // is already the case in 2(a)), remove the top rdupᵀ (D2), push
    // coalescing below the difference (C10), drop the right-hand
    // coalescing (C2), push the sort down and into the DBMS.
    let env = paper::catalog().env();
    let initial = figure2a();
    let reference = eval_plan(&initial, &env).unwrap();

    let enumeration = enumerate(
        &initial,
        &RuleSet::standard(),
        EnumerationConfig { max_plans: 20_000 },
    )
    .unwrap();

    // The enumeration must contain a plan of the 2(b) shape: no rdupT at
    // the root region, coalesce on the left branch of the difference, and
    // a sort inside the DBMS (below a TransferS).
    let mut found_2b_shape = false;
    for p in &enumeration.plans {
        let root = &p.plan.root;
        let is_diff_root = matches!(root.as_ref(), PlanNode::DifferenceT { .. });
        if !is_diff_root {
            continue;
        }
        let left_is_coal = matches!(root.get(&[0]), Ok(PlanNode::Coalesce { .. }));
        let has_dbms_sort = root.paths().iter().any(|path| {
            matches!(root.get(path), Ok(PlanNode::TransferS { input })
                if matches!(input.as_ref(), PlanNode::Sort { .. }))
        });
        if left_is_coal && has_dbms_sort {
            found_2b_shape = true;
            // And it evaluates to the Figure 1 result under ≡L,A.
            let result = eval_plan(&p.plan, &env).unwrap();
            assert!(initial.result_type.admits(&reference, &result).unwrap());
        }
    }
    assert!(
        found_2b_shape,
        "enumeration should derive a Figure 2(b)-shaped plan; got {} plans",
        enumeration.plans.len()
    );
}

#[test]
fn figure6_property_vectors_of_2b() {
    let plan = figure2b();
    let ann = annotate(&plan).unwrap();
    // Root \T with a list result: [T T T].
    assert_eq!(ann[&vec![]].flags.vector(), "[T T T]");
    // The coalesce on the left branch preserves the required order
    // (coalᵀ retains its argument's order), duplicates and periods.
    assert_eq!(ann[&vec![0]].flags.vector(), "[T T T]");
    // Below the rdupT on the left branch: duplicates irrelevant.
    assert!(!ann[&vec![0, 0, 0]].flags.duplicates_relevant);
    // Right branch: free region.
    assert_eq!(ann[&vec![1]].flags.vector(), "[- - -]");
    // The DBMS sort guarantees delivery order (static props).
    let sort_path = vec![0, 0, 0, 0];
    assert_eq!(plan.root.get(&sort_path).unwrap().op_name(), "sort");
    assert_eq!(ann[&sort_path].stat.order, Order::asc(&["EmpName"]));
}

#[test]
fn optimizer_chooses_a_plan_at_least_as_good_as_2a() {
    let cfg = tqo_core::optimizer::OptimizerConfig::default();
    let initial = figure2a();
    let out = tqo_core::optimizer::optimize(&initial, &RuleSet::standard(), &cfg).unwrap();
    let initial_cost = cfg.cost_model.cost(&initial).unwrap();
    assert!(out.cost <= initial_cost);
    // And the chosen plan still computes the Figure 1 result (under the
    // query's ≡L,A contract).
    let env = paper::catalog().env();
    let reference = eval_plan(&initial, &env).unwrap();
    let chosen = eval_plan(&out.best, &env).unwrap();
    assert!(initial.result_type.admits(&reference, &chosen).unwrap());
}
