//! Optimizer quality across generated workloads: the cost-based selection
//! over Figure 5's enumeration must improve the running example's plan,
//! greedy descent must land between the initial plan and the exhaustive
//! optimum, and every chosen plan must still compute the right answer.

use tqo_core::cost::CostModel;
use tqo_core::equivalence::ResultType;
use tqo_core::interp::eval_plan;
use tqo_core::optimizer::{optimize, optimize_greedy, OptimizerConfig};
use tqo_core::plan::{LogicalPlan, PlanBuilder};
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;
use tqo_storage::{Catalog, WorkloadGenerator};
use tqo_stratum::Stratum;

fn figure2a(catalog: &Catalog) -> LogicalPlan {
    let emp = PlanBuilder::scan("EMPLOYEE", catalog.base_props("EMPLOYEE").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s()
        .rdup_t();
    let prj = PlanBuilder::scan("PROJECT", catalog.base_props("PROJECT").unwrap())
        .project_cols(&["EmpName", "T1", "T2"])
        .transfer_s();
    let root = emp
        .difference_t(prj)
        .rdup_t()
        .coalesce()
        .sort(Order::asc(&["EmpName"]))
        .node();
    LogicalPlan::new(root, ResultType::List(Order::asc(&["EmpName"])))
}

#[test]
fn optimizer_strictly_improves_the_running_example() {
    let rules = RuleSet::standard();
    let cfg = OptimizerConfig::default();
    for seed in [1u64, 5, 9, 13] {
        let catalog = WorkloadGenerator::new(seed).figure1_workload(3).unwrap();
        let initial = figure2a(&catalog);
        let initial_cost = cfg.cost_model.cost(&initial).unwrap();

        let exhaustive = optimize(&initial, &rules, &cfg).unwrap();
        let greedy = optimize_greedy(&initial, &rules, &cfg).unwrap();

        assert!(
            exhaustive.cost.0 < initial_cost.0,
            "seed {seed}: exhaustive {:?} should beat initial {:?}",
            exhaustive.cost,
            initial_cost
        );
        assert!(
            greedy.cost.0 < initial_cost.0,
            "seed {seed}: greedy must improve"
        );
        assert!(
            exhaustive.cost <= greedy.cost,
            "seed {seed}: exhaustive must be at least as good as greedy"
        );

        // Semantics preserved (≡L,⟨EmpName ASC⟩).
        let env = catalog.env();
        let reference = eval_plan(&initial, &env).unwrap();
        for plan in [&exhaustive.best, &greedy.best] {
            let result = eval_plan(plan, &env).unwrap();
            assert!(
                initial.result_type.admits(&reference, &result).unwrap(),
                "seed {seed}: optimized plan changed the result"
            );
        }

        // The chosen plan still runs on the layered engine.
        let stratum = Stratum::new(catalog.clone());
        let (via_stratum, _) = stratum.run(&exhaustive.best).unwrap();
        assert!(initial
            .result_type
            .admits(&reference, &via_stratum)
            .unwrap());
    }
}

#[test]
fn cost_model_orders_obvious_pairs_correctly() {
    let model = CostModel::default();
    let catalog = WorkloadGenerator::new(2).figure1_workload(4).unwrap();
    let base = catalog.base_props("EMPLOYEE").unwrap();

    // Projection before transfer beats projection after (fewer bytes... the
    // model charges per row, and the projected row count is the same — but
    // dedup before transfer genuinely reduces rows).
    let dedup_after = PlanBuilder::scan("EMPLOYEE", base.clone())
        .transfer_s()
        .rdup()
        .build_multiset();
    let dedup_before = PlanBuilder::scan("EMPLOYEE", base.clone())
        .rdup()
        .transfer_s()
        .build_multiset();
    // rdup halves nothing in the estimate (card unchanged) — but the DBMS
    // evaluates it cheaper than the stratum.
    assert!(model.cost(&dedup_before).unwrap() <= model.cost(&dedup_after).unwrap());

    // Selection in the DBMS (halving the estimate) reduces transfer volume.
    let pred = tqo_core::expr::Expr::eq(
        tqo_core::expr::Expr::col("Dept"),
        tqo_core::expr::Expr::lit("d0"),
    );
    let select_after = PlanBuilder::scan("EMPLOYEE", base.clone())
        .transfer_s()
        .select(pred.clone())
        .build_multiset();
    let select_before = PlanBuilder::scan("EMPLOYEE", base)
        .select(pred)
        .transfer_s()
        .build_multiset();
    assert!(model.cost(&select_before).unwrap() < model.cost(&select_after).unwrap());
}

#[test]
fn optimized_plan_reduces_measured_transfer_volume() {
    // The optimizer pushes the selection into the DBMS; the wire then moves
    // fewer rows — measured, not estimated.
    let catalog = WorkloadGenerator::new(8).figure1_workload(6).unwrap();
    let base = catalog.base_props("EMPLOYEE").unwrap();
    let pred = tqo_core::expr::Expr::eq(
        tqo_core::expr::Expr::col("Dept"),
        tqo_core::expr::Expr::lit("d0"),
    );
    let initial = PlanBuilder::scan("EMPLOYEE", base)
        .transfer_s()
        .select(pred)
        .rdup()
        .build_multiset();
    let optimized = optimize(&initial, &RuleSet::standard(), &OptimizerConfig::default())
        .unwrap()
        .best;

    let stratum = Stratum::new(catalog);
    let (r1, m1) = stratum.run(&initial).unwrap();
    let (r2, m2) = stratum.run(&optimized).unwrap();
    assert!(initial.result_type.admits(&r1, &r2).unwrap());
    assert!(
        m2.transferred_rows < m1.transferred_rows,
        "optimized {} rows vs initial {} rows",
        m2.transferred_rows,
        m1.transferred_rows
    );
}
