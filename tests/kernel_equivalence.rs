//! Kernel equivalence on adversarial layouts.
//!
//! The PR-8 kernel rewrites (radix-partitioned hash builds, fused
//! selection-into-breaker pipelines, prefix-assisted cache-conscious
//! sort, branch-free predicate/sweep kernels) promise to change *time
//! only, never bytes* (ARCHITECTURE invariant 15). This suite drives
//! each rewritten kernel through the layouts most likely to break that
//! promise — all-duplicate keys collapsing every row into one radix
//! bucket, empty inputs, selections of density 0% and 100% feeding
//! breakers and sinks, sort inputs past the radix threshold with heavy
//! ties, strings sharing long prefixes (inexact sort prefixes forcing
//! refinement), floats including NaN and -0.0, and nulls under DESC —
//! asserting `row ≡ batch ≡ parallel` **exactly** at threads 1, 2, 4, 8.

mod common;

use std::f64;

use tqo_core::expr::{AggFunc, AggItem, BinOp, Expr};
use tqo_core::interp::Env;
use tqo_core::plan::{BaseProps, LogicalPlan, PlanBuilder};
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::sortspec::{Order, SortKey};
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};
use tqo_exec::{execute_mode, lower, ExecMode, PlannerConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config(allow_fast: bool) -> PlannerConfig {
    PlannerConfig {
        allow_fast,
        ..Default::default()
    }
}

/// The acceptance oracle: one physical plan, three engines, exact `==`
/// at every thread count, in both planner modes.
fn assert_kernels_exact(plan: &LogicalPlan, env: &Env, context: &str) -> Relation {
    let mut fast = None;
    for allow_fast in [false, true] {
        let physical = lower(plan, config(allow_fast)).unwrap();
        let (row, _) = execute_mode(&physical, env, ExecMode::Row).unwrap();
        let (batch, _) = execute_mode(&physical, env, ExecMode::Batch).unwrap();
        assert_eq!(
            row, batch,
            "row and batch diverge (allow_fast={allow_fast}) on {context}"
        );
        for threads in THREADS {
            let (par, _) = execute_mode(&physical, env, ExecMode::Parallel { threads }).unwrap();
            assert_eq!(
                par, row,
                "parallel({threads}) diverges (allow_fast={allow_fast}) on {context}"
            );
        }
        if allow_fast {
            fast = Some(batch);
        }
    }
    fast.expect("fast mode executed")
}

fn scan(name: &str, env: &Env) -> PlanBuilder {
    let base = BaseProps::measured(env.get(name).unwrap()).unwrap();
    PlanBuilder::scan(name, base)
}

/// `(K: Int, S: Str, F: Float)` snapshot rows.
fn kv_schema() -> Schema {
    Schema::of(&[
        ("K", DataType::Int),
        ("S", DataType::Str),
        ("F", DataType::Float),
    ])
}

fn kv_rel(rows: Vec<(i64, &str, f64)>) -> Relation {
    let tuples = rows
        .into_iter()
        .map(|(k, s, f)| Tuple::new(vec![Value::Int(k), Value::Str(s.into()), Value::Float(f)]))
        .collect();
    Relation::new(kv_schema(), tuples).unwrap()
}

fn temporal_rel(rows: Vec<(&str, i64, i64)>) -> Relation {
    let tuples = rows
        .into_iter()
        .map(|(e, s, t)| Tuple::new(vec![Value::Str(e.into()), Value::Time(s), Value::Time(t)]))
        .collect();
    Relation::new(Schema::temporal(&[("E", DataType::Str)]), tuples).unwrap()
}

// ---------------------------------------------------------------------
// Radix-partitioned hash builds: rdup / aggregate / difference
// ---------------------------------------------------------------------

/// Every row shares one key, so every row hashes into the *same* radix
/// bucket: maximal skew for the partitioned build, and the first-kept-
/// occurrence order is the whole answer.
#[test]
fn all_duplicate_keys_collapse_identically() {
    let rel = kv_rel((0..3000).map(|_| (7, "same", 1.5)).collect());
    let env = Env::new().with("D", rel);
    let plan = scan("D", &env).rdup().build_multiset();
    let out = assert_kernels_exact(&plan, &env, "rdup over all-duplicate keys");
    assert_eq!(out.tuples().len(), 1);

    let plan = scan("D", &env)
        .aggregate(vec!["K".into(), "S".into()], vec![AggItem::count_star("n")])
        .build_multiset();
    let out = assert_kernels_exact(&plan, &env, "aggregate over all-duplicate keys");
    assert_eq!(out.tuples().len(), 1);
}

/// 70k rows — past the serial radix threshold, so the partitioned hash
/// build runs — over a tiny key domain: 51 classes crowd into few radix
/// buckets, with intra-batch duplicates interleaved across batch
/// boundaries.
#[test]
fn skewed_buckets_preserve_first_occurrence_order() {
    let rel = kv_rel(
        (0..70_000)
            .map(|i| ((i % 17) as i64, "x", (i % 3) as f64))
            .collect(),
    );
    let env = Env::new().with("D", rel);
    let plan = scan("D", &env).rdup().build_multiset();
    let out = assert_kernels_exact(&plan, &env, "rdup over skewed buckets");
    assert_eq!(out.tuples().len(), 17 * 3);

    let plan = scan("D", &env)
        .difference(scan("D", &env).select(Expr::eq(Expr::col("K"), Expr::lit(3i64))))
        .build_set();
    assert_kernels_exact(&plan, &env, "difference over skewed buckets");
}

#[test]
fn empty_inputs_flow_through_every_breaker() {
    let env = Env::new()
        .with("E0", kv_rel(vec![]))
        .with("T0", temporal_rel(vec![]))
        .with("T1", temporal_rel(vec![("a", 0, 5), ("b", 2, 9)]));
    for (plan, context) in [
        (scan("E0", &env).rdup().build_multiset(), "rdup on empty"),
        (
            scan("E0", &env)
                .aggregate(vec!["K".into()], vec![AggItem::count_star("n")])
                .build_multiset(),
            "aggregate on empty",
        ),
        (
            scan("E0", &env)
                .sort(Order::asc(&["K", "S"]))
                .build_list(Order::asc(&["K", "S"])),
            "sort on empty",
        ),
        (
            scan("T0", &env)
                .product_t(scan("T1", &env))
                .build_multiset(),
            "product_t with empty left",
        ),
        (
            scan("T1", &env).difference_t(scan("T0", &env)).build_set(),
            "difference_t with empty right",
        ),
        (
            scan("T0", &env).coalesce().build_multiset(),
            "coalesce on empty",
        ),
    ] {
        let out = assert_kernels_exact(&plan, &env, context);
        if !context.contains("difference_t") {
            assert_eq!(out.tuples().len(), 0, "{context}");
        }
    }
}

// ---------------------------------------------------------------------
// Fused selection pipelines at the density extremes
// ---------------------------------------------------------------------

/// A predicate that keeps nothing and one that keeps everything, each
/// feeding a sort breaker and the materializing sink — the fused
/// selection-vector path must agree with row-at-a-time on both extremes.
#[test]
fn selection_density_extremes_feed_breakers_exactly() {
    let rel = kv_rel(
        (0..4000)
            .map(|i| ((i % 11) as i64, "pfx", (i % 7) as f64 - 3.0))
            .collect(),
    );
    let env = Env::new().with("D", rel);
    for (pred, keeps, label) in [
        (Expr::lt(Expr::col("K"), Expr::lit(-1i64)), 0usize, "0%"),
        (Expr::lt(Expr::col("K"), Expr::lit(99i64)), 4000, "100%"),
    ] {
        let plan = scan("D", &env)
            .select(pred.clone())
            .sort(Order::asc(&["K", "F"]))
            .build_list(Order::asc(&["K", "F"]));
        let out = assert_kernels_exact(&plan, &env, &format!("select {label} into sort"));
        assert_eq!(out.tuples().len(), keeps);

        let plan = scan("D", &env).select(pred).rdup().build_multiset();
        assert_kernels_exact(&plan, &env, &format!("select {label} into rdup"));
    }
}

/// Branch-free comparison kernels across dtypes, including the float
/// fast path with NaN and -0.0 (total-order semantics must match the
/// row engine's `Value::cmp` exactly).
#[test]
fn branch_free_predicates_match_on_float_edge_cases() {
    let mut rows: Vec<(i64, &str, f64)> = vec![
        (1, "a", f64::NAN),
        (2, "b", -0.0),
        (3, "c", 0.0),
        (4, "d", f64::INFINITY),
        (5, "e", f64::NEG_INFINITY),
        (6, "f", -1.25),
    ];
    for i in 0..2000 {
        rows.push((i % 9, "g", (i % 5) as f64 * 0.5 - 1.0));
    }
    let env = Env::new().with("D", kv_rel(rows));
    for (pred, label) in [
        (
            Expr::bin(BinOp::Ge, Expr::col("F"), Expr::lit(0.0f64)),
            "F >= 0.0",
        ),
        (
            Expr::lt(Expr::col("F"), Expr::lit(Value::Float(f64::NAN))),
            "F < NaN",
        ),
        (
            Expr::bin(BinOp::Ne, Expr::lit(-0.0f64), Expr::col("F")),
            "-0.0 <> F (lit-col)",
        ),
        (
            Expr::and(
                Expr::lt(Expr::col("K"), Expr::lit(7i64)),
                Expr::bin(BinOp::Le, Expr::col("F"), Expr::lit(1i64)),
            ),
            "int lit against float col under AND",
        ),
    ] {
        let plan = scan("D", &env).select(pred).build_multiset();
        assert_kernels_exact(&plan, &env, label);
    }
}

// ---------------------------------------------------------------------
// Cache-conscious sort: radix path, ties, prefixes, nulls, DESC
// ---------------------------------------------------------------------

/// Past the radix threshold (4096 rows) with only 5 distinct keys:
/// every partition is full of ties, so stability (original row order
/// within equal keys) is the entire observable behavior.
#[test]
fn radix_sort_is_stable_under_heavy_ties() {
    let rel = kv_rel(
        (0..10_000)
            .map(|i| ((i % 5) as i64, "t", i as f64))
            .collect(),
    );
    let env = Env::new().with("D", rel);
    let order = Order::asc(&["K"]);
    let plan = scan("D", &env).sort(order.clone()).build_list(order);
    let out = assert_kernels_exact(&plan, &env, "radix sort with 5-key ties");
    // Within each key, F (the original row index) must stay ascending.
    let mut last = [-1.0f64; 5];
    for t in out.tuples() {
        let (Value::Int(k), Value::Float(f)) = (&t.values()[0], &t.values()[2]) else {
            panic!("unexpected row shape");
        };
        assert!(*f > last[*k as usize], "instability at key {k}");
        last[*k as usize] = *f;
    }
}

/// Strings sharing an 8+ byte prefix make every sort prefix equal and
/// inexact, forcing the refinement comparator; DESC on the second key
/// exercises the complemented-prefix path.
#[test]
fn shared_prefix_strings_force_refinement() {
    let schema = Schema::of(&[("S", DataType::Str), ("K", DataType::Int)]);
    let tuples: Vec<Tuple> = (0..6000)
        .map(|i| {
            Tuple::new(vec![
                Value::Str(format!("sharedprefix-{:04}", i % 50).into()),
                Value::Int((i % 13) as i64),
            ])
        })
        .collect();
    let env = Env::new().with("D", Relation::new(schema, tuples).unwrap());
    let order = Order::new(vec![SortKey::asc("S"), SortKey::desc("K")]);
    let plan = scan("D", &env).sort(order.clone()).build_list(order);
    assert_kernels_exact(&plan, &env, "sort on shared-prefix strings with DESC");
}

#[test]
fn nulls_sort_identically_under_desc() {
    let schema = Schema::of(&[("K", DataType::Int), ("S", DataType::Str)]);
    let tuples: Vec<Tuple> = (0..5000)
        .map(|i| {
            let k = if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int((i % 6) as i64)
            };
            Tuple::new(vec![k, Value::Str(format!("r{i}").into())])
        })
        .collect();
    let env = Env::new().with("D", Relation::new(schema, tuples).unwrap());
    for order in [
        Order::new(vec![SortKey::desc("K"), SortKey::asc("S")]),
        Order::asc(&["K", "S"]),
    ] {
        let plan = scan("D", &env).sort(order.clone()).build_list(order);
        assert_kernels_exact(&plan, &env, "sort with nulls under DESC/ASC");
    }
}

// ---------------------------------------------------------------------
// Branch-free sweep kernels: temporal product / rdup / coalesce
// ---------------------------------------------------------------------

/// Many identical periods (every event ties) plus containment chains:
/// the sweep's emission order under ties is the adversarial case for
/// the branch-free `emit_overlaps` rewrite, serial and chunked.
#[test]
fn sweep_kernels_agree_on_degenerate_periods() {
    let mut rows: Vec<(&str, i64, i64)> = Vec::new();
    for i in 0..400 {
        rows.push((["a", "b", "c"][i % 3], 10, 20)); // all-identical periods
        rows.push(("d", 10 - (i % 5) as i64, 20 + (i % 5) as i64)); // nesting
    }
    let env = Env::new()
        .with("L", temporal_rel(rows.clone()))
        .with("R", temporal_rel(rows));
    let plan = scan("L", &env).product_t(scan("R", &env)).build_multiset();
    assert_kernels_exact(&plan, &env, "product_t over tied periods");

    let plan = scan("L", &env).rdup_t().build_multiset();
    assert_kernels_exact(&plan, &env, "rdup_t over tied periods");

    let plan = scan("L", &env).coalesce().build_multiset();
    assert_kernels_exact(&plan, &env, "coalesce over tied periods");

    let plan = scan("L", &env)
        .difference_t(scan("R", &env).select(Expr::eq(Expr::col("E"), Expr::lit("d"))))
        .build_set();
    assert_kernels_exact(&plan, &env, "difference_t over tied periods");
}

/// Aggregation with MIN/MAX/SUM/AVG over the skewed key domain — the
/// radix-partitioned group build must keep group emission order.
#[test]
fn aggregate_functions_agree_over_radix_groups() {
    let rel = kv_rel(
        (0..4500)
            .map(|i| ((i % 23) as i64, "k", (i as f64) * 0.25))
            .collect(),
    );
    let env = Env::new().with("D", rel);
    let plan = scan("D", &env)
        .aggregate(
            vec!["K".into()],
            vec![
                AggItem::count_star("n"),
                AggItem::new(AggFunc::Min, Some("F"), "lo"),
                AggItem::new(AggFunc::Max, Some("F"), "hi"),
                AggItem::new(AggFunc::Sum, Some("K"), "sk"),
                AggItem::new(AggFunc::Avg, Some("F"), "m"),
            ],
        )
        .build_multiset();
    let out = assert_kernels_exact(&plan, &env, "grouped aggregates over radix build");
    assert_eq!(out.tuples().len(), 23);
}
