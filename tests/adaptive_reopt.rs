//! Adaptive mid-query re-optimization: the seeded-misestimate scenarios.
//!
//! The acceptance scenario seeds a deliberately wrong cardinality
//! estimate (statistics measured from a stale sample of the table — the
//! same constant-vs-unique device as `cardinality_accuracy.rs`'s flip
//! test), then asserts that:
//!
//! 1. the static plan, believing the stale statistics, picks the timeline
//!    sweep for `\ᵀ`;
//! 2. the adaptive run observes the true cardinality at the first
//!    completed pipeline breaker (q-error ≫ threshold), checkpoints the
//!    materialized intermediate with *measured* statistics, re-plans the
//!    remainder, and **switches the `\ᵀ` algorithm mid-query** to
//!    per-tuple subtract-union;
//! 3. the switched run produces **byte-identical** results to the
//!    non-adaptive run on the row, batch, and parallel engines at
//!    threads ∈ {1, 4} — the plan tail (coalᵀ of a snapshot-dup-free
//!    input, then a full-column sort) canonicalizes the `≡SM`-licensed
//!    algorithm difference away.

mod common;

use tqo_core::interp::Env;
use tqo_core::plan::{BaseProps, LogicalPlan, PlanBuilder};
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::sortspec::Order;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};
use tqo_exec::{execute_adaptive, execute_logical, lower, AdaptiveConfig, ExecMode, PlannerConfig};
use tqo_stratum::Stratum;

/// A clean temporal relation: `classes` values × `fragments` disjoint,
/// non-adjacent periods each.
fn clean_temporal(classes: usize, fragments: usize) -> Relation {
    let mut tuples = Vec::with_capacity(classes * fragments);
    for c in 0..classes {
        for f in 0..fragments {
            tuples.push(Tuple::new(vec![
                Value::Str(format!("v{c:04}").into()),
                Value::Time(f as i64 * 3),
                Value::Time(f as i64 * 3 + 2),
            ]));
        }
    }
    Relation::new(Schema::temporal(&[("E", DataType::Str)]), tuples).unwrap()
}

// The stale-sample scan device is shared with the bench workload.
use tqo_bench::stale_scan;

/// Scan with accurate measured statistics.
fn true_scan(name: &str, actual: &Relation) -> PlanBuilder {
    PlanBuilder::scan(name, BaseProps::measured(actual).unwrap())
}

/// The flip scenario: `sort(coalᵀ(rdupᵀ(A) \ᵀ B))` where A's statistics
/// claim ~40 rows but A actually holds 2000, and B (60 rows, accurate)
/// looks 16× too large relative to the stale left side. The full-column
/// sort makes the result canonical, so algorithm switches below cannot
/// change the output bytes.
fn flip_scenario() -> (Env, LogicalPlan) {
    let a = clean_temporal(100, 20); // 2000 rows, sdf
    let b = clean_temporal(30, 2); // 60 rows
    let env = Env::new().with("A", a.clone()).with("B", b.clone());
    let by_all = Order::asc(&["E", "T1", "T2"]);
    let plan = stale_scan("A", &a, 40)
        .rdup_t()
        .difference_t(true_scan("B", &b))
        .coalesce()
        .sort(by_all.clone())
        .build_list(by_all);
    (env, plan)
}

#[test]
fn seeded_misestimate_switches_the_difference_algorithm_mid_query() {
    let (env, plan) = flip_scenario();

    // Static plan, believing the stale statistics: B (60) × 16 > A-est
    // (~40), so the timeline sweep is chosen.
    let static_phys = lower(&plan, PlannerConfig::default()).unwrap();
    assert!(
        static_phys
            .explain()
            .contains("difference-t[TimelineSweep]"),
        "stale stats should pick the sweep:\n{}",
        static_phys.explain()
    );

    // Adaptive run: the rdupᵀ breaker completes with actual 2000 rows
    // (q ≈ 50), the checkpoint re-enters the planner with measured
    // statistics, and B × 16 ≤ 2000 now licenses subtract-union.
    let config = PlannerConfig {
        adaptive: Some(AdaptiveConfig::default()),
        ..PlannerConfig::default()
    };
    let (_, metrics) = execute_adaptive(&plan, &env, None, config).unwrap();
    assert!(
        metrics.replanned_count() >= 1,
        "re-opt event count must be ≥ 1:\n{}",
        metrics.report()
    );
    assert!(
        metrics.plans_switched() >= 1,
        "the chosen plan must differ from the static plan:\n{}",
        metrics.report()
    );
    assert!(
        metrics
            .operators
            .iter()
            .any(|o| o.label == "difference-t[SubtractUnion]"),
        "the \\ᵀ algorithm must switch mid-query:\n{}",
        metrics.report()
    );
    // The event records the misestimate that triggered the switch.
    let trigger = metrics.reopts.iter().find(|e| e.replanned).unwrap();
    assert!(trigger.q_error.unwrap() > 10.0);
    assert_eq!(trigger.actual_rows, 2000);
    assert!(trigger.describe().contains("plan CHANGED"));
}

#[test]
fn switched_plans_are_byte_identical_to_the_static_run_on_every_engine() {
    let (env, plan) = flip_scenario();
    for mode in [
        ExecMode::Row,
        ExecMode::Batch,
        ExecMode::Parallel { threads: 1 },
        ExecMode::Parallel { threads: 4 },
    ] {
        let static_config = PlannerConfig {
            mode,
            ..PlannerConfig::default()
        };
        let (expected, static_metrics) = execute_logical(&plan, &env, static_config).unwrap();
        assert!(
            static_metrics.reopts.is_empty(),
            "non-adaptive runs record no re-opt events"
        );
        let adaptive_config = PlannerConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..static_config
        };
        let (got, metrics) = execute_logical(&plan, &env, adaptive_config).unwrap();
        assert!(metrics.plans_switched() >= 1, "scenario must switch");
        assert_eq!(
            got, expected,
            "adaptive result must be byte-identical to the static run ({mode:?})"
        );
    }
}

#[test]
fn adaptive_estimates_snap_to_truth_after_the_checkpoint() {
    let (env, plan) = flip_scenario();
    let config = PlannerConfig {
        adaptive: Some(AdaptiveConfig::default()),
        ..PlannerConfig::default()
    };
    let (_, metrics) = execute_adaptive(&plan, &env, None, config).unwrap();
    // Operators executed after the re-plan price from measured statistics:
    // their q-errors collapse to ~1 while the static run's stay ~50.
    let after: Vec<f64> = metrics
        .operators
        .iter()
        .skip_while(|o| !o.label.starts_with("scan(__adaptive"))
        .filter_map(|o| o.q_error())
        .collect();
    assert!(!after.is_empty());
    assert!(
        after.iter().all(|&q| q < 2.0),
        "post-checkpoint estimates should be measured: {after:?}"
    );
    let (_, static_metrics) = execute_logical(&plan, &env, PlannerConfig::default()).unwrap();
    let worst_static = static_metrics.q_errors().into_iter().fold(1.0f64, f64::max);
    assert!(worst_static > 10.0, "the seed must actually misestimate");
}

#[test]
fn layered_stratum_re_optimizes_on_the_running_example() {
    // The wire transfer is the first checkpoint: the stratum binds each
    // fragment with measured statistics and re-plans its local tree. On
    // the running example the measured rdupᵀ output (4 rows vs 10
    // estimated) trips the default threshold and the re-planned remainder
    // drops the right-side rdupᵀ (§5.3's license, proven by measurement).
    let cat = tqo_storage::paper::catalog();
    let sql = "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
               EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
               COALESCE ORDER BY EmpName";
    let static_stratum = Stratum::new(cat.clone());
    let adaptive_stratum = Stratum::new(cat.clone()).with_adaptive(AdaptiveConfig::default());
    let plan = tqo_sql::compile(sql, &cat).unwrap();

    let (expected, _, _) = static_stratum.run_sql_optimized(sql).unwrap();
    let (got, metrics, _) = adaptive_stratum.run_sql_optimized(sql).unwrap();
    assert!(
        metrics.reopts.iter().any(|e| e.replanned),
        "the running example must re-optimize in the stratum: {:?}",
        metrics.reopts
    );
    assert!(
        plan.result_type.admits(&expected, &got).unwrap(),
        "adaptive stratum violates ≡SQL"
    );
    assert_eq!(got, tqo_storage::paper::figure1_result());
    // Deterministic decisions: run twice, same bytes.
    let (again, _, _) = adaptive_stratum.run_sql_optimized(sql).unwrap();
    assert_eq!(got, again);
}

#[test]
fn pooled_fixtures_run_adaptively_at_full_pressure() {
    // A focused rerun of the engines_agree adaptive leg on a generated
    // workload, so this suite is self-contained evidence for the
    // acceptance criteria.
    use tqo_storage::{GenConfig, WorkloadGenerator};
    let mut generator = WorkloadGenerator::new(5);
    let mut env = Env::new();
    for name in ["EMP", "PRJ", "A", "B"] {
        env.insert(
            name,
            generator
                .temporal(&GenConfig {
                    classes: 5,
                    fragments_per_class: 4,
                    adjacency_prob: 0.3,
                    overlap_prob: 0.3,
                    duplicate_prob: 0.2,
                    ..GenConfig::default()
                })
                .unwrap(),
        );
    }
    env.insert("R", generator.temporal(&GenConfig::clean(6, 3)).unwrap());
    env.insert("S1", generator.conventional(30, 5).unwrap());
    env.insert("S2", generator.conventional(20, 5).unwrap());
    for (i, plan) in common::optimizer_fixtures(25).into_iter().enumerate() {
        let reference = tqo_core::interp::eval_plan(&plan, &env).unwrap();
        common::assert_adaptive_agrees(&plan, &env, &reference, &format!("fixture #{i}"));
    }
}
