//! Cross-engine agreement: the reference interpreter, the row execution
//! engine, the vectorized batch execution engine (fast and faithful
//! planner modes), and the layered stratum engine must agree on every
//! query — exactly for faithful modes, and up to the query's result type
//! for modes using fast algorithms. For any one physical plan, the row
//! and batch engines must agree *exactly*, fast algorithms included.

mod common;

use common::{arb_snapshot, arb_temporal, assert_adaptive_agrees};
use proptest::prelude::*;

use tqo_core::interp::eval_plan;
use tqo_core::relation::Relation;
use tqo_exec::{execute_logical, execute_mode, lower, ExecMode, PlannerConfig};
use tqo_storage::{paper, Catalog};
use tqo_stratum::{make_layered, Stratum};

fn row_config(allow_fast: bool) -> PlannerConfig {
    PlannerConfig {
        allow_fast,
        mode: ExecMode::Row,
        ..Default::default()
    }
}

fn batch_config(allow_fast: bool) -> PlannerConfig {
    PlannerConfig {
        allow_fast,
        mode: ExecMode::Batch,
        ..Default::default()
    }
}

/// Row and batch engines must produce identical relations for the same
/// physical plan, in both planner modes; returns the fast-mode result.
fn assert_engines_exact(
    plan: &tqo_core::plan::LogicalPlan,
    env: &tqo_core::interp::Env,
    context: &str,
) -> Relation {
    let mut fast = None;
    for allow_fast in [false, true] {
        let physical = lower(plan, row_config(allow_fast)).unwrap();
        let (row, _) = execute_mode(&physical, env, ExecMode::Row).unwrap();
        let (batch, _) = execute_mode(&physical, env, ExecMode::Batch).unwrap();
        assert_eq!(
            row, batch,
            "row and batch engines diverge (allow_fast={allow_fast}) on {context}"
        );
        if allow_fast {
            fast = Some(batch);
        }
    }
    fast.expect("fast mode executed")
}

/// The cross-engine SQL pool lives in `common::SQL_POOL` so the
/// serving stress suite fires the exact same queries through the
/// scheduler and the TCP front-end.
use common::SQL_POOL as QUERIES;

fn agree_on_catalog(catalog: &Catalog) {
    let env = catalog.env();
    let stratum = Stratum::new(catalog.clone());
    for sql in QUERIES {
        let plan = tqo_sql::compile(sql, catalog).unwrap();
        let reference = eval_plan(&plan, &env).unwrap();

        // Faithful physical engines: exact agreement with the interpreter.
        for config in [row_config(false), batch_config(false)] {
            let (faithful, _) = execute_logical(&plan, &env, config).unwrap();
            assert_eq!(
                faithful, reference,
                "faithful {:?} engine diverges on {sql}",
                config.mode
            );
        }

        // Row and batch engines: exact agreement with each other on the
        // same physical plan, fast algorithms included; fast results agree
        // with the reference at the query's result type.
        let fast = assert_engines_exact(&plan, &env, sql);
        assert!(
            plan.result_type.admits(&reference, &fast).unwrap(),
            "fast engine violates ≡SQL on {sql}"
        );

        // Layered stratum engine.
        let layered = make_layered(&plan).unwrap();
        let (via_stratum, metrics) = stratum.run(&layered).unwrap();
        assert_eq!(via_stratum, reference, "stratum diverges on {sql}");
        assert!(metrics.fragments >= 1);

        // Layered + optimizer.
        let (optimized, _, _) = stratum.run_sql_optimized(sql).unwrap();
        assert!(
            plan.result_type.admits(&reference, &optimized).unwrap(),
            "optimized stratum violates ≡SQL on {sql}"
        );

        // Adaptive legs over the full SQL pool plus the adaptive layered
        // engine — the CI matrix leg `ADAPTIVE=1` turns these on.
        if common::adaptive_pressure() {
            assert_adaptive_agrees(&plan, &env, &reference, sql);
            let adaptive_stratum =
                Stratum::new(catalog.clone()).with_adaptive(common::adaptive_pressure_config());
            let (via_adaptive, _) = adaptive_stratum.run(&layered).unwrap();
            assert!(
                plan.result_type.admits(&reference, &via_adaptive).unwrap(),
                "adaptive stratum violates ≡SQL on {sql}"
            );
        }
    }
}

#[test]
fn engines_agree_on_the_paper_catalog() {
    agree_on_catalog(&paper::catalog());
}

#[test]
fn engines_agree_on_generated_workloads() {
    for seed in [1u64, 7, 23] {
        let catalog = tqo_storage::WorkloadGenerator::new(seed)
            .figure1_workload(2)
            .unwrap();
        agree_on_catalog(&catalog);
    }
}

/// The optimizer fixture pool (every plan shape in the rule space) over
/// generator-driven workloads: interp, row exec, and batch exec must
/// produce identical relations in faithful mode, the row and batch
/// engines identical relations in fast mode, and fast results must be
/// admissible at each plan's result type.
#[test]
fn engines_agree_on_fixture_plans_over_generated_relations() {
    use tqo_storage::{GenConfig, WorkloadGenerator};
    for seed in [3u64, 11, 42] {
        let mut generator = WorkloadGenerator::new(seed);
        let mut env = tqo_core::interp::Env::new();
        // Dirty temporal relations (overlaps, adjacencies, duplicates)
        // under honest `unordered` declarations...
        for name in ["EMP", "PRJ", "A", "B"] {
            let r = generator
                .temporal(&GenConfig {
                    classes: 6,
                    fragments_per_class: 5,
                    mean_duration: 6,
                    mean_gap: 3,
                    adjacency_prob: 0.35,
                    overlap_prob: 0.35,
                    duplicate_prob: 0.2,
                    ..GenConfig::default()
                })
                .unwrap();
            env.insert(name, r);
        }
        // ...a genuinely clean relation for the fixture declaring clean
        // base properties...
        env.insert("R", generator.temporal(&GenConfig::clean(8, 4)).unwrap());
        // ...and conventional relations for the snapshot fixtures.
        env.insert("S1", generator.conventional(40, 6).unwrap());
        env.insert("S2", generator.conventional(30, 6).unwrap());

        for (i, plan) in common::optimizer_fixtures(30).into_iter().enumerate() {
            let context = format!("fixture #{i} (seed {seed})");
            let reference = eval_plan(&plan, &env).unwrap();
            for config in [row_config(false), batch_config(false)] {
                let (faithful, _) = execute_logical(&plan, &env, config).unwrap();
                assert_eq!(
                    faithful, reference,
                    "faithful {:?} engine diverges on {context}",
                    config.mode
                );
            }
            let fast = assert_engines_exact(&plan, &env, &context);
            assert!(
                plan.result_type.admits(&reference, &fast).unwrap(),
                "fast engines violate ≡SQL on {context}"
            );
            // Every pooled fixture also runs with AdaptiveConfig enabled
            // at q_threshold = 1.0 — maximum re-planning pressure — and
            // must still satisfy interp ≡ row ≡ batch ≡ parallel.
            assert_adaptive_agrees(&plan, &env, &reference, &context);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random relations through a random choice of the query pool.
    #[test]
    fn engines_agree_on_random_relations(
        emp in arb_temporal(4, 12),
        prj in arb_temporal(4, 10),
        s in arb_snapshot(10),
        query_idx in 0usize..4,
    ) {
        // Rebuild relations under the catalog's expected schemas.
        use tqo_core::schema::Schema;
        use tqo_core::tuple::Tuple;
        use tqo_core::value::{DataType, Value};
        let emp_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)]);
        let emp_rel = Relation::new(
            emp_schema,
            emp.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("D".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let prj_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Prj", DataType::Str)]);
        let prj_rel = Relation::new(
            prj_schema,
            prj.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("P".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let _ = s;
        let catalog = Catalog::new();
        catalog.register("EMPLOYEE", emp_rel).unwrap();
        catalog.register("PROJECT", prj_rel).unwrap();

        let queries = [
            "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
             EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
             COALESCE ORDER BY EmpName",
            "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
             VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
            "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
            "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName",
        ];
        let sql = queries[query_idx];
        let env = catalog.env();
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        let reference = eval_plan(&plan, &env).unwrap();
        for config in [row_config(false), batch_config(false)] {
            let (faithful, _) = execute_logical(&plan, &env, config).unwrap();
            prop_assert_eq!(&faithful, &reference);
        }
        let fast = assert_engines_exact(&plan, &env, sql);
        prop_assert!(plan.result_type.admits(&reference, &fast).unwrap());
        // The proptest pool runs adaptively at q_threshold = 1.0 too.
        assert_adaptive_agrees(&plan, &env, &reference, sql);
        let stratum = Stratum::new(catalog.clone());
        let (via_stratum, _) = stratum.run(&make_layered(&plan).unwrap()).unwrap();
        prop_assert_eq!(via_stratum, reference);
    }
}
