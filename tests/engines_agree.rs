//! Cross-engine agreement: the reference interpreter, the physical
//! execution engine (fast and faithful planner modes), and the layered
//! stratum engine must agree on every query — exactly for faithful modes,
//! and up to the query's result type for modes using fast algorithms.

mod common;

use common::{arb_snapshot, arb_temporal};
use proptest::prelude::*;

use tqo_core::interp::eval_plan;
use tqo_core::relation::Relation;
use tqo_exec::{execute_logical, PlannerConfig};
use tqo_storage::{paper, Catalog};
use tqo_stratum::{make_layered, Stratum};

const QUERIES: &[&str] = &[
    "SELECT EmpName FROM EMPLOYEE",
    "SELECT DISTINCT EmpName FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept DESC",
    "SELECT Dept, COUNT(*) AS n, MIN(T1) AS lo FROM EMPLOYEE GROUP BY Dept",
    "SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE T1 >= 2 AND Dept = 'Sales'",
    "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION ALL \
     VALIDTIME SELECT EmpName FROM PROJECT",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
     VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
    "SELECT EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT",
];

fn agree_on_catalog(catalog: &Catalog) {
    let env = catalog.env();
    let stratum = Stratum::new(catalog.clone());
    for sql in QUERIES {
        let plan = tqo_sql::compile(sql, catalog).unwrap();
        let reference = eval_plan(&plan, &env).unwrap();

        // Faithful physical engine: exact agreement.
        let (faithful, _) = execute_logical(
            &plan,
            &env,
            PlannerConfig {
                allow_fast: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(faithful, reference, "faithful engine diverges on {sql}");

        // Fast physical engine: agreement at the query's result type.
        let (fast, _) = execute_logical(&plan, &env, PlannerConfig::default()).unwrap();
        assert!(
            plan.result_type.admits(&reference, &fast).unwrap(),
            "fast engine violates ≡SQL on {sql}"
        );

        // Layered stratum engine.
        let layered = make_layered(&plan).unwrap();
        let (via_stratum, metrics) = stratum.run(&layered).unwrap();
        assert_eq!(via_stratum, reference, "stratum diverges on {sql}");
        assert!(metrics.fragments >= 1);

        // Layered + optimizer.
        let (optimized, _, _) = stratum.run_sql_optimized(sql).unwrap();
        assert!(
            plan.result_type.admits(&reference, &optimized).unwrap(),
            "optimized stratum violates ≡SQL on {sql}"
        );
    }
}

#[test]
fn engines_agree_on_the_paper_catalog() {
    agree_on_catalog(&paper::catalog());
}

#[test]
fn engines_agree_on_generated_workloads() {
    for seed in [1u64, 7, 23] {
        let catalog = tqo_storage::WorkloadGenerator::new(seed)
            .figure1_workload(2)
            .unwrap();
        agree_on_catalog(&catalog);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random relations through a random choice of the query pool.
    #[test]
    fn engines_agree_on_random_relations(
        emp in arb_temporal(4, 12),
        prj in arb_temporal(4, 10),
        s in arb_snapshot(10),
        query_idx in 0usize..4,
    ) {
        // Rebuild relations under the catalog's expected schemas.
        use tqo_core::schema::Schema;
        use tqo_core::tuple::Tuple;
        use tqo_core::value::{DataType, Value};
        let emp_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Dept", DataType::Str)]);
        let emp_rel = Relation::new(
            emp_schema,
            emp.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("D".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let prj_schema =
            Schema::temporal(&[("EmpName", DataType::Str), ("Prj", DataType::Str)]);
        let prj_rel = Relation::new(
            prj_schema,
            prj.tuples()
                .iter()
                .map(|t| {
                    Tuple::new(vec![
                        t.value(0).clone(),
                        Value::Str("P".into()),
                        t.value(1).clone(),
                        t.value(2).clone(),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let _ = s;
        let catalog = Catalog::new();
        catalog.register("EMPLOYEE", emp_rel).unwrap();
        catalog.register("PROJECT", prj_rel).unwrap();

        let queries = [
            "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
             EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
             COALESCE ORDER BY EmpName",
            "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
             VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
            "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
            "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName",
        ];
        let sql = queries[query_idx];
        let env = catalog.env();
        let plan = tqo_sql::compile(sql, &catalog).unwrap();
        let reference = eval_plan(&plan, &env).unwrap();
        let (fast, _) = execute_logical(&plan, &env, PlannerConfig::default()).unwrap();
        prop_assert!(plan.result_type.admits(&reference, &fast).unwrap());
        let stratum = Stratum::new(catalog.clone());
        let (via_stratum, _) = stratum.run(&make_layered(&plan).unwrap()).unwrap();
        prop_assert_eq!(via_stratum, reference);
    }
}
