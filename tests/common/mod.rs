//! Shared proptest strategies and helpers for the integration test suites.
#![allow(dead_code)]

use proptest::prelude::*;

use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};

/// Schema of random temporal relations: `(E: Str, T1, T2)`.
pub fn temporal_schema() -> Schema {
    Schema::temporal(&[("E", DataType::Str)])
}

/// Schema of random snapshot relations: `(A: Int, B: Str)`.
pub fn snapshot_schema() -> Schema {
    Schema::of(&[("A", DataType::Int), ("B", DataType::Str)])
}

/// A random temporal relation over `classes` distinct values with up to
/// `max_rows` rows; periods live in a small range so overlaps, adjacencies,
/// and duplicates all occur with useful frequency.
pub fn arb_temporal(classes: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(
        (0..classes, 0i64..24, 1i64..8),
        0..=max_rows,
    )
    .prop_map(move |rows| {
        let tuples = rows
            .into_iter()
            .map(|(c, start, dur)| {
                Tuple::new(vec![
                    Value::Str(format!("v{c}")),
                    Value::Time(start),
                    Value::Time(start + dur),
                ])
            })
            .collect();
        Relation::new(temporal_schema(), tuples).expect("generated periods are valid")
    })
}

/// A random snapshot relation with small value domains (so duplicates are
/// common).
pub fn arb_snapshot(max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0i64..6, 0usize..4), 0..=max_rows).prop_map(|rows| {
        let tuples = rows
            .into_iter()
            .map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Str(format!("s{b}"))]))
            .collect();
        Relation::new(snapshot_schema(), tuples).expect("generated rows are valid")
    })
}

/// All instants worth probing for a set of relations (shared endpoints ± 1).
pub fn probes(relations: &[&Relation]) -> Vec<i64> {
    let mut pts = Vec::new();
    for r in relations {
        pts.extend(r.endpoints().expect("temporal"));
    }
    pts.sort_unstable();
    pts.dedup();
    let mut out = Vec::with_capacity(pts.len() + 2);
    if let Some(first) = pts.first() {
        out.push(first - 1);
    }
    out.extend(pts.iter().copied());
    if let Some(last) = pts.last() {
        out.push(last + 1);
    }
    out
}
