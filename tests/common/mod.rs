//! Shared proptest strategies and helpers for the integration test suites.
#![allow(dead_code)]

use proptest::prelude::*;

use tqo_core::expr::Expr;
use tqo_core::plan::{BaseProps, LogicalPlan, PlanBuilder};
use tqo_core::relation::Relation;
use tqo_core::schema::Schema;
use tqo_core::sortspec::Order;
use tqo_core::tuple::Tuple;
use tqo_core::value::{DataType, Value};

/// Schema of random temporal relations: `(E: Str, T1, T2)`.
pub fn temporal_schema() -> Schema {
    Schema::temporal(&[("E", DataType::Str)])
}

/// Schema of random snapshot relations: `(A: Int, B: Str)`.
pub fn snapshot_schema() -> Schema {
    Schema::of(&[("A", DataType::Int), ("B", DataType::Str)])
}

/// A random temporal relation over `classes` distinct values with up to
/// `max_rows` rows; periods live in a small range so overlaps, adjacencies,
/// and duplicates all occur with useful frequency.
pub fn arb_temporal(classes: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..classes, 0i64..24, 1i64..8), 0..=max_rows).prop_map(move |rows| {
        let tuples = rows
            .into_iter()
            .map(|(c, start, dur)| {
                Tuple::new(vec![
                    Value::Str(format!("v{c}").into()),
                    Value::Time(start),
                    Value::Time(start + dur),
                ])
            })
            .collect();
        Relation::new(temporal_schema(), tuples).expect("generated periods are valid")
    })
}

/// A random snapshot relation with small value domains (so duplicates are
/// common).
pub fn arb_snapshot(max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0i64..6, 0usize..4), 0..=max_rows).prop_map(|rows| {
        let tuples = rows
            .into_iter()
            .map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Str(format!("s{b}").into())]))
            .collect();
        Relation::new(snapshot_schema(), tuples).expect("generated rows are valid")
    })
}

/// A temporal scan over declared (not measured) base properties, as the
/// optimizer fixtures use: `(E: Str, T1, T2)` with `card` rows.
pub fn fixture_tscan(name: &str, card: u64, clean: bool) -> PlanBuilder {
    let schema = Schema::temporal(&[("E", DataType::Str)]);
    let base = if clean {
        BaseProps::clean(schema, card)
    } else {
        BaseProps::unordered(schema, card)
    };
    PlanBuilder::scan(name, base)
}

/// A snapshot scan `(A: Int, B: Str)` with `card` rows.
pub fn fixture_sscan(name: &str, card: u64) -> PlanBuilder {
    let schema = Schema::of(&[("A", DataType::Int), ("B", DataType::Str)]);
    PlanBuilder::scan(name, BaseProps::unordered(schema, card))
}

/// The optimizer fixture pool: plan shapes exercising every region of the
/// rule space (dedup, coalescing, sorting, conventional pushdowns,
/// transfers) under all three result types, sized so the exhaustive
/// Figure 5 closure finishes. Shared by the memo-vs-exhaustive agreement
/// suite and the optimizer-quality suite.
pub fn optimizer_fixtures(scale: u64) -> Vec<LogicalPlan> {
    let t = |n: &str| fixture_tscan(n, scale, false);
    let tc = |n: &str| fixture_tscan(n, scale, true);
    let s = |n: &str| fixture_sscan(n, scale);
    let by_e = || Order::asc(&["E"]);
    let time_free = || Expr::eq(Expr::col("E"), Expr::lit("v0"));

    vec![
        // The running example (Figure 2a) as list, multiset, and set.
        t("EMP")
            .project_cols(&["E", "T1", "T2"])
            .transfer_s()
            .rdup_t()
            .difference_t(t("PRJ").project_cols(&["E", "T1", "T2"]).transfer_s())
            .rdup_t()
            .coalesce()
            .sort(by_e())
            .build_list(by_e()),
        t("EMP")
            .transfer_s()
            .rdup_t()
            .difference_t(t("PRJ").transfer_s())
            .rdup_t()
            .coalesce()
            .build_multiset(),
        t("EMP")
            .transfer_s()
            .rdup_t()
            .difference_t(t("PRJ").transfer_s())
            .coalesce()
            .build_set(),
        // Sort placement and elimination.
        t("R").sort(by_e()).build_multiset(),
        t("R").sort(by_e()).build_list(by_e()),
        t("R").transfer_s().sort(by_e()).build_list(by_e()),
        t("R").sort(by_e()).transfer_s().build_list(by_e()),
        // Duplicate-elimination chains.
        t("R").rdup_t().rdup_t().build_multiset(),
        tc("R").rdup_t().build_multiset(),
        t("R").rdup_t().coalesce().build_multiset(),
        t("R").coalesce().coalesce().build_multiset(),
        t("A").union_t(t("B")).rdup_t().build_set(),
        // Temporal difference region structure (§5.3).
        t("A")
            .rdup_t()
            .difference_t(t("B").rdup_t())
            .coalesce()
            .build_multiset(),
        t("A").difference_t(t("B").sort(by_e())).build_multiset(),
        // Conventional pushdowns across a product.
        s("S1")
            .product(s("S2"))
            .select(Expr::eq(Expr::col("1.A"), Expr::lit(1i64)))
            .build_multiset(),
        s("S1").product(s("S2")).rdup().build_set(),
        // Selection over temporal operations.
        t("R").rdup_t().select(time_free()).build_multiset(),
        t("R").coalesce().select(time_free()).build_multiset(),
        // Transfers: round trips and placement.
        t("R")
            .transfer_s()
            .transfer_d()
            .transfer_s()
            .build_multiset(),
        t("R")
            .transfer_s()
            .rdup_t()
            .coalesce()
            .sort(by_e())
            .build_list(by_e()),
    ]
}

/// Adaptive re-optimization at maximum re-planning pressure: q-errors are
/// ≥ 1 by definition, so a threshold of 1.0 re-plans at every completed
/// pipeline breaker (within the budget).
pub fn adaptive_pressure_config() -> tqo_exec::AdaptiveConfig {
    tqo_exec::AdaptiveConfig {
        q_threshold: 1.0,
        max_reopt: 8,
    }
}

/// True when the suite runs under the CI matrix leg `ADAPTIVE=1`, which
/// widens the adaptive legs to the full SQL query pool and the layered
/// stratum engine.
pub fn adaptive_pressure() -> bool {
    std::env::var("ADAPTIVE").is_ok_and(|v| v == "1")
}

/// True when the suite runs under the CI matrix leg `TRACE=1`, which
/// widens the traced-vs-untraced byte-identity suite from a sampled
/// query pool to the full SQL pool and every optimizer fixture plan.
pub fn trace_widened() -> bool {
    std::env::var("TRACE").is_ok_and(|v| v == "1")
}

/// True when the suite runs under the CI matrix leg `FAULTS=1`, which
/// widens the governance suite: more fault seeds, the full query pool on
/// the fault-injection byte-identity legs, and denser cancellation
/// sweeps.
pub fn faults_widened() -> bool {
    std::env::var("FAULTS").is_ok_and(|v| v == "1")
}

/// The adaptive legs of the engine-equality suites, run at maximum
/// re-planning pressure (`q_threshold = 1.0`):
///
/// * **Re-lowering legs** (no rule re-entry): every adaptive decision is a
///   deterministic function of actual cardinalities, which all engines
///   agree on — so the row, batch, and parallel engines (threads 1 and 4)
///   must produce *byte-identical* results; the faithful leg must equal
///   the reference interpreter exactly, and the fast leg must stay
///   admissible at the plan's declared result type.
/// * **Rule re-entry leg** (memo search on every remainder): the chosen
///   remainder depends on the engine-calibrated cost model, so engines
///   are held to the result-type contract, exactly as statically
///   optimized plans are in the rest of the suite.
pub fn assert_adaptive_agrees(
    plan: &LogicalPlan,
    env: &tqo_core::interp::Env,
    reference: &Relation,
    context: &str,
) {
    use tqo_core::optimizer::SearchStrategy;
    use tqo_exec::{execute_adaptive, ExecMode, PlannerConfig};

    let rules = tqo_core::rules::RuleSet::standard();
    let acfg = adaptive_pressure_config();
    let modes = [
        ExecMode::Row,
        ExecMode::Batch,
        ExecMode::Parallel { threads: 1 },
        ExecMode::Parallel { threads: 4 },
    ];

    for allow_fast in [false, true] {
        let mut first: Option<Relation> = None;
        for mode in modes {
            let config = PlannerConfig {
                allow_fast,
                mode,
                strategy: SearchStrategy::Memo,
                adaptive: Some(acfg),
            };
            let (got, metrics) = execute_adaptive(plan, env, None, config)
                .unwrap_or_else(|e| panic!("adaptive run failed on {context}: {e:?}"));
            // Under maximum pressure every in-budget checkpoint re-plans.
            assert!(
                metrics
                    .reopts
                    .iter()
                    .take(acfg.max_reopt)
                    .all(|e| e.replanned),
                "q_threshold=1.0 checkpoint did not re-plan on {context}"
            );
            match &first {
                None => first = Some(got),
                Some(f) => assert_eq!(
                    f, &got,
                    "adaptive engines diverge (allow_fast={allow_fast}, {mode:?}) on {context}"
                ),
            }
        }
        let got = first.expect("modes executed");
        if allow_fast {
            assert!(
                plan.result_type.admits(reference, &got).unwrap(),
                "fast adaptive run violates ≡SQL on {context}"
            );
        } else {
            assert_eq!(
                &got, reference,
                "faithful adaptive run diverges from the interpreter on {context}"
            );
        }
    }

    // Rule re-entry: the memo optimizer re-searches every remainder with
    // measured statistics. Held to the result-type contract per engine.
    for mode in modes {
        let config = PlannerConfig {
            allow_fast: true,
            mode,
            strategy: SearchStrategy::Memo,
            adaptive: Some(acfg),
        };
        let (got, _) = execute_adaptive(plan, env, Some(&rules), config)
            .unwrap_or_else(|e| panic!("rule re-entry failed on {context}: {e:?}"));
        assert!(
            plan.result_type.admits(reference, &got).unwrap(),
            "rule re-entry violates ≡SQL ({mode:?}) on {context}"
        );
    }
}

/// All instants worth probing for a set of relations (shared endpoints ± 1).
pub fn probes(relations: &[&Relation]) -> Vec<i64> {
    let mut pts = Vec::new();
    for r in relations {
        pts.extend(r.endpoints().expect("temporal"));
    }
    pts.sort_unstable();
    pts.dedup();
    let mut out = Vec::with_capacity(pts.len() + 2);
    if let Some(first) = pts.first() {
        out.push(first - 1);
    }
    out.extend(pts.iter().copied());
    if let Some(last) = pts.last() {
        out.push(last + 1);
    }
    out
}

/// The engines-agree SQL pool over the paper catalog: every construct
/// the front end supports, conventional and VALIDTIME. The serving
/// stress tests replay this exact pool concurrently and hold each
/// response to byte-identity with its serial run.
pub const SQL_POOL: &[&str] = &[
    "SELECT EmpName FROM EMPLOYEE",
    "SELECT DISTINCT EmpName FROM EMPLOYEE",
    "SELECT EmpName, Dept FROM EMPLOYEE ORDER BY EmpName, Dept DESC",
    "SELECT Dept, COUNT(*) AS n, MIN(T1) AS lo FROM EMPLOYEE GROUP BY Dept",
    "SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE T1 >= 2 AND Dept = 'Sales'",
    "VALIDTIME SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept",
    "VALIDTIME SELECT e.EmpName FROM EMPLOYEE e, PROJECT p WHERE e.EmpName = p.EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     EXCEPT VALIDTIME SELECT DISTINCT EmpName FROM PROJECT \
     COALESCE ORDER BY EmpName",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION ALL \
     VALIDTIME SELECT EmpName FROM PROJECT",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE UNION \
     VALIDTIME SELECT EmpName FROM PROJECT ORDER BY EmpName",
    "SELECT EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT",
    // HAVING, subqueries, outer joins, LIMIT/OFFSET.
    "SELECT Dept, COUNT(*) AS n FROM EMPLOYEE GROUP BY Dept HAVING n > 2",
    "VALIDTIME SELECT Dept FROM EMPLOYEE GROUP BY Dept HAVING COUNT(*) >= 2",
    "SELECT EmpName, Dept FROM EMPLOYEE \
     WHERE EmpName IN (SELECT EmpName FROM PROJECT WHERE Prj = 'P1')",
    "VALIDTIME SELECT DISTINCT EmpName FROM EMPLOYEE \
     WHERE EmpName NOT IN (VALIDTIME SELECT EmpName FROM PROJECT) \
     COALESCE ORDER BY EmpName",
    "SELECT EmpName, Dept FROM EMPLOYEE e \
     WHERE NOT EXISTS (SELECT Prj FROM PROJECT p \
                       WHERE p.EmpName = e.EmpName AND p.Prj = 'P1')",
    "SELECT e.EmpName, p.Prj FROM EMPLOYEE e \
     INNER JOIN PROJECT p ON e.EmpName = p.EmpName",
    "VALIDTIME SELECT e.EmpName AS EmpName, p.Prj AS Prj FROM EMPLOYEE e \
     LEFT JOIN PROJECT p ON e.EmpName = p.EmpName",
    "SELECT Dept, p.Prj AS Prj FROM EMPLOYEE e \
     RIGHT JOIN PROJECT p ON e.EmpName = p.EmpName",
    "SELECT EmpName FROM EMPLOYEE ORDER BY EmpName LIMIT 3 OFFSET 1",
    "VALIDTIME SELECT EmpName FROM EMPLOYEE ORDER BY EmpName, T1 LIMIT 4",
];
