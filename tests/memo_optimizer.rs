//! Memo-vs-exhaustive agreement: on every fixture the exhaustive Figure 5
//! closure can finish, the memo strategy must find an equally cheap plan;
//! on fixtures where the closure truncates, the memo must close the space
//! anyway and do at least as well as the truncated oracle. Every
//! memo-extracted plan must be admissible under the plan property
//! machinery (it annotates cleanly, prices as valid, and its recomputed
//! cost matches what the extractor claimed).

mod common;

use common::{fixture_tscan, optimizer_fixtures};
use proptest::prelude::*;

use tqo_core::cost::CostModel;
use tqo_core::optimizer::{optimize, OptimizerConfig, SearchStrategy};
use tqo_core::plan::props::annotate;
use tqo_core::plan::LogicalPlan;
use tqo_core::rules::RuleSet;
use tqo_core::sortspec::Order;

fn exhaustive_config() -> OptimizerConfig {
    OptimizerConfig {
        strategy: SearchStrategy::Exhaustive,
        ..OptimizerConfig::default()
    }
}

fn memo_config() -> OptimizerConfig {
    OptimizerConfig {
        strategy: SearchStrategy::Memo,
        ..OptimizerConfig::default()
    }
}

/// Relative tolerance for cost comparison: both strategies sum identical
/// per-node terms, but in different association orders.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Check one fixture under one rule set. Returns an error message naming
/// the violation (proptest-compatible), `Ok(solved)` otherwise, where
/// `solved` says whether the exhaustive oracle finished.
fn check_fixture(plan: &LogicalPlan, rules: &RuleSet) -> Result<bool, String> {
    let exhaustive =
        optimize(plan, rules, &exhaustive_config()).map_err(|e| format!("exhaustive: {e:?}"))?;
    let memo = optimize(plan, rules, &memo_config()).map_err(|e| format!("memo: {e:?}"))?;
    if memo.truncated {
        return Err("memo budgets must cover every fixture".into());
    }

    // Admissibility of the extracted plan under the property machinery.
    annotate(&memo.best).map_err(|e| format!("memo plan fails to annotate: {e:?}"))?;
    let repriced = CostModel::default()
        .cost(&memo.best)
        .map_err(|e| format!("memo plan fails to price: {e:?}"))?;
    if !repriced.is_valid() && exhaustive.cost.is_valid() {
        return Err("memo plan placed a stratum-only op in the DBMS".into());
    }
    if repriced.is_valid() && !close(repriced.0, memo.cost.0) {
        return Err(format!(
            "extractor accounting disagrees with CostModel: {} vs {}",
            repriced.0, memo.cost.0
        ));
    }

    if exhaustive.truncated {
        // The oracle saw a prefix of the space; the memo saw all of it and
        // must do at least as well.
        if memo.cost.0 > exhaustive.cost.0 * (1.0 + 1e-9) {
            return Err(format!(
                "memo={} worse than truncated exhaustive={}",
                memo.cost.0, exhaustive.cost.0
            ));
        }
        Ok(false)
    } else {
        // Equality; two infinities (no valid plan exists under this rule
        // set, e.g. a transfer round trip with transfer rules disabled)
        // also agree.
        let both_invalid = !exhaustive.cost.is_valid() && !memo.cost.is_valid();
        if !both_invalid && !close(exhaustive.cost.0, memo.cost.0) {
            return Err(format!(
                "strategies disagree: exhaustive={} memo={} on {:?}",
                exhaustive.cost.0, memo.cost.0, plan.root
            ));
        }
        Ok(true)
    }
}

#[test]
fn memo_agrees_with_exhaustive_on_all_fixtures() {
    let rules = RuleSet::standard();
    let mut solved = 0;
    for (i, plan) in optimizer_fixtures(1000).iter().enumerate() {
        match check_fixture(plan, &rules) {
            Ok(true) => solved += 1,
            Ok(false) => {}
            Err(e) => panic!("fixture {i}: {e}"),
        }
    }
    // The pool must mostly consist of exhaustively solvable fixtures, or
    // the equality check proves little.
    assert!(
        solved >= 15,
        "only {solved} fixtures were exhaustively solvable"
    );
}

#[test]
fn memo_agrees_under_figure4_rules_only() {
    let rules = RuleSet::figure4();
    for (i, plan) in optimizer_fixtures(1000).iter().enumerate() {
        if let Err(e) = check_fixture(plan, &rules) {
            panic!("fixture {i}: {e}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Agreement is scale-independent: base cardinalities shift which plan
    /// wins (transfer costs vs operator costs), never whether the
    /// strategies agree.
    #[test]
    fn memo_agrees_across_cardinalities(scale in prop::sample::select(vec![
        1u64, 10, 250, 5_000, 80_000, 2_000_000,
    ]), idx in 0usize..20) {
        let rules = RuleSet::standard();
        let fixtures = optimizer_fixtures(scale);
        let plan = &fixtures[idx % fixtures.len()];
        if let Err(e) = check_fixture(plan, &rules) {
            return Err(format!("scale {scale} fixture {idx}: {e}"));
        }
    }
}

#[test]
fn memo_survives_shapes_where_enumeration_truncates() {
    // A widening chain of temporal unions below dedup/coalesce/sort: each
    // extra leaf multiplies the exhaustive closure (transfer placements ×
    // dedup positions × sort positions) until the 4096-plan budget stops
    // it. The memo's expression count grows with the *sum* of variants.
    let rules = RuleSet::standard();
    let mut chain = fixture_tscan("R0", 500, false).transfer_s();
    for i in 1..10 {
        chain = chain.union_t(fixture_tscan(&format!("R{i}"), 500, false).transfer_s());
    }
    let plan = chain
        .rdup_t()
        .coalesce()
        .sort(Order::asc(&["E"]))
        .build_list(Order::asc(&["E"]));

    let exhaustive = optimize(&plan, &rules, &exhaustive_config()).expect("exhaustive");
    assert!(
        exhaustive.truncated,
        "expected the exhaustive budget to truncate; closure had {} plans",
        exhaustive.enumeration.plans.len()
    );

    let memo = optimize(&plan, &rules, &memo_config()).expect("memo");
    assert!(
        !memo.truncated,
        "memo should close this space without truncation"
    );
    annotate(&memo.best).expect("memo plan annotates");
    // The memo saw the whole space; the truncated oracle saw a prefix. The
    // memo must do at least as well, with far fewer materialized
    // expressions than the enumerator's plan count.
    assert!(
        memo.cost.0 <= exhaustive.cost.0 * (1.0 + 1e-9),
        "memo={} worse than truncated exhaustive={}",
        memo.cost.0,
        exhaustive.cost.0
    );
    let stats = memo.memo.expect("memo stats");
    assert!(
        stats.exprs < exhaustive.enumeration.plans.len(),
        "memo materialized {} exprs vs {} enumerated plans",
        stats.exprs,
        exhaustive.enumeration.plans.len()
    );
}

#[test]
fn memo_derivations_name_real_rules() {
    let rules = RuleSet::standard();
    for plan in optimizer_fixtures(1000) {
        let memo = optimize(&plan, &rules, &memo_config()).expect("memo");
        for app in &memo.derivation {
            assert!(
                rules.by_name(&app.rule).is_some(),
                "derivation names unknown rule {}",
                app.rule
            );
        }
        // A changed plan must carry a derivation.
        if memo.best.root != plan.root {
            assert!(
                !memo.derivation.is_empty(),
                "rewritten plan with empty derivation"
            );
        }
    }
}
